//! The ClusterFuzz questions from the paper's introduction, answered by
//! executing the fleet's energy interface — "directly from the IaC files
//! and application code, before deploying anything".
//!
//! ```sh
//! cargo run --example capacity_planning
//! ```

use energy_clarity::core::pretty::print_interface;
use energy_clarity::sched::fuzz::{default_campaign, plan, simulate_campaign};

fn main() {
    let campaign = default_campaign();

    println!("--- the fleet's energy interface ---");
    println!("{}", print_interface(&campaign.interface()));

    // Q1: optimal machine count for 95 % coverage at minimum energy.
    let answer = plan(&campaign, 0.95, 32);
    println!("Q1: machines vs energy to reach 95% coverage");
    for (m, e) in answer
        .sweep
        .iter()
        .filter(|(m, _)| [1, 2, 4, 8, 16, 32].contains(m))
    {
        let hours = campaign.hours_to_coverage(*m as f64, 0.95).unwrap();
        let marker = if *m == answer.best_machines {
            "   <-- energy optimum"
        } else {
            ""
        };
        println!(
            "  {m:>2} machines: {:>7.1} MJ over {:>7.1} h{marker}",
            e.as_joules() / 1e6,
            hours
        );
    }
    println!(
        "\n  energy-optimal: {} machine(s); more machines finish sooner but corpus\n\
         \x20 overlap wastes machine-hours (m^0.8 scaling), so energy rises with m.",
        answer.best_machines
    );

    // Q2: marginal energy 90 % -> 95 %.
    println!(
        "\nQ2: marginal energy to raise coverage 90% -> 95% at {} machine(s): {:.2} MJ",
        answer.best_machines,
        answer.marginal_90_to_95.as_joules() / 1e6
    );

    // Validation against the discrete-time campaign simulator.
    let (hours, sim_e) = simulate_campaign(&campaign, 8, 0.9, 0.01).unwrap();
    println!(
        "\nvalidation: simulated campaign (8 machines, to 90%) took {hours:.1} h and \
         {:.2} MJ — the interface predicted it without running anything.",
        sim_e.as_joules() / 1e6
    );
}
