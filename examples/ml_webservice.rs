//! The paper's Fig. 1 scenario end to end: run the ML web service, measure
//! its hit rates, build its energy interface, and check the interface's
//! prediction against reality — then use the interface to answer a design
//! question *without* redeploying.
//!
//! ```sh
//! cargo run --release --example ml_webservice
//! ```

use energy_clarity::core::ecv::EcvEnv;
use energy_clarity::core::interp::{enumerate_exact, EvalConfig};
use energy_clarity::core::pretty::print_interface;
use energy_clarity::core::units::TimeSpan;
use energy_clarity::core::value::Value;
use energy_clarity::hw::gpu::{rtx4090, GpuSim};
use energy_clarity::hw::nic::{datacenter_nic, NicSim};
use energy_clarity::service::{
    fig1_calibration, fig1_interface, request_stream, CacheEnergy, MlWebService,
};

fn main() {
    // Bring the service up: CNN on a 4090-class accelerator, request cache
    // with 256 local entries backed by a remote tier over a 10 GbE NIC.
    let mut svc = MlWebService::new(
        GpuSim::new(rtx4090()),
        NicSim::new(datacenter_nic()),
        256,
        4096,
    )
    .expect("service fits on the accelerator");
    let cal = svc.calibrate_cnn();

    // Serve a realistic stream: 60 % of requests target 200 hot images.
    for req in request_stream(3000, 200, 0.6, 16384, 0.25, 42) {
        svc.handle(req, TimeSpan::millis(5.0));
    }
    let (p_hit, p_local) = svc.measured_hit_rates();
    println!(
        "measured: p(request_hit) = {p_hit:.3}, p(local | hit) = {p_local:.3}, \
         mean energy {}/request",
        svc.mean_request_energy()
    );

    // Build Fig. 1's interface with the measured constants and validate it.
    let nic = datacenter_nic();
    let iface = fig1_interface(
        p_hit,
        p_local,
        &cal,
        &CacheEnergy::default(),
        nic.e_byte,
        nic.e_packet,
    );
    println!("\n--- Fig. 1, with constants measured on this deployment ---");
    println!("{}", print_interface(&iface));

    let cfg = EvalConfig {
        calibration: fig1_calibration(&cal),
        ..EvalConfig::default()
    };
    let req = Value::num_record([
        ("image_id", 1.0),
        ("image_size", 16384.0),
        ("image_zeros", 4096.0),
    ]);
    let dist = enumerate_exact(
        &iface,
        "handle",
        &[req],
        &EcvEnv::from_decls(&iface.ecvs),
        16,
        &cfg,
    )
    .unwrap();
    println!(
        "interface predicts {} per request (measured {})",
        dist.mean(),
        svc.mean_request_energy()
    );

    // The design question, answered from the interface alone (§3): is it
    // more productive to raise the cache hit rate or to optimize the model?
    println!("\nwhat-if analysis (no redeployment needed):");
    for p in [0.3, 0.5, 0.7, 0.9] {
        let i = fig1_interface(
            p,
            p_local,
            &cal,
            &CacheEnergy::default(),
            nic.e_byte,
            nic.e_packet,
        );
        let d = enumerate_exact(
            &i,
            "handle",
            &[Value::num_record([
                ("image_id", 1.0),
                ("image_size", 16384.0),
                ("image_zeros", 4096.0),
            ])],
            &EcvEnv::from_decls(&i.ecvs),
            16,
            &cfg,
        )
        .unwrap();
        println!("  hit rate {p:.1} -> E[request] = {}", d.mean());
    }
}
