//! The §5 experiment in miniature: derive a GPU's energy interface from
//! microbenchmarks, compose GPT-2's interface on top, and compare its
//! prediction against a measured generation run.
//!
//! ```sh
//! cargo run --release --example llm_inference
//! ```

use energy_clarity::core::compose::link;
use energy_clarity::core::ecv::EcvEnv;
use energy_clarity::core::interp::{evaluate_energy, EvalConfig};
use energy_clarity::core::value::Value;
use energy_clarity::extract::microbench::fit_gpu_model;
use energy_clarity::hw::gpu::{rtx3070, rtx4090, GpuSim};
use energy_clarity::hw::meter::{MeterConfig, PowerMeter};
use energy_clarity::llm::{gpt2_interface, gpt2_small, Gpt2Engine};

fn main() {
    for gpu in [rtx4090(), rtx3070()] {
        println!("=== {} ===", gpu.name);

        // 1. Microbenchmark campaign through the NVML-like meter.
        let (model, obs) = fit_gpu_model(&gpu, MeterConfig::nvml()).unwrap();
        println!(
            "  fitted hardware interface from {} microbenchmarks (R² = {:.6})",
            obs.len(),
            model.r_squared
        );

        // 2. Compose: GPT-2's interface over the fitted hardware interface.
        let linked =
            link(&gpt2_interface(&gpt2_small()), &[&model.to_interface(&gpu)]).expect("links");

        // 3. Predict a generation run...
        let (prompt, gen) = (32u64, 100u64);
        let cfg = EvalConfig {
            fuel: 400_000_000,
            ..EvalConfig::default()
        };
        let predicted = evaluate_energy(
            &linked,
            "e_generate",
            &[Value::Num(prompt as f64), Value::Num(gen as f64)],
            &EcvEnv::new(),
            0,
            &cfg,
        )
        .unwrap();

        // 4. ...and measure the real thing with the same coarse meter.
        let mut engine = Gpt2Engine::new(gpt2_small(), GpuSim::new(gpu)).unwrap();
        let meter = PowerMeter::new(MeterConfig::nvml());
        let before = meter.read(engine.gpu().energy(), engine.gpu().counters().elapsed);
        let report = engine.generate(prompt, gen);
        let after = meter.read(engine.gpu().energy(), engine.gpu().counters().elapsed);
        let measured = after - before;

        println!("  prompt {prompt}, generate {gen} tokens:");
        println!("    predicted  {predicted}");
        println!("    measured   {measured}");
        println!(
            "    error      {:.2}%   ({} kernel launches, {:.1} ms busy)",
            predicted.relative_error(measured) * 100.0,
            report.counters.launches,
            report.duration.as_seconds() * 1e3,
        );
    }
}
