//! Quickstart: write an energy interface, execute it, analyze it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use energy_clarity::core::analysis::paths::enumerate_paths;
use energy_clarity::core::analysis::worst_case::worst_case;
use energy_clarity::core::ecv::EcvEnv;
use energy_clarity::core::interface::InputSpec;
use energy_clarity::core::interp::{enumerate_exact, monte_carlo, EvalConfig};
use energy_clarity::core::parser::parse;
use energy_clarity::core::pretty::print_interface;
use energy_clarity::core::units::Calibration;
use energy_clarity::core::value::Value;

fn main() {
    // 1. An energy interface is a little program (the paper's Fig. 1 idea):
    //    same input as the implementation, returns the energy it would use.
    let iface = parse(
        r#"
        interface thumbnailer "energy interface of an image thumbnailer" {
            ecv cached: bernoulli(0.7) "thumbnail already rendered";
            fn handle(image) {
                if cached {
                    return 2 mJ + 0.01 mJ * image.kilobytes;
                } else {
                    return render(image.kilobytes) + 2 mJ;
                }
            }
            fn render(kb) {
                let e = 5 mJ;
                for block in 0..ceil(kb / 64) {
                    e = e + 3 mJ;
                }
                return e;
            }
        }
        "#,
    )
    .expect("parses");

    // It is both human-readable...
    println!(
        "--- the interface, pretty-printed ---\n{}",
        print_interface(&iface)
    );

    // ...and machine-executable.
    let cfg = EvalConfig::default();
    let env = EcvEnv::from_decls(&iface.ecvs);
    let image = Value::num_record([("kilobytes", 512.0)]);

    // 2. Exact distribution over the ECV outcomes.
    let dist = enumerate_exact(
        &iface,
        "handle",
        std::slice::from_ref(&image),
        &env,
        16,
        &cfg,
    )
    .unwrap();
    println!(
        "512 KB image: expected {}, worst outcome {}",
        dist.mean(),
        dist.max()
    );

    // 3. Monte Carlo agrees (useful when ECVs are continuous).
    let mc = monte_carlo(
        &iface,
        "handle",
        std::slice::from_ref(&image),
        &env,
        10_000,
        42,
        &cfg,
    )
    .unwrap();
    println!("Monte Carlo mean: {}", mc.mean());

    // 4. Per-path view: which code path costs what, with what probability.
    let profile = enumerate_paths(&iface, "handle", &[image], &env, 16, &cfg).unwrap();
    println!("\n--- paths ---\n{}", profile.render());

    // 5. Sound worst-case bound over a declared input space.
    let spec = InputSpec::new().range("image.kilobytes", 1.0, 4096.0);
    let bound = worst_case(&iface, "handle", &spec, &Calibration::empty()).unwrap();
    println!(
        "worst case over images of 1..4096 KB: [{}, {}]",
        bound.lower, bound.upper
    );
}
