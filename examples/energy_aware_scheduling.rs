//! The paper's §1 Linux-EAS scenario: scheduling a bimodal (video
//! transcoding-like) task on a big.LITTLE system, with the utilization
//! proxy vs the task's energy interface.
//!
//! ```sh
//! cargo run --example energy_aware_scheduling
//! ```

use energy_clarity::sched::eas::{marginal_energy, run_schedule, Predictor, SchedConfig, TaskSpec};

fn main() {
    let cfg = SchedConfig::default();
    let task = TaskSpec::bimodal("transcode", 30.0, 1.0, 4, 4, 2000);
    println!(
        "workload: bimodal transcoding — bursts of 30 work units (4 quanta) \n\
         alternating with troughs of 1 (4 quanta), 2000 quanta total\n"
    );

    println!("{:<22} {:>10}  {:>8}", "predictor", "energy", "misses");
    for (name, p) in [
        ("utilization proxy", Predictor::UtilizationProxy),
        ("conservative proxy", Predictor::ConservativeProxy),
        ("energy interface", Predictor::EnergyInterface),
    ] {
        let r = run_schedule(&task, p, &cfg);
        println!(
            "{:<22} {:>8.3} J  {:>8}",
            name,
            r.energy.as_joules(),
            r.missed_quanta
        );
    }

    println!(
        "\nThe plain proxy is cheap only because it drops deadlines (dropped\n\
         frames); padded to meet QoS it over-provisions. The interface-aware\n\
         scheduler knows each quantum's demand ahead of time and meets every\n\
         deadline at the lowest energy.\n"
    );

    // §2's marginal-energy observation, as a table.
    println!(
        "marginal energy: add extra work to a core busy with 10 units, or wake a second core?"
    );
    println!("{:>10}  {:>14}  {:>12}", "extra", "consolidate", "spread");
    for extra in [1.0, 4.0, 8.0, 14.0, 20.0] {
        let (c, s) = marginal_energy(10.0, extra, &cfg);
        println!(
            "{:>10}  {:>12.2} mJ  {:>10.2} mJ   {}",
            extra,
            c.as_joules() * 1e3,
            s.as_joules() * 1e3,
            if c < s { "<- consolidate" } else { "<- spread" }
        );
    }
}
