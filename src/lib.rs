//! energy-clarity umbrella crate.
pub use ei_core as core;
pub use ei_extract as extract;
pub use ei_hw as hw;
pub use ei_llm as llm;
pub use ei_sched as sched;
pub use ei_service as service;
