//! Seeded scenario corpus for the cluster simulator.
//!
//! Each JSON fixture under `tests/fixtures/cluster/` describes one
//! adversarial traffic/fault shape — a hot-spot class skew, a thundering
//! herd after mass node death, an autoscaler-flapping square wave. The
//! runner deserializes the fixture into the simulator's own config types,
//! runs both shipped policies, and locks the resulting report against a
//! byte-stable golden under `tests/golden/cluster/`.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test cluster_scenarios
//! ```
//!
//! then review the golden diff like any other code change.

use ei_core::cache::EvalCache;
use ei_hw::faults::FaultPlan;
use ei_sched::des::{
    run_cluster_sim, ClusterSpec, EnergyLb, RunStats, SimConfig, SimTime, UtilizationLb,
};
use serde::{Deserialize, Serialize, Value};

/// Numeric slack for cross-platform libm differences; everything
/// non-numeric must match exactly (same convention as
/// `golden_experiments`).
const REL_TOL: f64 = 1e-6;
const ABS_TOL: f64 = 1e-12;

/// One fixture: cluster shape, workload, and fault schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Scenario {
    name: String,
    description: String,
    n_perf: usize,
    n_eff: usize,
    config: SimConfig,
    plan: FaultPlan,
}

/// What a scenario run freezes in its golden file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioReport {
    name: String,
    baseline: RunStats,
    energy: RunStats,
    saving_pct: f64,
}

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn load_scenario(name: &str) -> Scenario {
    let path = repo_path(&format!("tests/fixtures/cluster/{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let value: Value = serde_json::from_str(&text).unwrap();
    let scenario = Scenario::from_value(&value)
        .unwrap_or_else(|e| panic!("{} does not parse: {e:?}", path.display()));
    assert_eq!(scenario.name, name, "fixture name must match its file");
    scenario
}

fn run_scenario(s: &Scenario) -> ScenarioReport {
    let spec = ClusterSpec::mixed(s.n_perf, s.n_eff);

    let mut base_lb = UtilizationLb::new(
        spec.classes.clone(),
        spec.assignment.clone(),
        s.config.initial_active,
    );
    let baseline = run_cluster_sim(&spec, &s.config, &s.plan, &mut base_lb).stats;

    let cache = EvalCache::new();
    let mut energy_lb = EnergyLb::new(
        spec.classes.clone(),
        spec.assignment.clone(),
        s.config.initial_active,
        SimTime::from_millis(s.config.slo_ms).0,
        &cache,
    );
    let energy = run_cluster_sim(&spec, &s.config, &s.plan, &mut energy_lb).stats;

    let saving_pct = if baseline.j_per_request > 0.0 {
        (1.0 - energy.j_per_request / baseline.j_per_request) * 100.0
    } else {
        0.0
    };
    ScenarioReport {
        name: s.name.clone(),
        baseline,
        energy,
        saving_pct,
    }
}

/// Diffs `actual` against `tests/golden/cluster/<name>.json`, or rewrites
/// the golden when `GOLDEN_BLESS=1`.
fn check_golden(name: &str, actual: &Value) {
    let path = repo_path(&format!("tests/golden/cluster/{name}.json"));
    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        let rendered = serde_json::to_string_pretty(actual).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered + "\n").unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test \
             --test cluster_scenarios to create it",
            path.display()
        )
    });
    let expected: Value = serde_json::from_str(&text).unwrap();
    let mut diffs = Vec::new();
    diff_value(&expected, actual, name.to_string(), &mut diffs);
    assert!(
        diffs.is_empty(),
        "golden mismatch in {name} ({} diff(s)):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

/// Structural diff: numbers within tolerance, everything else exact.
fn diff_value(expected: &Value, actual: &Value, path: String, diffs: &mut Vec<String>) {
    match (expected, actual) {
        (e, a) if e.as_f64().is_some() && a.as_f64().is_some() => {
            let (e, a) = (e.as_f64().unwrap(), a.as_f64().unwrap());
            let scale = e.abs().max(a.abs());
            if (e - a).abs() > ABS_TOL + REL_TOL * scale {
                diffs.push(format!("{path}: expected {e}, got {a}"));
            }
        }
        (Value::Array(e), Value::Array(a)) => {
            if e.len() != a.len() {
                diffs.push(format!(
                    "{path}: expected {} elements, got {}",
                    e.len(),
                    a.len()
                ));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_value(ev, av, format!("{path}[{i}]"), diffs);
            }
        }
        (Value::Object(e), Value::Object(a)) => {
            let ekeys: Vec<&str> = e.iter().map(|(k, _)| k.as_str()).collect();
            let akeys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            if ekeys != akeys {
                diffs.push(format!("{path}: keys {ekeys:?} vs {akeys:?}"));
                return;
            }
            for ((k, ev), (_, av)) in e.iter().zip(a) {
                diff_value(ev, av, format!("{path}.{k}"), diffs);
            }
        }
        (e, a) => {
            if e != a {
                diffs.push(format!("{path}: expected {e:?}, got {a:?}"));
            }
        }
    }
}

fn check_scenario(name: &str) -> ScenarioReport {
    let scenario = load_scenario(name);
    let report = run_scenario(&scenario);
    assert_eq!(
        report.baseline.arrivals,
        report.baseline.completed + report.baseline.shed + report.baseline.unserved,
        "baseline conservation"
    );
    assert_eq!(
        report.energy.arrivals,
        report.energy.completed + report.energy.shed + report.energy.unserved,
        "energy conservation"
    );
    check_golden(name, &report.to_value());
    report
}

#[test]
fn hot_spot_skew_matches_golden() {
    let r = check_scenario("hot_spot_skew");
    // The skewed phase must actually dominate the mix: the 0.05/0.85
    // flip pushes the blended large fraction far above the 0.25 steady
    // state.
    assert!(
        r.baseline.frac_large > 0.40,
        "hot spot did not materialize: frac_large = {}",
        r.baseline.frac_large
    );
}

#[test]
fn thundering_herd_matches_golden() {
    let r = check_scenario("thundering_herd");
    assert!(
        r.baseline.redispatched > 0 && r.energy.redispatched > 0,
        "mass node death must force redispatch (got {} / {})",
        r.baseline.redispatched,
        r.energy.redispatched
    );
}

#[test]
fn autoscale_flap_matches_golden() {
    check_scenario("autoscale_flap");
}

/// Every fixture in the corpus parses, round-trips through the
/// serializer byte-stably, and names itself after its file.
#[test]
fn fixture_corpus_is_well_formed() {
    let dir = repo_path("tests/fixtures/cluster");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("fixture dir exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let scenario =
            Scenario::from_value(&value).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(
            scenario.name,
            stem,
            "{}: name/file mismatch",
            path.display()
        );
        let rendered = serde_json::to_string_pretty(&value).unwrap() + "\n";
        assert_eq!(
            rendered,
            text,
            "{} is not in canonical pretty format",
            path.display()
        );
        count += 1;
    }
    assert!(count >= 3, "expected at least 3 fixtures, found {count}");
}
