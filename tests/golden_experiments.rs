//! Golden-corpus regression over the paper's headline numbers.
//!
//! Every report the `--json` binaries emit (Table 1, experiments E1–E7,
//! the E9 fault matrix, the E10–E12 smoke shapes, and the Fig. 2
//! full-stack rows) is frozen
//! as JSON under `tests/golden/`. The tests re-run each experiment and
//! diff the serialized tree against the golden file, comparing numbers
//! with a relative tolerance so libm differences across platforms don't
//! produce false alarms — everything else must match exactly.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_experiments
//! ```
//!
//! then review the diff of `tests/golden/*.json` like any other code
//! change.

use serde::{Serialize, Value};

/// Relative tolerance for numeric leaves. All experiment seeds are fixed,
/// so runs are deterministic on one machine; the slack only absorbs
/// cross-platform libm (`exp`/`ln`/`powf`) differences.
const REL_TOL: f64 = 1e-6;
/// Absolute floor for comparisons near zero.
const ABS_TOL: f64 = 1e-12;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diffs `actual` against the golden file `name`, or rewrites the file
/// when `GOLDEN_BLESS=1`.
fn check_golden(name: &str, actual: &Value) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        let rendered = serde_json::to_string_pretty(actual).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered + "\n").unwrap();
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test \
             --test golden_experiments to create it",
            path.display()
        )
    });
    let expected: Value = serde_json::from_str(&text).unwrap();
    let mut diffs = Vec::new();
    diff_value(&expected, actual, name.to_string(), &mut diffs);
    assert!(
        diffs.is_empty(),
        "golden mismatch in {name} ({} diff(s)):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}

/// Structural diff: numbers within tolerance, everything else exact.
fn diff_value(expected: &Value, actual: &Value, path: String, diffs: &mut Vec<String>) {
    match (expected, actual) {
        (e, a) if e.as_f64().is_some() && a.as_f64().is_some() => {
            let (e, a) = (e.as_f64().unwrap(), a.as_f64().unwrap());
            let scale = e.abs().max(a.abs());
            if (e - a).abs() > ABS_TOL + REL_TOL * scale {
                diffs.push(format!("{path}: expected {e}, got {a}"));
            }
        }
        (Value::Array(e), Value::Array(a)) => {
            if e.len() != a.len() {
                diffs.push(format!(
                    "{path}: expected {} elements, got {}",
                    e.len(),
                    a.len()
                ));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_value(ev, av, format!("{path}[{i}]"), diffs);
            }
        }
        (Value::Object(e), Value::Object(a)) => {
            let ekeys: Vec<&str> = e.iter().map(|(k, _)| k.as_str()).collect();
            let akeys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            if ekeys != akeys {
                diffs.push(format!("{path}: keys {ekeys:?} vs {akeys:?}"));
                return;
            }
            for ((k, ev), (_, av)) in e.iter().zip(a) {
                diff_value(ev, av, format!("{path}.{k}"), diffs);
            }
        }
        (e, a) => {
            if e != a {
                diffs.push(format!("{path}: expected {e:?}, got {a:?}"));
            }
        }
    }
}

#[test]
fn table1_matches_golden() {
    check_golden("table1.json", &ei_bench::table1::run().to_value());
}

#[test]
fn fig2_full_stack_matches_golden() {
    check_golden("fig2.json", &ei_bench::fig2::run().to_value());
}

#[test]
fn e1_eas_matches_golden() {
    check_golden("e1_eas.json", &ei_bench::experiments::run_eas().to_value());
}

#[test]
fn e2_cluster_matches_golden() {
    check_golden(
        "e2_cluster.json",
        &ei_bench::experiments::run_cluster().to_value(),
    );
}

#[test]
fn e3_fuzz_matches_golden() {
    check_golden(
        "e3_fuzz.json",
        &ei_bench::experiments::run_fuzz().to_value(),
    );
}

#[test]
fn e4_marginal_matches_golden() {
    check_golden(
        "e4_marginal.json",
        &ei_bench::experiments::run_marginal().to_value(),
    );
}

#[test]
fn e5_sidechannel_matches_golden() {
    check_golden(
        "e5_sidechannel.json",
        &ei_bench::experiments::run_sidechannel().to_value(),
    );
}

#[test]
fn e6_bughunt_matches_golden() {
    check_golden(
        "e6_bughunt.json",
        &ei_bench::experiments::run_bughunt().to_value(),
    );
}

#[test]
fn e7_composition_matches_golden() {
    check_golden(
        "e7_composition.json",
        &ei_bench::experiments::run_composition().to_value(),
    );
}

#[test]
fn e9_faults_matches_golden() {
    check_golden(
        "e9_faults.json",
        &ei_bench::experiments::run_faults().to_value(),
    );
}

/// E10 at the CI smoke shape (10 nodes / 10k requests). The full
/// 1M-request shape is locked by the `cluster_sim` binary's own
/// assertions and archived as `BENCH_cluster.json` in CI.
#[test]
fn e10_cluster_smoke_matches_golden() {
    check_golden(
        "e10_cluster.json",
        &ei_bench::cluster::run_with(&ei_bench::cluster::E10Config::smoke()).to_value(),
    );
}

/// E11 at the CI smoke shape (1200 requests per scenario). The full
/// shape is locked by the `drift_recal` binary's own acceptance
/// assertions and archived as `BENCH_drift.json` in CI.
#[test]
fn e11_drift_smoke_matches_golden() {
    check_golden(
        "e11_drift.json",
        &ei_bench::drift::run_with(&ei_bench::drift::E11Config::smoke()).to_value(),
    );
}

/// E12 at the CI smoke shape (one model, four operating points). The
/// full sweep is locked by the `llm_pareto` binary's own acceptance
/// assertions and archived as `BENCH_llm.json` in CI.
#[test]
fn e12_llm_smoke_matches_golden() {
    check_golden(
        "e12_llm.json",
        &ei_bench::llm_pareto::run_with(&ei_bench::llm_pareto::E12Config::smoke()).to_value(),
    );
}

/// The golden corpus itself must be well-formed JSON that round-trips
/// through the serializer (guards against hand-edited corruption).
#[test]
fn golden_corpus_is_well_formed() {
    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        // Files are being rewritten concurrently by the other tests.
        return;
    }
    let dir = golden_path("");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/golden exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let value: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rendered = serde_json::to_string_pretty(&value).unwrap() + "\n";
        assert_eq!(
            rendered,
            text,
            "{} is not in canonical pretty format",
            path.display()
        );
        count += 1;
    }
    assert!(
        count >= 10,
        "expected at least 10 golden files, found {count}"
    );
}
