//! Integration tests spanning `ei-core`, `ei-hw`, and the Fig. 2 stack:
//! composing vendor hardware interfaces under software layers, swapping
//! machines, and analyzing the composed result.

use energy_clarity::core::analysis::worst_case::worst_case;
use energy_clarity::core::ecv::EcvEnv;
use energy_clarity::core::interface::InputSpec;
use energy_clarity::core::interp::{evaluate_energy, EvalConfig};
use energy_clarity::core::parser::parse;
use energy_clarity::core::pretty::print_interface;
use energy_clarity::core::stack::{Layer, Resource, Stack};
use energy_clarity::core::units::Calibration;
use energy_clarity::core::value::Value;
use energy_clarity::hw::gpu::{rtx3070, rtx4090, GpuConfig};
use energy_clarity::hw::interfaces::gpu_interface;

fn two_layer_stack(gpu: &GpuConfig) -> Stack {
    let app = parse(
        r#"
        interface app {
            extern fn gpu_kernel(flops, logical_bytes, l2_sectors, vram_sectors);
            fn infer(mflops) {
                let flops = mflops * 1000000;
                return gpu_kernel(flops, flops / 8, 1000, 1000);
            }
        }
        "#,
    )
    .unwrap();
    Stack::new()
        .layer(Layer::new("hardware").resource(Resource::new("gpu", gpu_interface(gpu))))
        .layer(Layer::new("application").resource(Resource::new("app", app)))
}

#[test]
fn composed_stack_is_closed_and_evaluates() {
    let composed = two_layer_stack(&rtx4090()).compose().unwrap();
    let app = composed.export("app").unwrap();
    assert!(app.is_closed());
    let e = evaluate_energy(
        app,
        "infer",
        &[Value::Num(500.0)],
        &EcvEnv::new(),
        0,
        &EvalConfig::default(),
    )
    .unwrap();
    assert!(e.as_joules() > 0.0);
}

#[test]
fn machine_swap_changes_only_the_numbers() {
    let a = two_layer_stack(&rtx4090()).compose().unwrap();
    let b = two_layer_stack(&rtx3070()).compose().unwrap();
    let env = EcvEnv::new();
    let cfg = EvalConfig::default();
    let args = [Value::Num(2000.0)];
    let ea = evaluate_energy(a.export("app").unwrap(), "infer", &args, &env, 0, &cfg).unwrap();
    let eb = evaluate_energy(b.export("app").unwrap(), "infer", &args, &env, 0, &cfg).unwrap();
    // Same software; the 3070 burns more energy per instruction.
    assert!(eb > ea);
}

#[test]
fn composed_interface_supports_worst_case_analysis() {
    let composed = two_layer_stack(&rtx4090()).compose().unwrap();
    let app = composed.export("app").unwrap();
    let spec = InputSpec::new().range("mflops", 1.0, 1000.0);
    let bound = worst_case(app, "infer", &spec, &Calibration::empty()).unwrap();
    assert!(bound.lower.as_joules() > 0.0);
    assert!(bound.upper > bound.lower);

    // The bound is sound for concrete points in the range.
    let cfg = EvalConfig::default();
    for m in [1.0, 250.0, 999.0] {
        let e = evaluate_energy(app, "infer", &[Value::Num(m)], &EcvEnv::new(), 0, &cfg).unwrap();
        assert!(bound.admits(e), "{m} MFLOP sample escapes the bound");
    }
}

#[test]
fn composed_interface_pretty_prints_and_reparses() {
    let composed = two_layer_stack(&rtx4090()).compose().unwrap();
    let app = composed.export("app").unwrap();
    let text = print_interface(app);
    // Namespaced provider helpers are still valid identifiers.
    assert!(text.contains("gpu_rtx4090__gpu_idle") || text.contains("gpu_idle"));
    let reparsed = parse(&text).unwrap();
    assert_eq!(app, &reparsed);
}

#[test]
fn machine_ranking_crosses_over_with_kernel_size() {
    // §2: energy behavior is "complex, non-modular, and often
    // non-intuitive". For tiny kernels the 4090's higher static power
    // (over the launch-latency floor) makes it the *more* expensive
    // machine; for real workloads its cheaper per-instruction energy wins.
    // The composed interfaces expose the crossover without running either
    // machine.
    let a = two_layer_stack(&rtx4090()).compose().unwrap();
    let b = two_layer_stack(&rtx3070()).compose().unwrap();
    let cfg = EvalConfig::default();
    let env = EcvEnv::new();
    let eval = |c: &energy_clarity::core::stack::ComposedStack, m: f64| {
        evaluate_energy(
            c.export("app").unwrap(),
            "infer",
            &[Value::Num(m)],
            &env,
            0,
            &cfg,
        )
        .unwrap()
    };
    // Tiny kernel: the small part wins on static power.
    assert!(eval(&b, 10.0) < eval(&a, 10.0));
    // Substantial kernels: the efficient part wins, consistently.
    for m in [100.0, 1000.0, 5000.0] {
        assert!(
            eval(&a, m) < eval(&b, m),
            "ranking flipped back at {m} MFLOPs"
        );
    }
}

#[test]
fn rewriting_manager_injects_its_own_state() {
    // Fig. 2 ①: the resource manager composes interfaces "based on the
    // resources' energy interfaces and the way in which it administers
    // them". This buffer-cache manager wraps every exported function's
    // backing store access with its own hit-rate ECV.
    use energy_clarity::core::compose::{link_closure, Registry};
    use energy_clarity::core::ecv::{DistSpec, EcvDecl};
    use energy_clarity::core::stack::{ManagerPolicy, Resource};
    use energy_clarity::core::Interface;

    struct BufferCacheManager {
        hit_rate: f64,
    }
    impl ManagerPolicy for BufferCacheManager {
        fn name(&self) -> &str {
            "buffer-cache"
        }
        fn compose(
            &self,
            resource: &Resource,
            below: &Registry,
        ) -> energy_clarity::core::Result<Interface> {
            let mut iface = link_closure(&resource.interface, below)?;
            // Inject the manager's state as an ECV and wrap `read`.
            iface.add_ecv(
                "page_cached",
                EcvDecl {
                    dist: DistSpec::Bernoulli { p: self.hit_rate },
                    doc: "page resident in the buffer cache".into(),
                },
            )?;
            let body = parse(
                r#"interface w {
                    ecv page_cached: bernoulli(0.5);
                    extern fn read(bytes);
                    fn cached_read(bytes) {
                        if ecv(page_cached) { return 0.2 uJ * bytes; }
                        return read(bytes);
                    }
                }"#,
            )
            .unwrap();
            iface
                .add_fn(body.fns["cached_read"].clone())
                .expect("no collision");
            iface.validate()?;
            Ok(iface)
        }
    }

    let disk = parse("interface disk { fn read(bytes) { return 3 uJ * bytes; } }").unwrap();
    let fs = parse(
        r#"interface fs {
            extern fn read(bytes);
            fn stat() { return read(256); }
        }"#,
    )
    .unwrap();
    let stack = Stack::new()
        .layer(Layer::new("hardware").resource(Resource::new("disk", disk)))
        .layer(
            Layer::with_manager("fs", Box::new(BufferCacheManager { hit_rate: 0.9 }))
                .resource(Resource::new("fs", fs)),
        );
    let composed = stack.compose().unwrap();
    let fs = composed.export("fs").unwrap();
    assert!(fs.ecvs.contains_key("page_cached"));

    // Expected cached read: 0.9 * 0.2 uJ/B + 0.1 * 3 uJ/B = 0.48 uJ/B.
    let dist = energy_clarity::core::interp::enumerate_exact(
        fs,
        "cached_read",
        &[Value::Num(1000.0)],
        &fs.ecv_env(),
        16,
        &EvalConfig::default(),
    )
    .unwrap();
    assert!((dist.mean().as_joules() - 0.48e-3).abs() < 1e-9);
}
