//! Differential regression: telemetry must be a pure observer.
//!
//! The tentpole claim of the telemetry layer (DESIGN.md §telemetry) is
//! that collection never perturbs what it observes: every experiment
//! produces **bit-identical** results with the sink enabled and
//! disabled, and the trace itself is byte-stable across thread counts.
//! These tests run each paper experiment twice — once inside a
//! collecting session, once with the sink off — and require the
//! serialized reports to match exactly (string equality, no tolerance).
//!
//! Sessions serialize on a global lock, so the paired runs cannot bleed
//! events into each other even when the test harness runs threads
//! concurrently.

use ei_telemetry as telemetry;
use serde::Serialize;

/// Canonical serialization: the comparison is on bytes, not semantics.
fn json<T: Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(&v.to_value()).expect("report serializes")
}

/// Runs `f` with telemetry collecting and again with it disabled and
/// requires byte-identical serialized results.
fn assert_unperturbed<T: Serialize>(name: &str, mut f: impl FnMut() -> T) {
    let with = {
        let session = telemetry::session();
        let r = f();
        let snap = session.finish();
        // The run must actually have been observed (when compiled in):
        // an empty trace would make this differential test vacuous.
        if telemetry::enabled() {
            assert!(
                !snap.counters.is_empty() || !snap.spans.is_empty(),
                "{name}: enabled session recorded nothing"
            );
        }
        json(&r)
    };
    let without = {
        let _session = telemetry::disabled_session();
        json(&f())
    };
    assert_eq!(with, without, "{name}: telemetry perturbed the result");
}

#[test]
fn fig2_unperturbed_by_telemetry() {
    assert_unperturbed("fig2", ei_bench::fig2::run);
}

#[test]
fn e1_eas_unperturbed_by_telemetry() {
    assert_unperturbed("e1_eas", ei_bench::experiments::run_eas);
}

#[test]
fn e2_cluster_unperturbed_by_telemetry() {
    assert_unperturbed("e2_cluster", ei_bench::experiments::run_cluster);
}

#[test]
fn e3_fuzz_unperturbed_by_telemetry() {
    assert_unperturbed("e3_fuzz", ei_bench::experiments::run_fuzz);
}

#[test]
fn e4_marginal_unperturbed_by_telemetry() {
    assert_unperturbed("e4_marginal", ei_bench::experiments::run_marginal);
}

#[test]
fn e5_sidechannel_unperturbed_by_telemetry() {
    assert_unperturbed("e5_sidechannel", ei_bench::experiments::run_sidechannel);
}

#[test]
fn e6_bughunt_unperturbed_by_telemetry() {
    assert_unperturbed("e6_bughunt", ei_bench::experiments::run_bughunt);
}

#[test]
fn e7_composition_unperturbed_by_telemetry() {
    assert_unperturbed("e7_composition", ei_bench::experiments::run_composition);
}

#[test]
fn e9_faults_unperturbed_by_telemetry() {
    assert_unperturbed("e9_faults", ei_bench::experiments::run_faults);
}

#[test]
fn table1_unperturbed_by_telemetry() {
    assert_unperturbed("table1", ei_bench::table1::run);
}

/// E11 writes counters from inside the recalibration loop itself
/// (`service.recal.*`, `sched.energy_lb.swaps`), so it is the most
/// likely place for an observer effect to creep in: detection, refits,
/// swaps, and rollbacks must all land identically with the sink off.
#[test]
fn e11_drift_smoke_unperturbed_by_telemetry() {
    assert_unperturbed("e11_drift", || {
        ei_bench::drift::run_with(&ei_bench::drift::E11Config::smoke())
    });
}

/// The Monte-Carlo engine is the one place work is farmed out to
/// threads, so it is where a naive trace would diverge: both the sample
/// vector *and the trace* must be identical at 1 and 8 threads.
#[test]
fn mc_results_and_trace_identical_across_thread_counts() {
    use ei_core::interp::{monte_carlo_par, EvalConfig};

    let iface = ei_core::parser::parse(
        r#"interface svc {
            ecv hit: bernoulli(0.7);
            ecv scale: uniform(0.5, 2.0);
            fn handle(n) {
                if ecv(hit) { return 1 mJ * n * ecv(scale); }
                else { return 10 mJ * n * ecv(scale); }
            }
        }"#,
    )
    .expect("test interface parses");
    let env = ei_core::ecv::EcvEnv::from_decls(&iface.ecvs);
    let args = [ei_core::value::Value::Num(3.0)];
    let cfg = EvalConfig::default();

    let run = |threads: usize| {
        let session = telemetry::session();
        let dist = monte_carlo_par(&iface, "handle", &args, &env, 1000, 42, threads, &cfg)
            .expect("mc evaluates");
        (dist, session.finish())
    };

    let (dist_1, trace_1) = run(1);
    let (dist_8, trace_8) = run(8);

    assert_eq!(
        dist_1, dist_8,
        "sample vectors diverge across thread counts"
    );
    assert_eq!(trace_1, trace_8, "traces diverge across thread counts");
    if telemetry::enabled() {
        assert_eq!(
            trace_8.counters.get("core.interp.mc_samples"),
            Some(&1000),
            "trace missing the MC sample counter"
        );
        // 1000 samples in 64-sample chunks -> 16 chunk spans, indexed
        // 0..=15 regardless of which worker ran which chunk.
        let chunk = trace_8
            .spans
            .iter()
            .find(|s| s.path == "mc:handle/mc_chunk:handle")
            .expect("chunk span present");
        assert_eq!((chunk.count, chunk.first_seq, chunk.last_seq), (16, 0, 15));
    }
}
