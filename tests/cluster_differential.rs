//! Differential test: the PR 3 step-driven `ei_service::frontend` and a
//! DES-driven dispatch of the same workload agree byte-for-byte.
//!
//! `ServiceFrontend::handle(req, gap)` advances an internal clock and
//! serves; `ServiceFrontend::handle_at(req, at)` is the event-driven
//! entry point. Scheduling the identical arrival instants through
//! `ei_sched::des::EventQueue` and dispatching each pop into `handle_at`
//! must reproduce the step-driven run exactly — every counter, every
//! per-request energy bit, every final path. The arrival instants are
//! computed by the same cumulative float addition `handle` performs, so
//! there is no rounding daylight between the two drivers.

use ei_core::units::TimeSpan;
use ei_hw::faults::FaultPlan;
use ei_hw::gpu::rtx4090;
use ei_hw::nic::datacenter_nic;
use ei_sched::des::{EventQueue, SimTime};
use ei_service::{request_stream, FrontendConfig, Request, ServiceFrontend};

fn single_replica_frontend(seed: u64) -> ServiceFrontend {
    single_replica_with_backlog(seed, FrontendConfig::default().max_backlog)
}

fn single_replica_with_backlog(seed: u64, max_backlog: TimeSpan) -> ServiceFrontend {
    let config = FrontendConfig {
        replicas: 1,
        max_backlog,
        ..FrontendConfig::default()
    };
    ServiceFrontend::new(
        rtx4090(),
        datacenter_nic(),
        256,
        4096,
        FaultPlan::healthy(seed),
        config,
    )
    .expect("model fits")
}

/// Runs the same stream step-driven and event-driven; both frontends must
/// end in bit-identical states.
fn assert_drivers_agree(stream: &[Request], gap: TimeSpan) {
    // Step-driven reference.
    let mut step = single_replica_frontend(7);
    let completed = step.run(stream, gap);

    // Event-driven: schedule every arrival on the DES queue, carrying the
    // exact TimeSpan produced by the same `now + gap` accumulation, then
    // dispatch pops into `handle_at`.
    let mut des = single_replica_frontend(7);
    let mut q: EventQueue<(Request, TimeSpan)> = EventQueue::new();
    let mut t = TimeSpan::ZERO;
    for req in stream {
        t += gap;
        q.push(SimTime::from_span(t), (*req, t));
    }
    let mut des_completed = 0;
    while let Some((_, (req, at))) = q.pop() {
        if des.handle_at(req, at).is_some() {
            des_completed += 1;
        }
    }

    assert_eq!(completed, des_completed, "completion counts diverge");
    assert_eq!(step.stats(), des.stats(), "frontend counters diverge");
    assert_eq!(
        step.log().len(),
        des.log().len(),
        "per-request logs diverge in length"
    );
    for (i, ((p_a, e_a), (p_b, e_b))) in step.log().iter().zip(des.log()).enumerate() {
        assert_eq!(p_a, p_b, "request {i}: final paths diverge");
        assert_eq!(
            e_a.as_joules().to_bits(),
            e_b.as_joules().to_bits(),
            "request {i}: energies diverge ({} vs {})",
            e_a.as_joules(),
            e_b.as_joules()
        );
    }
    assert_eq!(
        step.mean_request_energy().as_joules().to_bits(),
        des.mean_request_energy().as_joules().to_bits(),
        "mean request energy diverges"
    );
}

#[test]
fn event_driven_dispatch_matches_step_driven_run() {
    let stream = request_stream(1_000, 150, 0.6, 16384, 0.25, 42);
    assert_drivers_agree(&stream, TimeSpan::millis(5.0));
}

#[test]
fn sparse_arrivals_agree() {
    // Gaps long enough that every replica drains between requests.
    let stream = request_stream(300, 50, 0.5, 8192, 0.0, 9);
    assert_drivers_agree(&stream, TimeSpan::millis(50.0));
}

#[test]
fn coincident_arrivals_agree_via_push_order() {
    // Zero inter-arrival: every event lands on the same logical instant,
    // so the event queue's (time, seq) tie-break alone must reproduce the
    // stream order the step-driven run processes.
    let stream = request_stream(200, 40, 0.6, 8192, 0.0, 11);
    assert_drivers_agree(&stream, TimeSpan::ZERO);
}

#[test]
fn mixed_cadence_still_agrees() {
    // A cadence that stresses backlog-based shedding: bursts (zero gap
    // inside a burst) separated by drains. Step-driven: alternate gaps;
    // event-driven replicates the same accumulation.
    // All-miss large-image requests against a tight backlog bound so the
    // zero-gap bursts shed and the drains between them recover.
    let backlog = TimeSpan::micros(50.0);
    let stream = request_stream(400, 60, 0.0, 65536, 0.25, 13);
    let mut step = single_replica_with_backlog(3, backlog);
    let mut des = single_replica_with_backlog(3, backlog);
    let mut q: EventQueue<(Request, TimeSpan)> = EventQueue::new();

    let gap_for = |i: usize| {
        if i % 16 < 14 {
            TimeSpan::ZERO
        } else {
            TimeSpan::millis(50.0)
        }
    };
    let mut completed_step = 0;
    for (i, req) in stream.iter().enumerate() {
        if step.handle(*req, gap_for(i)).is_some() {
            completed_step += 1;
        }
    }
    let mut t = TimeSpan::ZERO;
    for (i, req) in stream.iter().enumerate() {
        t += gap_for(i);
        q.push(SimTime::from_span(t), (*req, t));
    }
    let mut completed_des = 0;
    while let Some((_, (req, at))) = q.pop() {
        if des.handle_at(req, at).is_some() {
            completed_des += 1;
        }
    }
    assert_eq!(completed_step, completed_des);
    assert_eq!(step.stats(), des.stats());
    assert!(
        step.stats().shed > 0,
        "the bursty cadence must exercise shedding"
    );
}

#[test]
#[should_panic(expected = "dispatched into the past")]
fn dispatching_into_the_past_panics() {
    let mut fe = single_replica_frontend(1);
    let stream = request_stream(2, 0, 0.0, 8192, 0.0, 1);
    fe.handle_at(stream[0], TimeSpan::millis(10.0));
    fe.handle_at(stream[1], TimeSpan::millis(5.0));
}
