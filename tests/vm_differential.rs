//! Differential testing: the bytecode VM against the tree-walk oracle.
//!
//! The VM (`ei_core::vm`) claims *bit-identical* behaviour with the
//! interpreter — same `Value`s, same error variants and messages, same
//! fuel exhaustion boundaries, and byte-identical telemetry traces — on
//! every program, not just the goldens. The claim covers both bytecode
//! variants: the raw lowering and the verifier-gated optimized form, so
//! every property here is a *triple* differential — tree-walk oracle ≡
//! unoptimized chunks ≡ optimized chunks. These properties generate
//! loop/branch/unit/ECV-rich interfaces from the shared corpus
//! (`crates/core/tests/common/generators.rs`, the PR 4 generators) and
//! run all three engine variants over them.
//!
//! Comparisons are on `Debug` renderings of the full `Result`, so a
//! divergence in an error variant or message fails just as loudly as a
//! wrong answer; distributions compare with `EnergyDist`'s exact
//! (bitwise) equality, and traces compare as serialized JSON bytes.
//!
//! Alongside the random programs, the seeded bad-chunk corpus pins the
//! other side of the contract: programs the verifier must *reject*, with
//! byte-stable diagnostics.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ei_core::ecv::{EcvEnv, EcvValue};
use ei_core::interp::{
    eval_with_assignment, evaluate_batch, monte_carlo, monte_carlo_par, EvalConfig, ExecMode,
};
use ei_core::units::{Calibration, Energy};
use ei_core::value::Value;
use ei_telemetry as telemetry;

#[path = "../crates/core/tests/common/generators.rs"]
mod generators;
use generators::*;

/// Calibrates every abstract unit the interface declares, so energy
/// results reduce to Joules under both engines.
fn calibrate_all(iface: &ei_core::interface::Interface) -> Calibration {
    Calibration::from_pairs(
        iface
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.as_str(), Energy::microjoules((i + 1) as f64))),
    )
}

fn config(iface: &ei_core::interface::Interface, mode: ExecMode) -> EvalConfig {
    EvalConfig {
        calibration: calibrate_all(iface),
        mode,
        ..EvalConfig::default()
    }
}

/// The three engine variants under test: the tree-walk oracle, the raw
/// bytecode lowering, and the optimized bytecode.
const VARIANTS: [(ExecMode, bool, &str); 3] = [
    (ExecMode::TreeWalk, true, "tree-walk"),
    (ExecMode::Compiled, false, "vm (unoptimized)"),
    (ExecMode::Compiled, true, "vm (optimized)"),
];

fn variant_config(
    iface: &ei_core::interface::Interface,
    mode: ExecMode,
    optimize: bool,
) -> EvalConfig {
    EvalConfig {
        optimize,
        ..config(iface, mode)
    }
}

/// One concrete assignment for the `hot`/`mix` ECVs of
/// [`arb_vm_interface`] programs.
fn assignment(hot: bool, mix: f64) -> BTreeMap<String, EcvValue> {
    let mut a = BTreeMap::new();
    a.insert("hot".to_string(), EcvValue::Bool(hot));
    a.insert("mix".to_string(), EcvValue::Num(mix));
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-shot evaluation: identical `Value` or identical error,
    /// bit for bit, for every generated program and entry point.
    #[test]
    fn eval_matches_oracle(
        iface in arb_vm_interface(),
        z in 0.0f64..2000.0,
        hot: bool,
        mix in 0.0f64..4.0,
    ) {
        let ecvs = assignment(hot, mix);
        for func in ["entry", "work", "top"] {
            let oracle = eval_with_assignment(
                &iface, func, &[Value::Num(z)], &ecvs,
                &config(&iface, ExecMode::TreeWalk),
            );
            for (mode, optimize, label) in [VARIANTS[1], VARIANTS[2]] {
                let machine = eval_with_assignment(
                    &iface, func, &[Value::Num(z)], &ecvs,
                    &variant_config(&iface, mode, optimize),
                );
                prop_assert_eq!(
                    format!("{oracle:?}"),
                    format!("{machine:?}"),
                    "{} diverges on `{}`:\n{}",
                    label,
                    func,
                    ei_core::vm::disassemble(&ei_core::vm::compile(&iface).unwrap()),
                );
            }
        }
    }

    /// Fuel exhaustion must trip at the same budget: sweep a geometric
    /// ladder of budgets (plus the default) and require the same outcome
    /// — value or `FuelExhausted { limit }` — at every rung.
    #[test]
    fn fuel_boundaries_match_oracle(
        iface in arb_vm_interface(),
        z in 0.0f64..2000.0,
        hot: bool,
        mix in 0.0f64..4.0,
    ) {
        let ecvs = assignment(hot, mix);
        let mut budgets: Vec<u64> = (0..12).map(|i| (1u64 << i) - 1).collect();
        budgets.push(EvalConfig::default().fuel);
        for fuel in budgets {
            let tree = EvalConfig { fuel, ..config(&iface, ExecMode::TreeWalk) };
            let oracle = eval_with_assignment(&iface, "entry", &[Value::Num(z)], &ecvs, &tree);
            for (mode, optimize, label) in [VARIANTS[1], VARIANTS[2]] {
                let comp = EvalConfig { fuel, ..variant_config(&iface, mode, optimize) };
                let machine =
                    eval_with_assignment(&iface, "entry", &[Value::Num(z)], &ecvs, &comp);
                prop_assert_eq!(
                    format!("{oracle:?}"),
                    format!("{machine:?}"),
                    "{} diverges at fuel budget {}",
                    label,
                    fuel
                );
            }
        }
    }

    /// Monte-Carlo statistics: the compiled engine must reproduce the
    /// oracle's `EnergyDist` exactly (bitwise sample equality), serially
    /// and at 8 threads, and the telemetry traces of all runs must be
    /// byte-identical — the trace must not reveal which engine ran or
    /// how many workers ran it.
    #[test]
    fn mc_statistics_and_traces_match(iface in arb_vm_interface(), z in 0.0f64..2000.0) {
        let env = EcvEnv::from_decls(&iface.ecvs);
        let args = [Value::Num(z)];
        let n = 192; // 3 chunks: exercises chunk seeding on both engines

        let run = |mode: ExecMode, optimize: bool, threads: usize| {
            let cfg = variant_config(&iface, mode, optimize);
            let session = telemetry::session();
            let dist = if threads == 0 {
                monte_carlo(&iface, "entry", &args, &env, n, 7, &cfg)
            } else {
                monte_carlo_par(&iface, "entry", &args, &env, n, 7, threads, &cfg)
            };
            (dist, session.finish())
        };

        let (oracle, oracle_trace) = run(ExecMode::TreeWalk, true, 0);
        for (mode, optimize, label) in [VARIANTS[1], VARIANTS[2]] {
            let (compiled, compiled_trace) = run(mode, optimize, 0);
            match (&oracle, &compiled) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a, b, "serial MC distributions diverge ({})", label)
                }
                (a, b) => prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "serial MC errors diverge ({})",
                    label
                ),
            }
            prop_assert_eq!(
                oracle_trace.to_json_pretty(),
                compiled_trace.to_json_pretty(),
                "serial traces reveal the engine ({})",
                label
            );
        }

        // Parallel scheduling only has a deterministic error to report
        // when there is no error at all, so the thread-count comparison
        // runs on the success path (as in telemetry_differential.rs).
        if let Ok(expect) = &oracle {
            for (mode, optimize, label) in VARIANTS {
                for threads in [1, 8] {
                    let (dist, trace) = run(mode, optimize, threads);
                    let dist = dist.expect("serial run succeeded");
                    prop_assert_eq!(
                        expect, &dist,
                        "{} x{} diverges from the serial oracle", label, threads
                    );
                    prop_assert_eq!(
                        oracle_trace.to_json_pretty(),
                        trace.to_json_pretty(),
                        "{} x{} trace reveals engine or thread count", label, threads
                    );
                }
            }
        }
    }

    /// Batch evaluation across modes, including `Auto` (which must pick
    /// an engine without changing any byte of the answer).
    #[test]
    fn batch_matches_oracle(iface in arb_vm_interface(), zs in proptest::collection::vec(0.0f64..2000.0, 1..6)) {
        let env = EcvEnv::from_decls(&iface.ecvs);
        let batch: Vec<Vec<Value>> = zs.iter().map(|z| vec![Value::Num(*z)]).collect();
        let run = |mode: ExecMode, optimize: bool| {
            let cfg = variant_config(&iface, mode, optimize);
            format!("{:?}", evaluate_batch(&iface, "entry", &batch, &env, 11, &cfg))
        };
        let oracle = run(ExecMode::TreeWalk, true);
        prop_assert_eq!(&oracle, &run(ExecMode::Compiled, false), "unoptimized batch diverges");
        prop_assert_eq!(&oracle, &run(ExecMode::Compiled, true), "optimized batch diverges");
        prop_assert_eq!(&oracle, &run(ExecMode::Auto, true), "Auto batch diverges");
    }

    /// The pure-numeric corpus (deep builtin/operator nesting over raw
    /// floats) through both engines, at adversarial inputs.
    #[test]
    fn numeric_corpus_matches_oracle(iface in arb_numeric_interface(), x in arb_pos_float()) {
        let ecvs = BTreeMap::new();
        for x in [x, 0.0, -x, -0.0] {
            let oracle = eval_with_assignment(
                &iface, "f", &[Value::Num(x)], &ecvs, &config(&iface, ExecMode::TreeWalk),
            );
            for (mode, optimize, label) in [VARIANTS[1], VARIANTS[2]] {
                let machine = eval_with_assignment(
                    &iface, "f", &[Value::Num(x)], &ecvs,
                    &variant_config(&iface, mode, optimize),
                );
                prop_assert_eq!(
                    format!("{oracle:?}"),
                    format!("{machine:?}"),
                    "{} diverges at x = {:?}", label, x
                );
            }
        }
    }

    /// The optimizer's output must satisfy the same static contract as
    /// the lowering's: every optimized program re-verifies against its
    /// source interface, for every generated program.
    #[test]
    fn optimized_programs_reverify(iface in arb_vm_interface()) {
        let program = ei_core::vm::compile(&iface).expect("generated interface compiles");
        let optimized = ei_core::vm::optimize(&program);
        if let Err(errs) = ei_core::vm::verify_against(&iface, &optimized) {
            prop_assert!(
                false,
                "optimized program fails verification:\n{}\n{}",
                ei_core::vm::render_errors(&errs),
                ei_core::vm::disassemble(&optimized),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The rejection side of the contract: the seeded bad-chunk corpus.
// ---------------------------------------------------------------------------

/// Every entry of the handcrafted ill-formed-program corpus must be
/// rejected by the verifier with its recorded diagnostic, byte for byte —
/// the same stability the `cert_gate` CI binary enforces.
#[test]
fn bad_chunk_corpus_is_rejected_with_stable_diagnostics() {
    let corpus = ei_core::vm::testing::bad_chunk_corpus();
    assert!(corpus.len() >= 15, "corpus shrank to {}", corpus.len());
    for bad in corpus {
        match ei_core::vm::verify(&bad.program) {
            Ok(()) => panic!("verifier accepted corpus entry `{}`", bad.name),
            Err(errs) => assert_eq!(
                ei_core::vm::render_errors(&errs),
                bad.expected,
                "diagnostic drifted for corpus entry `{}`",
                bad.name
            ),
        }
    }
}
