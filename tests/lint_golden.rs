//! Golden snapshots for the `eil-sema` lint framework.
//!
//! `tests/fixtures/bad_eil/` holds one deliberately defective interface per
//! lint rule. Each fixture is linted through the library API
//! (`ei_core::sema::check_program`) and both renderings — the human text
//! report and the machine JSON report — are frozen byte-for-byte under
//! `tests/golden/lint/`. On top of the snapshots, each fixture asserts the
//! rule id and exact `line:col` of the seeded defect, so a parser or sema
//! regression that shifts positions fails with a readable message before
//! the byte diff does.
//!
//! To regenerate after an intentional diagnostic change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test lint_golden
//! ```
//!
//! then review the diff of `tests/golden/lint/*` like any other code change.

use energy_clarity::core::parser::parse_all;
use energy_clarity::core::sema::{self, LintOptions};

/// A seeded defect: `(rule, line, col)`.
type Defect = (&'static str, u32, u32);

/// `(fixture stem, seeded defects)`.
fn fixtures() -> Vec<(&'static str, Vec<Defect>)> {
    vec![
        ("e001_unit_mismatch", vec![("E001", 3, 25)]),
        ("e002_uncalibrated", vec![("E002", 4, 16)]),
        ("e003_negative_energy", vec![("E003", 2, 8)]),
        ("e004_unbounded", vec![("E004", 4, 9), ("E004", 9, 8)]),
        (
            "w001_dead",
            vec![("W001", 2, 10), ("W001", 3, 9), ("W001", 5, 9)],
        ),
        (
            "w002_nondeterminism",
            vec![("W002", 6, 21), ("W002", 9, 12)],
        ),
        ("w003_composition", vec![("W003", 2, 15)]),
    ]
}

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Compares `actual` byte-for-byte against the golden file `name`, or
/// rewrites the file when `GOLDEN_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = repo_path(&format!("tests/golden/lint/{name}"));
    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test \
             --test lint_golden to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch in {name}; if intentional, regenerate with \
         GOLDEN_BLESS=1 cargo test --test lint_golden"
    );
}

#[test]
fn bad_eil_corpus_matches_golden_reports() {
    for (stem, defects) in fixtures() {
        let src_path = repo_path(&format!("tests/fixtures/bad_eil/{stem}.eil"));
        let src = std::fs::read_to_string(&src_path)
            .unwrap_or_else(|e| panic!("{}: {e}", src_path.display()));
        let program = parse_all(&src).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let diags = sema::check_program(&program, &LintOptions::default());

        // Every seeded defect is reported with its exact rule and position.
        for (rule, line, col) in &defects {
            assert!(
                diags
                    .iter()
                    .any(|d| d.rule == *rule && d.span.line == *line && d.span.col == *col),
                "{stem}: expected {rule} at {line}:{col}, got:\n{}",
                diags.render_text()
            );
        }
        // ...and nothing is silently clean.
        assert!(!diags.is_empty(), "{stem}: fixture lints clean");

        check_golden(&format!("{stem}.txt"), &diags.render_text());
        check_golden(&format!("{stem}.json"), &diags.render_json());
    }
}

#[test]
fn good_corpus_has_no_errors() {
    // The realistic corpus in `language_corpus.rs` doubles as the lint
    // rules' false-positive regression suite: nothing in it is an error.
    // (Uncalibrated abstract units would be E002, so calibrate the one
    // unit the corpus declares.)
    let src = std::fs::read_to_string(repo_path("tests/fixtures/bad_eil/w002_nondeterminism.eil"))
        .unwrap();
    // Warnings must never escalate: the W002 fixture has zero errors.
    let program = parse_all(&src).unwrap();
    let diags = sema::check_program(&program, &LintOptions::default());
    assert_eq!(diags.error_count(), 0, "{}", diags.render_text());
    assert!(diags.warning_count() > 0);
}
