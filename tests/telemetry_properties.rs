//! Property tests for the telemetry layer's determinism claims.
//!
//! The trace is byte-stable across thread counts because every aggregate
//! operation is order-free integer arithmetic. That reduces to three
//! properties, pinned down here over random inputs:
//!
//! 1. histogram merge is associative and commutative (exactly — wrapping
//!    adds and min/max, no floats);
//! 2. bucket counts are identical no matter how observations are
//!    interleaved across shards;
//! 3. counter totals equal the sum of per-thread contributions.

use proptest::prelude::*;

use ei_telemetry::{counter_add, session, Histogram, FUEL};

/// Observes each tick value into a fresh histogram.
fn hist_of(ticks: &[u64]) -> Histogram {
    let mut h = Histogram::new(&FUEL);
    for &t in ticks {
        h.observe_ticks(t);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..30),
        b in proptest::collection::vec(any::<u64>(), 0..30),
        c in proptest::collection::vec(any::<u64>(), 0..30),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(
            merged(&merged(&ha, &hb), &hc),
            merged(&ha, &merged(&hb, &hc))
        );
    }

    /// Sharding a stream of observations arbitrarily and merging the
    /// shards in any order reproduces the serial histogram exactly —
    /// the property that makes per-thread sinks safe.
    #[test]
    fn bucket_counts_deterministic_under_interleaving(
        obs in proptest::collection::vec((any::<u64>(), 0usize..4), 1..80),
        merge_right_to_left in any::<bool>(),
    ) {
        let serial = hist_of(&obs.iter().map(|&(t, _)| t).collect::<Vec<_>>());

        let mut shards = vec![Histogram::new(&FUEL); 4];
        for &(t, shard) in &obs {
            shards[shard].observe_ticks(t);
        }
        if merge_right_to_left {
            shards.reverse();
        }
        let mut combined = Histogram::new(&FUEL);
        for s in &shards {
            combined.merge(s);
        }
        prop_assert_eq!(combined, serial);
    }

    /// Counters flushed from concurrently-recording threads sum to
    /// exactly the per-thread totals, whatever the flush order.
    #[test]
    fn counter_total_is_sum_of_per_thread_contributions(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(1u64..1000, 0..20), 1..6),
    ) {
        let s = session();
        let collecting = ei_telemetry::enabled();
        std::thread::scope(|scope| {
            for adds in &per_thread {
                scope.spawn(move || {
                    for &n in adds {
                        counter_add("test.prop_total", n);
                    }
                    // Scope join does not wait for TLS destructors, so
                    // worker closures flush explicitly (see sink docs).
                    ei_telemetry::flush();
                });
            }
        });
        let snap = s.finish();
        let expected: u64 = per_thread.iter().flatten().sum();
        if collecting {
            prop_assert_eq!(
                snap.counters.get("test.prop_total").copied().unwrap_or(0),
                expected
            );
        } else {
            prop_assert!(snap.counters.is_empty());
        }
    }
}
