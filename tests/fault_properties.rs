//! Properties of the fault-injection layer and the degraded serving tier.
//!
//! The load-bearing claims (DESIGN.md §faults): a seeded [`FaultPlan`] is
//! a *pure schedule* — replaying the same plan over the same stream gives
//! byte-identical stats, per-request energies, and means, no matter how
//! often or in what process it runs; the fault-conditioned Fig. 1
//! interface evaluates identically at any Monte-Carlo thread count,
//! telemetry trace included; and every measured statistic is total — no
//! NaN escapes even from empty or fully-shed runs.

use proptest::prelude::*;

use ei_core::ecv::EcvEnv;
use ei_core::interp::{monte_carlo_par, EvalConfig};
use ei_core::units::TimeSpan;
use ei_core::value::Value;
use ei_hw::faults::{standard_matrix, FaultPlan};
use ei_hw::gpu::rtx4090;
use ei_hw::nic::datacenter_nic;
use ei_service::{
    calibrate_with_fault, fig1_faulted_calibration, fig1_interface_faulted, request_stream,
    CacheEnergy, FaultMixture, FrontendConfig, FrontendStats, ServiceFrontend,
};
use ei_telemetry as telemetry;

/// Picks one plan out of the standard matrix (including `healthy`).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0usize..6, 0u64..1_000).prop_map(|(idx, seed)| {
        standard_matrix(seed, TimeSpan::seconds(2.0))
            .swap_remove(idx)
            .plan
    })
}

/// Runs a seeded frontend over a seeded stream and returns everything an
/// observer could see, with energies as raw bits so the comparison is
/// exact rather than tolerance-based.
fn observe(
    plan: FaultPlan,
    n: usize,
    n_hot: u64,
    hot_fraction: f64,
    stream_seed: u64,
) -> (FrontendStats, u64, Vec<u64>) {
    let mut fe = ServiceFrontend::new(
        rtx4090(),
        datacenter_nic(),
        64,
        1024,
        plan,
        FrontendConfig::default(),
    )
    .expect("model fits");
    let stream = request_stream(n, n_hot, hot_fraction, 8192, 0.25, stream_seed);
    fe.run(&stream, TimeSpan::millis(5.0));
    let log_bits = fe
        .log()
        .iter()
        .map(|(_, e)| e.as_joules().to_bits())
        .collect();
    (
        fe.stats(),
        fe.mean_request_energy().as_joules().to_bits(),
        log_bits,
    )
}

fn assert_mixture_total(mix: &FaultMixture) {
    for (name, p) in [
        ("p_request_hit", mix.p_request_hit),
        ("p_local_hit", mix.p_local_hit),
        ("p_remote_alive", mix.p_remote_alive),
        ("p_brownout", mix.p_brownout),
        ("p_degraded_given_brownout", mix.p_degraded_given_brownout),
    ] {
        assert!(
            (0.0..=1.0).contains(&p),
            "{name} = {p} is not a probability"
        );
    }
    assert!(
        mix.timeout_attempts_per_request.is_finite() && mix.timeout_attempts_per_request >= 0.0,
        "timeout rate = {}",
        mix.timeout_attempts_per_request
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying a seeded plan over a seeded stream is byte-identical:
    /// same stats, same per-request energy bits, same mean bits.
    #[test]
    fn faulted_service_replays_byte_identical(
        plan in arb_plan(),
        n in 0usize..150,
        n_hot in 0u64..40,
        hot_fraction in 0.0f64..1.0,
        stream_seed in 0u64..1_000,
    ) {
        let a = observe(plan.clone(), n, n_hot, hot_fraction, stream_seed);
        let b = observe(plan, n, n_hot, hot_fraction, stream_seed);
        prop_assert_eq!(a, b);
    }

    /// Every statistic a run exposes is total: probabilities stay in
    /// [0, 1] and nothing is NaN, even when the run is empty, the hot
    /// set is empty, or admission control shed everything.
    #[test]
    fn run_statistics_are_never_nan(
        plan in arb_plan(),
        n in 0usize..100,
        n_hot in 0u64..20,
        hot_fraction in 0.0f64..1.0,
        stream_seed in 0u64..1_000,
    ) {
        let (stats, mean_bits, _) = observe(plan, n, n_hot, hot_fraction, stream_seed);
        prop_assert!(f64::from_bits(mean_bits).is_finite());
        assert_mixture_total(&stats.mixture());
        prop_assert!(stats.metered_energy_j.is_finite());
        prop_assert!(stats.true_energy_j.is_finite());
    }

    /// The fault-conditioned interface built from any run's mixture
    /// evaluates to the same sample vector — and the same telemetry
    /// trace — at 1 and 8 Monte-Carlo threads.
    #[test]
    fn faulted_interface_mc_identical_across_threads(
        plan in arb_plan(),
        stream_seed in 0u64..1_000,
    ) {
        let mut fe = ServiceFrontend::new(
            rtx4090(),
            datacenter_nic(),
            64,
            1024,
            plan,
            FrontendConfig::default(),
        )
        .expect("model fits");
        let stream = request_stream(120, 30, 0.6, 8192, 0.25, stream_seed);
        fe.run(&stream, TimeSpan::millis(5.0));
        let mix = fe.stats().mixture();

        let cal = calibrate_with_fault(&rtx4090(), 1.0, 0.0).expect("model fits");
        let (derate, sm_loss) = fe.plan().worst_brownout().unwrap_or((1.0, 0.0));
        let cal_br = calibrate_with_fault(&rtx4090(), derate, sm_loss).expect("model fits");
        let nic = datacenter_nic();
        let iface = fig1_interface_faulted(
            &mix,
            &cal,
            &cal_br,
            &CacheEnergy::default(),
            nic.e_byte,
            nic.e_packet,
        );
        let cfg = EvalConfig {
            calibration: fig1_faulted_calibration(&cal, &cal_br),
            ..EvalConfig::default()
        };
        let req = Value::num_record([
            ("image_id", 1.0),
            ("image_size", 8192.0),
            ("image_zeros", 2048.0),
        ]);
        let env = EcvEnv::from_decls(&iface.ecvs);

        let run = |threads: usize| {
            let session = telemetry::session();
            let dist = monte_carlo_par(&iface, "handle", std::slice::from_ref(&req), &env, 512, 7, threads, &cfg)
                .expect("faulted interface samples");
            (dist, session.finish())
        };
        let (dist_1, trace_1) = run(1);
        let (dist_8, trace_8) = run(8);
        prop_assert_eq!(dist_1, dist_8);
        prop_assert_eq!(trace_1, trace_8);
    }
}

/// The degenerate empty service: no requests ever served. Every summary
/// statistic must still be a number.
#[test]
fn empty_runs_yield_numbers_not_nan() {
    let fe = ServiceFrontend::new(
        rtx4090(),
        datacenter_nic(),
        64,
        1024,
        FaultPlan::healthy(0),
        FrontendConfig::default(),
    )
    .unwrap();
    assert_eq!(fe.mean_request_energy().as_joules(), 0.0);
    assert_mixture_total(&fe.stats().mixture());

    let svc = ei_service::MlWebService::new(
        ei_hw::gpu::GpuSim::new(rtx4090()),
        ei_hw::nic::NicSim::new(datacenter_nic()),
        64,
        1024,
    )
    .unwrap();
    let (p_hit, p_local) = svc.measured_hit_rates();
    assert_eq!((p_hit, p_local), (0.0, 0.0));
    assert_eq!(svc.mean_request_energy().as_joules(), 0.0);
}
