//! Golden snapshots of the bytecode disassembler (`ei_core::vm`).
//!
//! The Fig. 1 interfaces (`examples/eil/*.eil`) plus a loop-heavy
//! compiler-stress interface are compiled and their disassembly frozen
//! byte-for-byte under `tests/golden/vm/`. The disassembly includes the
//! program fingerprint, constant pools, traps, and per-instruction fuel
//! weights, so *any* codegen change — reordered registers, a different
//! const-folding decision, a changed fuel accounting — surfaces as a
//! reviewable textual diff rather than a silent behaviour shift.
//!
//! To regenerate after an intentional codegen change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test vm_golden
//! ```
//!
//! then review the diff of `tests/golden/vm/*` like any other code change.

use std::collections::BTreeMap;

use ei_core::interp::{eval_with_assignment, EvalConfig, ExecMode};
use ei_core::value::Value;

/// A compiler-stress interface: const-foldable loop bounds (unrolled),
/// dynamic loop bounds (generic codegen), a bounded while, short-circuit
/// logic, recursion, and cross-function calls.
const LOOPS_SRC: &str = r#"
interface loops "codegen stress: unrolling, guards, recursion" {
    unit tick;
    ecv fast_path: bernoulli(0.5);
    fn unrolled() {
        let e = 0 J;
        for i in 0..4 {
            e = e + 3 uJ + 1 tick;
        }
        return e;
    }
    fn dynamic(n) {
        let e = 0 J;
        for i in 0..n {
            e = e + 1 uJ;
        }
        return e;
    }
    fn guarded(x) {
        let e = 0 J;
        while x < 10 bound 16 {
            x = x + 1;
            e = e + 2 uJ;
        }
        return e;
    }
    fn fact(n) {
        if n < 2 { return 1; } else { return n * fact(n - 1); }
    }
    fn top(n) {
        if fast_path && n < 100 {
            return unrolled() * min(fact(4), 30);
        } else {
            return dynamic(n) + guarded(0);
        }
    }
}
"#;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Compares `actual` byte-for-byte against `tests/golden/vm/<name>`, or
/// rewrites the file when `GOLDEN_BLESS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = repo_path(&format!("tests/golden/vm/{name}"));
    if std::env::var("GOLDEN_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test \
             --test vm_golden to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch in {name}; if intentional, regenerate with \
         GOLDEN_BLESS=1 cargo test --test vm_golden"
    );
}

/// `(golden stem, interface source)` for every locked program.
fn corpus() -> Vec<(&'static str, String)> {
    let read = |rel: &str| {
        let p = repo_path(rel);
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
    };
    vec![
        ("webservice", read("examples/eil/webservice.eil")),
        ("dram", read("examples/eil/dram.eil")),
        ("loops", LOOPS_SRC.to_string()),
    ]
}

#[test]
fn disassembly_matches_golden() {
    for (stem, src) in corpus() {
        let iface = ei_core::parser::parse(&src).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let program = ei_core::vm::compile(&iface).unwrap_or_else(|e| panic!("{stem}: {e}"));
        check_golden(
            &format!("{stem}.disasm"),
            &ei_core::vm::disassemble(&program),
        );
        // The same program after the verified dataflow passes: const/copy
        // propagation, CSE, and dead-register elimination land as a
        // reviewable diff against the raw lowering above.
        let optimized = ei_core::vm::optimize(&program);
        ei_core::vm::verify_against(&iface, &optimized)
            .unwrap_or_else(|e| panic!("{stem}: {}", ei_core::vm::render_errors(&e)));
        check_golden(
            &format!("{stem}.opt.disasm"),
            &ei_core::vm::disassemble(&optimized),
        );
    }
}

/// Keeps the goldens honest: every locked program must still *run*, and
/// the compiled engine must agree with the tree-walk on a representative
/// call — a golden that disassembles nicely but executes wrongly is
/// worse than no golden at all.
#[test]
fn golden_programs_execute_identically_on_both_engines() {
    type Call = (
        &'static str,
        &'static str,
        Vec<Value>,
        Vec<(&'static str, bool)>,
    );
    let calls: Vec<Call> = vec![
        (
            "webservice",
            "handle",
            vec![Value::num_record([
                ("image_id", 7.0),
                ("image_size", 2048.0),
                ("image_zeros", 512.0),
            ])],
            vec![("request_hit", false), ("local_cache_hit", true)],
        ),
        (
            "dram",
            "read",
            vec![Value::Num(4096.0)],
            vec![("row_hit", true)],
        ),
        (
            "loops",
            "top",
            vec![Value::Num(7.0)],
            vec![("fast_path", true)],
        ),
        (
            "loops",
            "top",
            vec![Value::Num(200.0)],
            vec![("fast_path", false)],
        ),
    ];
    let sources: BTreeMap<&str, String> = corpus().into_iter().collect();
    for (stem, func, args, pins) in calls {
        let iface = ei_core::parser::parse(&sources[stem]).unwrap();
        let ecvs: BTreeMap<String, ei_core::ecv::EcvValue> = pins
            .into_iter()
            .map(|(n, b)| (n.to_string(), ei_core::ecv::EcvValue::Bool(b)))
            .collect();
        let run = |mode: ExecMode| {
            let cfg = EvalConfig {
                mode,
                ..EvalConfig::default()
            };
            format!(
                "{:?}",
                eval_with_assignment(&iface, func, &args, &ecvs, &cfg)
            )
        };
        let oracle = run(ExecMode::TreeWalk);
        assert_eq!(
            oracle,
            run(ExecMode::Compiled),
            "{stem}.{func}: engines diverge"
        );
        assert!(
            oracle.starts_with("Ok("),
            "{stem}.{func}: golden program fails to execute: {oracle}"
        );
    }
}
