//! Golden trace: the Table 1 experiment's telemetry snapshot is pinned
//! byte-for-byte.
//!
//! The differential suite proves telemetry never perturbs results; this
//! test pins the *trace itself*, so an accidental change to span paths,
//! bucket boundaries, quantization, or the logical clock shows up as an
//! exact diff against `tests/golden/telemetry_table1.json`. Regenerate
//! deliberately with `GOLDEN_BLESS=1 cargo test --test telemetry_golden`.

use std::fs;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_table1.json")
}

#[test]
fn telemetry_table1_golden_trace() {
    let session = ei_telemetry::session();
    let collecting = ei_telemetry::enabled();
    let _report = ei_bench::table1::run();
    let snap = session.finish();
    if !collecting {
        // Telemetry compiled out: there is no trace to pin.
        return;
    }

    let actual = snap.to_json_pretty();
    let path = golden_path();

    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        fs::write(&path, &actual).expect("write golden trace");
        return;
    }

    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); run with GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "telemetry trace for Table 1 changed; if intentional, regenerate with \
         GOLDEN_BLESS=1 cargo test --test telemetry_golden"
    );
}
