//! Integration tests of the §4 toolchain across crates: microbenchmark
//! fitting feeding the GPT-2 prediction (the Table 1 pipeline at a reduced
//! size), trace-based derivation feeding compatibility checking, and
//! energy-bug detection over the web service.

use energy_clarity::core::analysis::compat::{check_compat, CompatConfig};
use energy_clarity::core::compose::link;
use energy_clarity::core::ecv::EcvEnv;
use energy_clarity::core::interface::InputSpec;
use energy_clarity::core::interp::{evaluate_energy, EvalConfig};
use energy_clarity::core::parser::parse;
use energy_clarity::core::value::Value;
use energy_clarity::extract::microbench::fit_gpu_model;
use energy_clarity::extract::trace::{derive_interface, Tracer};
use energy_clarity::hw::gpu::{rtx3070, rtx4090, GpuSim};
use energy_clarity::hw::meter::MeterConfig;
use energy_clarity::llm::{gpt2_interface, gpt2_small, Gpt2Engine};

/// The Table 1 pipeline at reduced size: fit → link → predict → compare.
#[test]
fn fitted_interface_predicts_generation_within_ten_percent() {
    for gpu in [rtx4090(), rtx3070()] {
        let (model, _) = fit_gpu_model(&gpu, MeterConfig::nvml()).unwrap();
        let linked = link(&gpt2_interface(&gpt2_small()), &[&model.to_interface(&gpu)]).unwrap();
        let cfg = EvalConfig {
            fuel: 200_000_000,
            ..EvalConfig::default()
        };
        let predicted = evaluate_energy(
            &linked,
            "e_generate",
            &[Value::Num(16.0), Value::Num(40.0)],
            &EcvEnv::new(),
            0,
            &cfg,
        )
        .unwrap();
        let mut engine = Gpt2Engine::new(gpt2_small(), GpuSim::new(gpu.clone())).unwrap();
        let truth = engine.generate(16, 40).energy;
        let rel = predicted.relative_error(truth);
        assert!(rel < 0.10, "{}: error {rel}", gpu.name);
    }
}

/// 4090 must be predicted more accurately than 3070 (Table 1's shape).
#[test]
fn prediction_error_ordering_matches_table1() {
    let err = |gpu: energy_clarity::hw::gpu::GpuConfig| {
        let (model, _) = fit_gpu_model(&gpu, MeterConfig::nvml()).unwrap();
        let linked = link(&gpt2_interface(&gpt2_small()), &[&model.to_interface(&gpu)]).unwrap();
        let cfg = EvalConfig {
            fuel: 400_000_000,
            ..EvalConfig::default()
        };
        let predicted = evaluate_energy(
            &linked,
            "e_generate",
            &[Value::Num(32.0), Value::Num(120.0)],
            &EcvEnv::new(),
            0,
            &cfg,
        )
        .unwrap();
        let mut engine = Gpt2Engine::new(gpt2_small(), GpuSim::new(gpu)).unwrap();
        let truth = engine.generate(32, 120).energy;
        predicted.relative_error(truth)
    };
    let e4090 = err(rtx4090());
    let e3070 = err(rtx3070());
    assert!(
        e3070 > 2.0 * e4090,
        "expected a clear gap: 4090 {e4090}, 3070 {e3070}"
    );
}

/// Derive an interface from a traced implementation, then verify it is
/// compatible with the spec envelope the developer wrote up front (§4.1's
/// two workflows meeting in the middle).
#[test]
fn derived_interface_checks_against_spec_envelope() {
    // The spec the developer wrote before implementing: at most
    // 2 mJ + 0.5 mJ per item.
    let spec = parse(
        r#"interface spec {
            fn e_run(items) { return 2 mJ + 0.5 mJ * items; }
        }"#,
    )
    .unwrap();

    // The implementation as built: one 64-byte cache get per item plus a
    // constant setup call.
    let implementation = |t: &mut Tracer, x: &[f64]| {
        t.call("setup", &[]);
        for _ in 0..x[0] as u64 {
            t.call("cache_get", &[64.0]);
        }
    };
    let inputs: Vec<Vec<f64>> = (1..=10).map(|n| vec![n as f64]).collect();
    let report = derive_interface("batch", &["items"], &inputs, implementation).unwrap();
    assert!(report.worst_r_squared() > 0.9999);

    // Link the derived interface against the resource costs.
    let resources = parse(
        r#"interface res {
            fn setup() { return 1 mJ; }
            fn cache_get(bytes) { return 0.004 mJ * bytes; }
        }"#,
    )
    .unwrap();
    let candidate = link(&report.interface, &[&resources]).unwrap();

    // Compatible: 1 mJ + 0.256 mJ/item <= 2 mJ + 0.5 mJ/item.
    let ok = check_compat(
        &spec,
        &candidate,
        "e_run",
        &InputSpec::new().range("items", 0.0, 100.0),
        &CompatConfig::default(),
    )
    .unwrap();
    assert!(ok.is_compatible(), "{:?}", ok.violations);

    // Now a regressed implementation: two gets per item. It must violate.
    let regressed = |t: &mut Tracer, x: &[f64]| {
        t.call("setup", &[]);
        for _ in 0..x[0] as u64 {
            t.call("cache_get", &[64.0]);
            t.call("cache_get", &[64.0]);
        }
    };
    let report2 = derive_interface("batch2", &["items"], &inputs, regressed).unwrap();
    let candidate2 = link(&report2.interface, &[&resources]).unwrap();
    let bad = check_compat(
        &spec,
        &candidate2,
        "e_run",
        &InputSpec::new().range("items", 0.0, 100.0),
        &CompatConfig::default(),
    )
    .unwrap();
    assert!(!bad.is_compatible(), "regression must be caught");
}

/// The microbenchmark fit must never read the device's secret constants:
/// fitted coefficients are close to — but not bitwise equal to — the truth.
#[test]
fn fit_is_honest_not_oracle() {
    let gpu = rtx4090();
    let (model, _) = fit_gpu_model(&gpu, MeterConfig::nvml()).unwrap();
    let err = model.max_relative_error(&gpu);
    assert!(err > 1e-9, "a perfect fit would mean the campaign cheated");
    assert!(err < 0.3, "but it must still be close: {err}");
}
