//! Smoke tests that every reproduction in `ei-bench` runs and reaches the
//! paper's qualitative conclusions (the full runs live in the binaries).

use ei_bench::experiments;
use ei_bench::fig2;

#[test]
fn fig2_machines_rank_as_expected() {
    let rows = fig2::run();
    assert_eq!(rows.len(), 2);
    let e4090 = rows.iter().find(|r| r.machine == "rtx4090").unwrap();
    let e3070 = rows.iter().find(|r| r.machine == "rtx3070").unwrap();
    assert!(e3070.e_request > e4090.e_request);
    // Phase decomposition sums to the whole.
    for r in &rows {
        let sum: f64 = r.phases.iter().map(|(_, e)| e).sum();
        assert!((sum - r.e_request).abs() < 1e-9 * r.e_request);
    }
}

#[test]
fn eas_reaches_paper_conclusion() {
    let rows = experiments::run_eas();
    let plain = rows
        .iter()
        .find(|r| r.predictor == "utilization-proxy")
        .unwrap();
    let safe = rows
        .iter()
        .find(|r| r.predictor == "conservative-proxy")
        .unwrap();
    let iface = rows
        .iter()
        .find(|r| r.predictor == "energy-interface")
        .unwrap();
    assert!(plain.missed > 0);
    assert_eq!(safe.missed, 0);
    assert_eq!(iface.missed, 0);
    assert!(iface.energy < safe.energy);
}

#[test]
fn cluster_reaches_paper_conclusion() {
    let rows = experiments::run_cluster();
    let base = rows
        .iter()
        .find(|r| r.policy == "cpu-requests-only")
        .unwrap();
    let smart = rows
        .iter()
        .find(|r| r.policy == "energy-interface")
        .unwrap();
    assert!(smart.energy < base.energy);
    assert_eq!(smart.analytics_on_bigmem, 12);
}

#[test]
fn fuzz_planner_answers_both_questions() {
    let r = experiments::run_fuzz();
    assert!(r.best_machines >= 1);
    assert!(r.marginal > 0.0);
    let (pred, sim) = r.validation;
    assert!((pred - sim).abs() / sim < 0.05);
}

#[test]
fn marginal_energy_has_both_regimes() {
    let rows = experiments::run_marginal();
    assert!(rows.iter().any(|r| r.consolidate < r.spread));
    assert!(rows.iter().any(|r| r.spread < r.consolidate));
}

#[test]
fn sidechannel_verdicts() {
    let r = experiments::run_sidechannel();
    assert!(r.ct_verdict.starts_with("Constant"));
    assert_eq!(r.leaky_verdict, "Leaky");
    let (lo, hi) = r.leak_witness.unwrap();
    assert!(hi > lo);
}

#[test]
fn composition_error_is_attenuated_not_amplified() {
    let rows = experiments::run_composition();
    for r in &rows {
        assert!(
            r.end_to_end_error <= r.leaf_error * 1.01,
            "depth {} amplified {} -> {}",
            r.depth,
            r.leaf_error,
            r.end_to_end_error
        );
    }
    // And deeper stacks attenuate strictly more.
    let d1 = rows
        .iter()
        .find(|r| r.depth == 1 && r.leaf_error == 0.10)
        .unwrap();
    let d5 = rows
        .iter()
        .find(|r| r.depth == 5 && r.leaf_error == 0.10)
        .unwrap();
    assert!(d5.end_to_end_error < d1.end_to_end_error);
}

#[test]
fn fault_matrix_reaches_acceptance_bars() {
    let rows = experiments::run_faults();
    assert_eq!(rows.len(), 6, "every standard scenario runs");

    // No scenario panics (we got here), every scenario completes work,
    // and the fault-conditioned interface stays within 10% of truth.
    for r in &rows {
        assert!(r.completed > 0, "{}: nothing completed", r.scenario);
        assert!(
            r.rel_error < 0.10,
            "{}: prediction off by {:.1}%",
            r.scenario,
            r.rel_error * 100.0
        );
    }

    // Each degraded mode engages in its scenario.
    let by_name = |n: &str| rows.iter().find(|r| r.scenario == n).unwrap();
    let healthy = by_name("healthy");
    assert_eq!(healthy.shed, 0);
    assert_eq!(
        (
            healthy.retried,
            healthy.degraded,
            healthy.remote_skipped,
            healthy.meter_stale
        ),
        (0, 0, 0, 0)
    );
    assert!(
        by_name("gpu_brownout").degraded > 0,
        "brownout sheds to the small model"
    );
    assert!(by_name("nic_flaky").retried > 0, "latency spikes retry");
    assert!(
        by_name("remote_down").remote_skipped > 0,
        "dead node is skipped"
    );
    assert!(
        by_name("meter_dropout").meter_stale > 0,
        "dropout is detected"
    );
    let storm = by_name("combined_storm");
    assert!(storm.degraded > 0 && storm.remote_skipped > 0 && storm.meter_stale > 0);
}
