//! Error-path parity: every interpreter runtime error must surface from
//! the compiled VM with the same variant *and* the same message.
//!
//! `tests/fixtures/bad_eil_runtime/` is a seeded corpus mirroring
//! `tests/fixtures/bad_eil` (the lint corpus), but for failures that no
//! static check can reject: each fixture parses and validates cleanly
//! and then fails at runtime. The harness runs every fixture through
//! both engines and requires `Debug`-identical errors (variant + fields)
//! and `Display`-identical messages, then asserts the corpus actually
//! covers every runtime-reachable error variant — a new variant without
//! a seeded fixture fails the coverage check.

use std::collections::{BTreeMap, BTreeSet};

use ei_core::ast::{Builtin, Expr, FnDef, Stmt};
use ei_core::ecv::EcvValue;
use ei_core::error::Error;
use ei_core::interface::Interface;
use ei_core::interp::{eval_builtin, eval_with_assignment, EvalConfig, ExecMode};
use ei_core::value::Value;

/// One seeded failure: fixture stem, entry function, arguments, fuel
/// budget, and the error variant the seed is expected to produce.
struct Seed {
    stem: &'static str,
    func: &'static str,
    args: Vec<Value>,
    fuel: u64,
    variant: &'static str,
}

fn seed(stem: &'static str, args: Vec<Value>, fuel: u64, variant: &'static str) -> Seed {
    Seed {
        stem,
        func: "main",
        args,
        fuel,
        variant,
    }
}

fn corpus() -> Vec<Seed> {
    let full = EvalConfig::default().fuel;
    vec![
        seed("div_zero", vec![Value::Num(3.0)], full, "DivisionByZero"),
        seed("mod_zero", vec![Value::Num(3.0)], full, "DivisionByZero"),
        seed("sqrt_negative", vec![Value::Num(4.0)], full, "NonFinite"),
        seed("log_nonpositive", vec![Value::Num(4.0)], full, "NonFinite"),
        seed("exp_overflow", vec![Value::Num(100.0)], full, "NonFinite"),
        seed("nonfinite_bounds", vec![Value::Num(2.0)], full, "NonFinite"),
        seed("type_mismatch", vec![Value::Num(1.0)], full, "Type"),
        seed("bad_condition", vec![Value::Num(1.0)], full, "Type"),
        seed("builtin_type", vec![Value::Num(1.0)], full, "Type"),
        seed("fell_off", vec![Value::Num(5.0)], full, "Type"),
        seed(
            "bound_exceeded",
            vec![Value::Num(0.0)],
            full,
            "BoundExceeded",
        ),
        seed(
            "stack_overflow",
            vec![Value::Num(0.0)],
            full,
            "StackOverflow",
        ),
        seed(
            "fuel_exhausted",
            vec![Value::Num(1e6)],
            1000,
            "FuelExhausted",
        ),
        seed("undefined_var", vec![Value::Num(0.0)], full, "Unresolved"),
        seed(
            "assign_undefined",
            vec![Value::Num(0.0)],
            full,
            "Unresolved",
        ),
        seed("unlinked_extern", vec![Value::Num(0.0)], full, "Link"),
        // Host-side entry errors, reusing existing fixtures: wrong entry
        // arity and an unknown entry point.
        seed("div_zero", vec![], full, "Arity"),
        Seed {
            stem: "div_zero",
            func: "no_such_fn",
            args: vec![Value::Num(0.0)],
            fuel: full,
            variant: "Unresolved",
        },
    ]
}

fn load(stem: &str) -> Interface {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(format!("tests/fixtures/bad_eil_runtime/{stem}.eil"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    ei_core::parser::parse(&src).unwrap_or_else(|e| panic!("{stem}: fixture must parse: {e}"))
}

fn run(iface: &Interface, s: &Seed, mode: ExecMode) -> Result<Value, Error> {
    let cfg = EvalConfig {
        fuel: s.fuel,
        mode,
        ..EvalConfig::default()
    };
    eval_with_assignment(iface, s.func, &s.args, &BTreeMap::new(), &cfg)
}

#[test]
fn runtime_error_corpus_matches_across_engines() {
    for s in corpus() {
        let iface = load(s.stem);
        let oracle = run(&iface, &s, ExecMode::TreeWalk);
        let machine = run(&iface, &s, ExecMode::Compiled);

        let err = match (&oracle, &machine) {
            (Err(a), Err(b)) => {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{}.{}: error variants/fields diverge",
                    s.stem,
                    s.func
                );
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "{}.{}: error messages diverge",
                    s.stem,
                    s.func
                );
                a
            }
            (a, b) => panic!(
                "{}.{}: both engines must fail\n  oracle:  {a:?}\n  machine: {b:?}",
                s.stem, s.func
            ),
        };
        let dbg = format!("{err:?}");
        assert!(
            dbg.starts_with(s.variant),
            "{}.{}: seeded {} but got {dbg}",
            s.stem,
            s.func,
            s.variant
        );
    }
}

/// The corpus must cover every error variant the evaluator can raise at
/// runtime (`Lex`/`Parse`/`Duplicate` etc. are rejected earlier and are
/// out of scope for engine parity).
#[test]
fn corpus_covers_all_runtime_variants() {
    let covered: BTreeSet<&str> = corpus().iter().map(|s| s.variant).collect();
    for variant in [
        "Arity",
        "BoundExceeded",
        "DivisionByZero",
        "FuelExhausted",
        "Link",
        "NonFinite",
        "StackOverflow",
        "Type",
        "Unresolved",
    ] {
        assert!(
            covered.contains(variant),
            "no seeded runtime fixture produces Error::{variant}"
        );
    }
}

// ---------------------------------------------------------------------------
// Builtin dispatch drift (satellite: one table, two engines)
// ---------------------------------------------------------------------------

/// A one-builtin interface `fn f(a0, ..) {{ return b(a0, ..); }}` whose
/// arguments stay opaque to const folding.
fn builtin_iface(b: Builtin) -> Interface {
    let params: Vec<String> = (0..b.arity()).map(|i| format!("a{i}")).collect();
    let args: Vec<Expr> = params.iter().map(Expr::var).collect();
    let mut i = Interface::new("bt");
    i.add_fn(FnDef::new(
        "f",
        params,
        vec![Stmt::Return(Expr::BuiltinCall(b, args))],
    ))
    .unwrap();
    i
}

/// Both engines and the shared `eval_builtin` table must agree on every
/// builtin at boundary inputs: zeros of both signs, negatives, values at
/// the overflow/underflow edges, and inputs whose results leave the
/// finite range (`pow(-1, 0.5)` is NaN, `exp(710)` is +inf, ...).
#[test]
fn builtin_dispatch_has_one_table() {
    const BOUNDARY: [f64; 12] = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        -0.5,
        709.0, // exp(709) is finite ...
        710.0, // ... exp(710) is not
        f64::MAX,
        -f64::MAX,
        f64::MIN_POSITIVE,
        5e-324, // smallest positive denormal
    ];
    // Clamp is 3-ary; the full 12^3 cube is slow for no extra coverage.
    const SMALL: [f64; 5] = [0.0, -0.0, 1.0, -1.0, f64::MAX];

    let ecvs = BTreeMap::<String, EcvValue>::new();
    for b in Builtin::ALL {
        let iface = builtin_iface(b);
        let tuples: Vec<Vec<f64>> = match b.arity() {
            1 => BOUNDARY.iter().map(|x| vec![*x]).collect(),
            2 => BOUNDARY
                .iter()
                .flat_map(|x| BOUNDARY.iter().map(move |y| vec![*x, *y]))
                .collect(),
            3 => SMALL
                .iter()
                .flat_map(|x| {
                    SMALL
                        .iter()
                        .flat_map(move |y| SMALL.iter().map(move |z| vec![*x, *y, *z]))
                })
                .collect(),
            n => panic!("unexpected arity {n} for {}", b.name()),
        };
        for tuple in tuples {
            let args: Vec<Value> = tuple.iter().map(|v| Value::Num(*v)).collect();
            let table = format!("{:?}", eval_builtin(b, &args));
            for mode in [ExecMode::TreeWalk, ExecMode::Compiled] {
                let cfg = EvalConfig {
                    mode,
                    ..EvalConfig::default()
                };
                let got = format!(
                    "{:?}",
                    eval_with_assignment(&iface, "f", &args, &ecvs, &cfg)
                );
                assert_eq!(
                    table,
                    got,
                    "{}({tuple:?}) via {mode:?} drifts from the shared table",
                    b.name()
                );
            }
        }
    }
}
