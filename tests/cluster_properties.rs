//! Property tests for the discrete-event cluster simulator.
//!
//! Three families, mirroring the determinism contract documented in
//! `ei_sched::des`:
//!
//! 1. **Event-queue laws** — dequeue order is monotone in logical time
//!    and, within one instant, follows push order (the `(time, seq)`
//!    tie-break), for arbitrary push sequences.
//! 2. **Replay bit-identity** — `run_cluster_sim` is a pure function of
//!    its inputs: running the same spec/config/plan twice produces
//!    bit-identical stats and latency vectors, for both shipped
//!    policies, under arbitrary fault plans. The Monte-Carlo validation
//!    the E10 report embeds is likewise thread-count-invariant for any
//!    seed.
//! 3. **Request conservation** — no request is ever lost or duplicated:
//!    every arrival is completed, shed, or left stranded (`unserved`),
//!    and the set of served request ids is duplicate-free, under
//!    arbitrary node-death/brownout/NIC-fault plans.

use ei_core::cache::EvalCache;
use ei_core::units::TimeSpan;
use ei_hw::faults::{Fault, FaultPlan};
use ei_sched::des::{
    run_cluster_sim, ClusterSpec, EnergyLb, EventQueue, Phase, RunOutcome, SimConfig, SimTime,
    UtilizationLb,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// One fault window in generator form: `(kind, node, from_ms, dur_ms)`.
type WindowSpec = (u8, usize, u64, u64);

fn arb_windows() -> impl Strategy<Value = Vec<WindowSpec>> {
    proptest::collection::vec((0u8..3, 0usize..6, 0u64..2_500, 50u64..1_500), 0..5)
}

/// Builds a real [`FaultPlan`] from generated windows: node deaths
/// (possibly overlapping on the same node), GPU brownouts, and NIC
/// degradation, all inside the simulation horizon.
fn plan_from(seed: u64, windows: &[WindowSpec]) -> FaultPlan {
    let mut plan = FaultPlan::healthy(seed);
    for &(kind, node, from_ms, dur_ms) in windows {
        let from = TimeSpan::millis(from_ms as f64);
        let until = TimeSpan::millis((from_ms + dur_ms) as f64);
        let fault = match kind {
            0 => Fault::NodeDown { node },
            1 => Fault::GpuBrownout {
                derate: 0.6,
                sm_loss: 0.2,
            },
            _ => Fault::NicDegraded {
                loss: 0.15,
                latency: TimeSpan::millis(1.0),
            },
        };
        plan = plan.window(from, until, fault);
    }
    plan
}

/// A small mixed cluster and a bounded workload that still exercises
/// batching, autoscaling, and redispatch. The horizon caps the run so a
/// plan that kills every node cannot stall the simulation.
fn small_setup(
    seed: u64,
    n_requests: u64,
    rate_rps: f64,
    p_large: f64,
) -> (ClusterSpec, SimConfig) {
    let spec = ClusterSpec::mixed(3, 3);
    let cfg = SimConfig {
        seed,
        n_requests,
        phases: vec![Phase {
            duration_s: 0.0,
            rate_rps,
            p_large,
        }],
        autoscale_tick_ms: 200.0,
        initial_active: 3,
        horizon_s: 30.0,
        track_ids: true,
        ..SimConfig::default()
    };
    (spec, cfg)
}

/// Runs the baseline policy once and returns the outcome.
fn run_utilization(spec: &ClusterSpec, cfg: &SimConfig, plan: &FaultPlan) -> RunOutcome {
    let mut lb = UtilizationLb::new(
        spec.classes.clone(),
        spec.assignment.clone(),
        cfg.initial_active,
    );
    run_cluster_sim(spec, cfg, plan, &mut lb)
}

/// Runs the energy-interface policy once and returns the outcome.
fn run_energy(spec: &ClusterSpec, cfg: &SimConfig, plan: &FaultPlan) -> RunOutcome {
    let cache = EvalCache::new();
    let mut lb = EnergyLb::new(
        spec.classes.clone(),
        spec.assignment.clone(),
        cfg.initial_active,
        SimTime::from_millis(cfg.slo_ms).0,
        &cache,
    );
    run_cluster_sim(spec, cfg, plan, &mut lb)
}

/// Everything bit-sensitive about an outcome, in comparable form.
fn fingerprint(o: &RunOutcome) -> (Vec<u64>, Option<Vec<u64>>, Vec<u64>) {
    let float_bits = vec![
        o.stats.mean_batch.to_bits(),
        o.stats.frac_large.to_bits(),
        o.stats.makespan_s.to_bits(),
        o.stats.throughput_rps.to_bits(),
        o.stats.p50_ms.to_bits(),
        o.stats.p99_ms.to_bits(),
        o.stats.p999_ms.to_bits(),
        o.stats.max_ms.to_bits(),
        o.stats.dyn_energy_j.to_bits(),
        o.stats.idle_energy_j.to_bits(),
        o.stats.total_energy_j.to_bits(),
        o.stats.j_per_request.to_bits(),
    ];
    (float_bits, o.served_ids.clone(), o.latencies_ns.clone())
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary pushes dequeue in monotone logical time, and events
    /// pushed at the same instant come out in push order.
    #[test]
    fn event_queue_dequeues_monotone_and_push_ordered(
        times in proptest::collection::vec(0u64..1_000, 0..200),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        prop_assert_eq!(q.pushed(), times.len() as u64);

        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = Vec::with_capacity(times.len());
        while let Some((t, i)) = q.pop() {
            prop_assert_eq!(t, SimTime(times[i]), "event carries its own time");
            if let Some((lt, li)) = last {
                prop_assert!(lt <= t, "time went backwards: {:?} after {:?}", t, lt);
                if lt == t {
                    prop_assert!(li < i, "same-instant events out of push order");
                }
            }
            last = Some((t, i));
            popped.push(i);
        }
        prop_assert_eq!(q.len(), 0);
        prop_assert_eq!(q.popped(), times.len() as u64);
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>(), "events lost or duplicated");
    }

    /// Popping never rewinds `now`: after any pop, pushing strictly
    /// before the popped time panics, and pushing at-or-after succeeds.
    #[test]
    fn event_queue_now_is_monotone(times in proptest::collection::vec(1u64..1_000, 1..50)) {
        let mut q: EventQueue<u32> = EventQueue::new();
        for &t in &times {
            q.push(SimTime(t), 0);
        }
        let mut max_seen = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(q.now() == t);
            prop_assert!(t >= max_seen);
            max_seen = t;
        }
        // Re-scheduling at the current instant is always legal, and the
        // re-scheduled event pops at that instant.
        q.push(max_seen, 1);
        let (t2, tag) = q.pop().unwrap();
        prop_assert_eq!((t2, tag), (max_seen, 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both policies replay bit-identically under arbitrary fault plans:
    /// equal stats structs, equal float bits, equal served-id sets, and
    /// equal latency vectors.
    #[test]
    fn cluster_runs_replay_bit_identical(
        windows in arb_windows(),
        seed in 0u64..1_000,
        n in 50u64..250,
        rate in 200.0f64..1_200.0,
        p_large in 0.0f64..1.0,
    ) {
        let plan = plan_from(seed, &windows);
        let (spec, cfg) = small_setup(seed, n, rate, p_large);

        let a = run_utilization(&spec, &cfg, &plan);
        let b = run_utilization(&spec, &cfg, &plan);
        prop_assert_eq!(&a.stats, &b.stats, "baseline stats diverge on replay");
        prop_assert_eq!(fingerprint(&a), fingerprint(&b), "baseline bits diverge on replay");

        let c = run_energy(&spec, &cfg, &plan);
        let d = run_energy(&spec, &cfg, &plan);
        prop_assert_eq!(&c.stats, &d.stats, "energy stats diverge on replay");
        prop_assert_eq!(fingerprint(&c), fingerprint(&d), "energy bits diverge on replay");
    }

    /// No request is lost or duplicated, whatever the fault plan does:
    /// every arrival is accounted for exactly once, and the served-id
    /// list has no duplicates and only valid ids.
    #[test]
    fn no_requests_lost_or_duplicated_under_faults(
        windows in arb_windows(),
        seed in 0u64..1_000,
        n in 50u64..250,
        rate in 200.0f64..1_200.0,
        p_large in 0.0f64..1.0,
    ) {
        let plan = plan_from(seed, &windows);
        let (spec, cfg) = small_setup(seed, n, rate, p_large);

        for outcome in [
            run_utilization(&spec, &cfg, &plan),
            run_energy(&spec, &cfg, &plan),
        ] {
            let s = &outcome.stats;
            prop_assert_eq!(s.arrivals, n, "every configured request must arrive");
            prop_assert_eq!(
                s.arrivals,
                s.completed + s.shed + s.unserved,
                "conservation violated: {} arrivals vs {} completed + {} shed + {} unserved",
                s.arrivals, s.completed, s.shed, s.unserved
            );
            prop_assert_eq!(
                s.completed,
                s.node_completed.iter().sum::<u64>(),
                "per-node completions must sum to the total"
            );
            prop_assert_eq!(outcome.latencies_ns.len() as u64, s.completed);

            let mut ids = outcome.served_ids.expect("track_ids was set");
            prop_assert_eq!(ids.len() as u64, s.completed);
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "a request id was served twice");
            for &id in &ids {
                prop_assert!(id < n, "served id {} out of range", id);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The Monte-Carlo leg of the E10 report is thread-count invariant
    /// for any seed, not just the shipped one: 1 and 8 worker threads
    /// produce bit-identical means.
    #[test]
    fn mc_validation_is_thread_invariant(seed in 0u64..10_000) {
        let mc = ei_bench::cluster::mc_thread_validation(seed);
        prop_assert!(mc.identical, "MC means diverge across thread counts");
        prop_assert_eq!(
            mc.mean_1_thread_j.to_bits(),
            mc.mean_8_threads_j.to_bits()
        );
    }
}
