//! Properties of the deterministic parallel Monte-Carlo engine and the
//! evaluation cache, over randomly generated ECV-bearing interfaces.
//!
//! The load-bearing claim (DESIGN.md §engine): `monte_carlo_par` produces a
//! sample vector *identical* to serial `monte_carlo` for any thread count,
//! because both draw each fixed-size chunk from its own RNG seeded by
//! `(seed, chunk_index)`. The assertions below are exact (`==` on
//! `EnergyDist`), not tolerance-based.

use proptest::prelude::*;

use ei_core::ast::{BinOp, Builtin, Expr, FnDef, Stmt};
use ei_core::cache::{fingerprint_interface, EvalCache};
use ei_core::ecv::{DistSpec, EcvDecl};
use ei_core::interface::Interface;
use ei_core::interp::{
    evaluate_batch, evaluate_energy, expected_energy, monte_carlo, monte_carlo_par, EvalConfig,
    MC_CHUNK,
};
use ei_core::value::Value;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword/builtin/suffix", |s| {
        !ei_core::parser::KEYWORDS.contains(&s.as_str())
            && Builtin::from_name(s).is_none()
            && !["mj", "uj", "nj", "pj", "kj", "j", "wh"].contains(&s.as_str())
    })
}

fn arb_dist_spec() -> impl Strategy<Value = DistSpec> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(|p| DistSpec::Bernoulli { p }),
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(a, b)| DistSpec::Uniform {
            lo: a.min(b),
            hi: a.max(b)
        }),
        (0.0f64..50.0, 0.0f64..5.0).prop_map(|(m, s)| DistSpec::Normal {
            mean: m,
            std_dev: s
        }),
        (0.0f64..100.0).prop_map(|v| DistSpec::Point { value: v }),
        proptest::collection::vec((0.0f64..100.0, 1u32..5), 1..4).prop_map(|raw| {
            let total: u32 = raw.iter().map(|(_, w)| w).sum();
            DistSpec::Discrete {
                outcomes: raw
                    .into_iter()
                    .map(|(v, w)| (v, w as f64 / total as f64))
                    .collect(),
            }
        }),
    ]
}

/// An interface whose `f(x)` mixes every declared ECV into the result, so
/// Monte-Carlo output is sensitive to the exact per-sample RNG stream.
/// Boolean ECVs (bernoulli) contribute through an if-expression; numeric
/// ones multiply a coefficient.
fn arb_ecv_interface() -> impl Strategy<Value = Interface> {
    (
        proptest::collection::btree_set(arb_ident(), 1..4),
        proptest::collection::vec(arb_dist_spec(), 3),
        proptest::collection::vec(1u32..100, 3),
    )
        .prop_map(|(names, dists, coefs)| {
            let mut iface = Interface::new("gen");
            let mut expr = Expr::var("x");
            for ((name, dist), c) in names.iter().zip(dists).zip(coefs) {
                let is_bool = matches!(dist, DistSpec::Bernoulli { .. });
                iface
                    .add_ecv(
                        name.clone(),
                        EcvDecl {
                            dist,
                            doc: String::new(),
                        },
                    )
                    .unwrap();
                let term = if is_bool {
                    Expr::IfExpr(
                        Box::new(Expr::Ecv(name.clone())),
                        Box::new(Expr::Num(c as f64)),
                        Box::new(Expr::Num(0.0)),
                    )
                } else {
                    Expr::bin(BinOp::Mul, Expr::Ecv(name.clone()), Expr::Num(c as f64))
                };
                expr = Expr::bin(BinOp::Add, expr, term);
            }
            iface
                .add_fn(FnDef::new(
                    "f",
                    vec!["x".into()],
                    vec![Stmt::Return(Expr::BuiltinCall(Builtin::Joules, vec![expr]))],
                ))
                .unwrap();
            iface
        })
}

/// Builds a tiny deterministic interface `f(x) = coef J * x` for the cache
/// properties.
fn coef_interface(coef: f64) -> Interface {
    let mut iface = Interface::new("coef");
    iface
        .add_fn(FnDef::new(
            "f",
            vec!["x".into()],
            vec![Stmt::Return(Expr::BuiltinCall(
                Builtin::Joules,
                vec![Expr::bin(BinOp::Mul, Expr::Num(coef), Expr::var("x"))],
            ))],
        ))
        .unwrap();
    iface
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial identity
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `monte_carlo_par` must reproduce serial `monte_carlo` exactly —
    /// same samples, same order — for every thread count.
    #[test]
    fn parallel_monte_carlo_is_sample_identical_to_serial(
        iface in arb_ecv_interface(),
        seed: u64,
        n in 0usize..600,
        threads in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        x in 0.0f64..100.0,
    ) {
        let cfg = EvalConfig::default();
        let env = iface.ecv_env();
        let args = [Value::Num(x)];
        let serial = monte_carlo(&iface, "f", &args, &env, n, seed, &cfg);
        let parallel = monte_carlo_par(&iface, "f", &args, &env, n, seed, threads, &cfg);
        match (serial, parallel) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "serial {a:?} vs parallel {b:?}"),
        }
    }

    /// Chunk boundaries are invisible: exact `k * MC_CHUNK` sample counts
    /// and off-by-one neighbours agree between serial and parallel too.
    #[test]
    fn parallel_identity_at_chunk_boundaries(
        iface in arb_ecv_interface(),
        seed: u64,
        k in 1usize..4,
        delta in prop_oneof![Just(-1i64), Just(0), Just(1)],
        threads in prop_oneof![Just(2usize), Just(8)],
    ) {
        let n = (k * MC_CHUNK) as i64 + delta;
        let n = n.max(0) as usize;
        let cfg = EvalConfig::default();
        let env = iface.ecv_env();
        let args = [Value::Num(1.0)];
        let serial = monte_carlo(&iface, "f", &args, &env, n, seed, &cfg).unwrap();
        let parallel =
            monte_carlo_par(&iface, "f", &args, &env, n, seed, threads, &cfg).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// `evaluate_batch` is exactly per-argset `evaluate_energy` with the
    /// same seed.
    #[test]
    fn batch_matches_singleton_evaluations(
        iface in arb_ecv_interface(),
        seed: u64,
        xs in proptest::collection::vec(0.0f64..100.0, 0..8),
    ) {
        let cfg = EvalConfig::default();
        let env = iface.ecv_env();
        let argsets: Vec<Vec<Value>> = xs.iter().map(|&x| vec![Value::Num(x)]).collect();
        let batch = evaluate_batch(&iface, "f", &argsets, &env, seed, &cfg).unwrap();
        prop_assert_eq!(batch.len(), argsets.len());
        for (args, b) in argsets.iter().zip(&batch) {
            let single = evaluate_energy(&iface, "f", args, &env, seed, &cfg).unwrap();
            prop_assert_eq!(single, *b);
        }
    }
}

// ---------------------------------------------------------------------------
// EvalCache properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hit and miss paths return identical answers, and both match the
    /// uncached evaluation.
    #[test]
    fn cache_hit_and_miss_agree_with_uncached(
        iface in arb_ecv_interface(),
        x in 0.0f64..100.0,
    ) {
        let cfg = EvalConfig::default();
        let args = [Value::Num(x)];
        let cache = EvalCache::new();
        let cold = cache.expected_energy_cached(&iface, "f", &args, &cfg).unwrap();
        let warm = cache.expected_energy_cached(&iface, "f", &args, &cfg).unwrap();
        let direct = expected_energy(&iface, "f", &args, &cfg).unwrap();
        prop_assert_eq!(cold, warm);
        prop_assert_eq!(cold, direct);
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
    }

    /// Mutating an interface in place changes its fingerprint, so a shared
    /// cache immediately serves the *new* answer — never the stale one.
    #[test]
    fn cache_invalidates_on_interface_mutation(
        c1 in 1u32..1000,
        c2 in 1u32..1000,
        x in 1.0f64..100.0,
    ) {
        let cfg = EvalConfig::default();
        let args = [Value::Num(x)];
        let cache = EvalCache::new();

        let mut iface = coef_interface(c1 as f64);
        let fp_before = fingerprint_interface(&iface);
        let e1 = cache.expected_energy_cached(&iface, "f", &args, &cfg).unwrap();

        // In-place mutation: rewrite the function body's coefficient.
        iface.fns.get_mut("f").unwrap().body = vec![Stmt::Return(Expr::BuiltinCall(
            Builtin::Joules,
            vec![Expr::bin(BinOp::Mul, Expr::Num(c2 as f64), Expr::var("x"))],
        ))];

        let e2 = cache.expected_energy_cached(&iface, "f", &args, &cfg).unwrap();
        let direct = expected_energy(&iface, "f", &args, &cfg).unwrap();
        prop_assert_eq!(e2, direct);
        if c1 != c2 {
            prop_assert_ne!(fp_before, fingerprint_interface(&iface));
            prop_assert_ne!(e1, e2);
        } else {
            prop_assert_eq!(e1, e2);
        }
    }

    /// Equal content ⇒ equal fingerprint, independently constructed.
    #[test]
    fn fingerprint_depends_only_on_content(c in 1u32..1000) {
        let a = coef_interface(c as f64);
        let b = coef_interface(c as f64);
        prop_assert_eq!(fingerprint_interface(&a), fingerprint_interface(&b));
    }
}

// ---------------------------------------------------------------------------
// Deterministic spot checks
// ---------------------------------------------------------------------------

/// `n_threads = 0` (auto) must also match serial output.
#[test]
fn auto_thread_count_matches_serial() {
    let mut iface = Interface::new("auto");
    iface
        .add_ecv(
            "load",
            EcvDecl {
                dist: DistSpec::Uniform { lo: 0.0, hi: 10.0 },
                doc: String::new(),
            },
        )
        .unwrap();
    iface
        .add_fn(FnDef::new(
            "f",
            vec![],
            vec![Stmt::Return(Expr::BuiltinCall(
                Builtin::Joules,
                vec![Expr::Ecv("load".into())],
            ))],
        ))
        .unwrap();
    let cfg = EvalConfig::default();
    let env = iface.ecv_env();
    let serial = monte_carlo(&iface, "f", &[], &env, 1000, 42, &cfg).unwrap();
    let auto = monte_carlo_par(&iface, "f", &[], &env, 1000, 42, 0, &cfg).unwrap();
    assert_eq!(serial, auto);
}

/// Errors surface deterministically: the first failing chunk in chunk order
/// wins, matching what the serial loop reports.
#[test]
fn parallel_error_matches_serial_error() {
    // `f` divides by (x - ecv) where the ECV eventually hits the failing
    // value; both serial and parallel must report the same error.
    let mut iface = Interface::new("err");
    iface
        .add_ecv(
            "d",
            EcvDecl {
                dist: DistSpec::Discrete {
                    outcomes: vec![(0.0, 0.5), (1.0, 0.5)],
                },
                doc: String::new(),
            },
        )
        .unwrap();
    iface
        .add_fn(FnDef::new(
            "f",
            vec![],
            vec![Stmt::Return(Expr::BuiltinCall(
                Builtin::Joules,
                vec![Expr::bin(BinOp::Div, Expr::Num(1.0), Expr::Ecv("d".into()))],
            ))],
        ))
        .unwrap();
    let cfg = EvalConfig::default();
    let env = iface.ecv_env();
    let serial = monte_carlo(&iface, "f", &[], &env, 2000, 3, &cfg).unwrap_err();
    for threads in [1, 2, 4, 8] {
        let par = monte_carlo_par(&iface, "f", &[], &env, 2000, 3, threads, &cfg).unwrap_err();
        assert_eq!(format!("{serial:?}"), format!("{par:?}"));
    }
}
