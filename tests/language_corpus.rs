//! A corpus of realistic energy interfaces: every one must parse,
//! round-trip through the pretty-printer, validate, evaluate, serialize to
//! JSON and back, and (where annotated) admit worst-case analysis that is
//! sound against sampling.

use energy_clarity::core::analysis::worst_case::worst_case;
use energy_clarity::core::ecv::EcvEnv;
use energy_clarity::core::interface::{InputSpec, Interface};
use energy_clarity::core::interp::{evaluate_energy, EvalConfig};
use energy_clarity::core::parser::parse;
use energy_clarity::core::pretty::print_interface;
use energy_clarity::core::units::Calibration;
use energy_clarity::core::value::Value;

/// `(name, source, entry, scalar args, input spec for analysis)`.
#[allow(clippy::type_complexity)]
fn corpus() -> Vec<(
    &'static str,
    &'static str,
    &'static str,
    Vec<f64>,
    Option<InputSpec>,
)> {
    vec![
        (
            "dram_controller",
            r#"interface dram "DDR5 controller" {
                ecv row_hit: bernoulli(0.6) "row buffer hit";
                fn read(bytes) {
                    let bursts = ceil(bytes / 64);
                    let per = if row_hit { 12 nJ } else { 35 nJ };
                    return per * bursts + 4 nJ;
                }
                fn write(bytes) { return 40 nJ * ceil(bytes / 64) + 4 nJ; }
                fn refresh(seconds) { return 22 mJ * seconds; }
            }"#,
            "read",
            vec![4096.0],
            Some(InputSpec::new().range("bytes", 1.0, 1_048_576.0)),
        ),
        (
            "tls_handshake",
            r#"interface tls "TLS 1.3 handshake" {
                ecv session_resumed: bernoulli(0.4) "PSK resumption";
                fn handshake(cert_chain_len) {
                    if session_resumed { return 0.8 mJ; }
                    let e = 3.5 mJ;
                    for c in 0..cert_chain_len { e = e + 1.2 mJ; }
                    return e;
                }
            }"#,
            "handshake",
            vec![3.0],
            Some(InputSpec::new().range("cert_chain_len", 0.0, 6.0)),
        ),
        (
            "b_tree",
            r#"interface btree "B-tree point lookup" {
                unit page_read;
                fn lookup(n_keys) {
                    let depth = max(ceil(ln(max(n_keys, 2)) / ln(128)), 1);
                    return 1 page_read * depth + 2 uJ;
                }
            }"#,
            "lookup",
            vec![1_000_000.0],
            None,
        ),
        (
            "video_encoder",
            r#"interface encoder "per-frame H.264-class encoder" {
                ecv scene_change: bernoulli(0.05) "keyframe forced";
                fn encode(width, height) {
                    let mbs = ceil(width / 16) * ceil(height / 16);
                    let base = 0.9 uJ * mbs;
                    if scene_change { return base * 3 + 2 mJ; }
                    return base + 2 mJ;
                }
            }"#,
            "encode",
            vec![1920.0, 1080.0],
            Some(
                InputSpec::new()
                    .range("width", 320.0, 3840.0)
                    .range("height", 240.0, 2160.0),
            ),
        ),
        (
            "raid_rebuild",
            r#"interface raid "RAID-6 rebuild" {
                fn rebuild(disk_gb, healthy_disks) {
                    let stripes = disk_gb * 1024;
                    let read = 0.2 mJ * stripes * healthy_disks;
                    let parity = 0.05 mJ * stripes;
                    let write = 0.25 mJ * stripes;
                    return read + parity + write;
                }
            }"#,
            "rebuild",
            vec![100.0, 5.0],
            Some(
                InputSpec::new()
                    .range("disk_gb", 1.0, 1000.0)
                    .range("healthy_disks", 3.0, 11.0),
            ),
        ),
        (
            "gc_pause",
            r#"interface gc "generational GC pause" {
                ecv promotion_rate: uniform(0.02, 0.2) "fraction promoted";
                fn minor_collect(nursery_mb) {
                    let survivors = nursery_mb * ecv(promotion_rate);
                    return 0.4 mJ * nursery_mb + 3 mJ * survivors;
                }
            }"#,
            "minor_collect",
            vec![64.0],
            Some(InputSpec::new().range("nursery_mb", 1.0, 512.0)),
        ),
    ]
}

#[test]
fn corpus_parses_roundtrips_and_validates() {
    for (name, src, _, _, _) in corpus() {
        let iface = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        iface.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = print_interface(&iface);
        let again = parse(&printed).unwrap_or_else(|e| panic!("{name} reprint: {e}\n{printed}"));
        assert_eq!(iface, again, "{name} round-trip");
    }
}

#[test]
fn corpus_evaluates_positive_energy() {
    let cal = Calibration::from_pairs([(
        "page_read",
        energy_clarity::core::units::Energy::microjoules(25.0),
    )]);
    for (name, src, entry, args, _) in corpus() {
        let iface = parse(src).unwrap();
        let cfg = EvalConfig {
            calibration: cal.clone(),
            ..EvalConfig::default()
        };
        let vals: Vec<Value> = args.iter().map(|a| Value::Num(*a)).collect();
        let env = EcvEnv::from_decls(&iface.ecvs);
        for seed in 0..8 {
            let e = evaluate_energy(&iface, entry, &vals, &env, seed, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(e.as_joules() > 0.0, "{name} seed {seed}");
        }
    }
}

#[test]
fn corpus_serializes_to_json_and_back() {
    for (name, src, _, _, _) in corpus() {
        let iface = parse(src).unwrap();
        let json = serde_json::to_string(&iface).unwrap_or_else(|e| panic!("{name}: {e}"));
        let back: Interface = serde_json::from_str(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(iface, back, "{name} JSON round-trip");
    }
}

#[test]
fn corpus_worst_case_bounds_are_sound() {
    let cal = Calibration::from_pairs([(
        "page_read",
        energy_clarity::core::units::Energy::microjoules(25.0),
    )]);
    for (name, src, entry, args, spec) in corpus() {
        let Some(spec) = spec else { continue };
        let iface = parse(src).unwrap();
        let bound =
            worst_case(&iface, entry, &spec, &cal).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfg = EvalConfig {
            calibration: cal.clone(),
            ..EvalConfig::default()
        };
        let env = EcvEnv::from_decls(&iface.ecvs);
        // The declared sample point lies in every spec's range.
        let vals: Vec<Value> = args.iter().map(|a| Value::Num(*a)).collect();
        for seed in 0..32 {
            let e = evaluate_energy(&iface, entry, &vals, &env, seed, &cfg).unwrap();
            assert!(
                bound.admits(e),
                "{name}: sample {e} outside [{}, {}]",
                bound.lower,
                bound.upper
            );
        }
    }
}
