//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the rand 0.9 API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random`, and `Rng::random_range` —
//! backed by a deterministic xoshiro256++ generator seeded via SplitMix64.
//! Determinism is load-bearing: interpreter results, golden files, and the
//! parallel Monte-Carlo engine all assume that the same seed produces the
//! same stream on every platform and every build.

/// A low-level source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value using the provided 64-bit word source.
    fn sample_with(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn sample_with(next: &mut dyn FnMut() -> u64) -> f64 {
        // 53 uniform bits in [0, 1), the standard conversion.
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_with(next: &mut dyn FnMut() -> u64) -> f32 {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_with(next: &mut dyn FnMut() -> u64) -> u64 {
        next()
    }
}

impl Standard for u32 {
    fn sample_with(next: &mut dyn FnMut() -> u64) -> u32 {
        (next() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_with(next: &mut dyn FnMut() -> u64) -> bool {
        next() & 1 == 1
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range using the word source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift rejection-free mapping is fine here: spans in
                // this workspace are tiny relative to 2^64, so modulo bias is
                // far below observable levels, and determinism matters more.
                let v = (next() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (next() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let u = f64::sample_with(next);
        self.start + (self.end - self.start) * u
    }
}

/// High-level sampling methods, available on any `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::sample_with(&mut f)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample_from(&mut f)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the canonical seed expander (Steele et al.).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generator types.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded by expanding a `u64` through SplitMix64.
    ///
    /// Not the same stream as upstream rand's ChaCha12-based `StdRng`, but
    /// every consumer in this repo only relies on *determinism*, not on any
    /// particular stream, so a fast permuted-LFSR generator is the right
    /// trade.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_covers_both_halves() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 350 && high > 350, "low={low} high={high}");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5u64..15);
            assert!((5..15).contains(&v));
            let w = rng.random_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x = draw(dynamic);
        assert!((0.0..1.0).contains(&x));
    }
}
