//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! serde tree model ([`serde::Value`]).
//!
//! Output details that matter to this workspace:
//! - object keys keep their source order (struct declaration order /
//!   BTreeMap key order), so output is deterministic — golden files depend
//!   on this;
//! - floats print via Rust's shortest round-trip formatting;
//! - non-finite floats serialize as `null`, matching serde_json.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error { msg: e.msg }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the generic tree model.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Shortest round-trip formatting; force a decimal point so the value
    // reads back as a float-shaped number (serde_json prints 1.0, not 1).
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("tbl".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::I64(1), Value::F64(2.5)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"name":"tbl","xs":[1,2.5],"flag":true,"none":null}"#);
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::I64(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let s = to_string(&n).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }
}
