//! Offline stand-in for `proptest`: sample-based property testing.
//!
//! Reproduces the slice of the proptest API this workspace uses —
//! `proptest!`, `prop_oneof!`, strategy combinators (`prop_map`,
//! `prop_filter`, `prop_recursive`), `BoxedStrategy`, range and regex-lite
//! string strategies, and `proptest::collection::{vec, btree_set}` — on top
//! of a deterministic RNG. The big intentional difference from real
//! proptest: **no shrinking**. On failure the harness prints the exact
//! sampled input (which is reproducible, since sampling is deterministic)
//! and re-raises the panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `pred`, resampling (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Builds recursive values: `self` is the leaf strategy, `branch`
        /// wraps an inner strategy into a larger value. The tree depth is
        /// bounded by `depth`; the other two knobs (desired size, expected
        /// branch size) are accepted for API compatibility but unused by
        /// this sample-only implementation.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                cur = Union::new(vec![(1, base.clone()), (2, branch(cur).boxed())]).boxed();
            }
            cur
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe view of a strategy, used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// A weighted union of same-valued strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs at least one arm");
            Union { arms, total_weight }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.random_range(0..self.total_weight);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum mismatch")
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    // -- Ranges -----------------------------------------------------------

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            self.start + (self.end - self.start) * rng.random::<f64>()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // The endpoint has measure zero; sampling the half-open range
            // plus an explicit 1-in-4096 endpoint draw keeps it reachable.
            if rng.random_range(0u32..4096) == 0 {
                *self.end()
            } else {
                self.start() + (self.end() - self.start()) * rng.random::<f64>()
            }
        }
    }

    // -- Tuples -----------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    // -- Regex-lite string strategies -------------------------------------

    /// `&'static str` acts as a strategy generating strings matching a
    /// small regex subset: literal chars, `[...]` classes with ranges,
    /// and quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            sample_regex(self, rng)
        }
    }

    fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a char class or a literal (possibly escaped).
            let atom: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unclosed [ in regex `{pattern}`"));
                    let class = parse_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = chars[i + 1];
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Parse an optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i + 1..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i + 1)
                            .unwrap_or_else(|| panic!("unclosed {{ in regex `{pattern}`"));
                        let spec: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match spec.split_once(',') {
                            Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                            None => {
                                let m: usize = spec.trim().parse().unwrap();
                                (m, m)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let count = rng.random_range(lo..=hi);
            for _ in 0..count {
                let pick = rng.random_range(0..atom.len());
                out.push(atom[pick]);
            }
        }
        out
    }

    /// Expands `[a-z0-9_]`-style class contents into the set of chars.
    fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
        assert!(
            body.first() != Some(&'^'),
            "negated classes unsupported in regex `{pattern}`"
        );
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "bad class range in regex `{pattern}`");
                for cp in lo..=hi {
                    out.push(char::from_u32(cp).unwrap());
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty class in regex `{pattern}`");
        out
    }
}

pub mod arbitrary {
    //! Default strategies per type, backing `any::<T>()`.
    //!
    //! Imports are explicit (no `use super::*`) so the sibling `bool`
    //! module cannot shadow the primitive `bool` type.

    use super::strategy::{BoxedStrategy, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// Returns the default strategy for this type.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    FullRange::<$t>(std::marker::PhantomData).boxed()
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    FullRange::<$t>(std::marker::PhantomData).boxed()
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            FullRange::<bool>(std::marker::PhantomData).boxed()
        }
    }

    impl Strategy for FullRange<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // Finite floats over a wide dynamic range: sign * mantissa *
            // 10^exp with exp in [-12, 12].
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            let mantissa = rng.random::<f64>();
            let exp = rng.random_range(-12i64..=12) as i32;
            sign * mantissa * 10f64.powi(exp)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary() -> BoxedStrategy<f64> {
            FullRange::<f64>(std::marker::PhantomData).boxed()
        }
    }

    /// The default strategy for `T` (used by `x: T` params in `proptest!`).
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;
    use std::collections::BTreeSet;

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s whose elements come from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times.
            for _ in 0..target * 20 + 20 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            assert!(
                out.len() >= self.size.lo,
                "btree_set: element strategy too narrow for requested size"
            );
            out
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The strategy producing uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }
}

pub mod test_runner {
    //! The case-running harness behind `proptest!`.

    use super::strategy::Strategy;
    use super::*;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Runs `body` against `config.cases` samples of `strategy`, printing
    /// the exact failing input (reproducible: sampling is deterministic)
    /// before re-raising any panic.
    pub fn run<S, F>(config: &Config, strategy: S, body: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value),
    {
        let mut rng = StdRng::seed_from_u64(0x5EED_CA5E);
        for case in 0..config.cases {
            let value = strategy.sample(&mut rng);
            let repr = format!("{value:#?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| body(value)));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest: property failed at case {}/{} with input:\n{}",
                    case + 1,
                    config.cases,
                    repr
                );
                resume_unwind(panic);
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property, reporting through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption fails. Sample-only runner:
/// treated as a hard precondition failure after too many skips is not
/// tracked, the case simply returns early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Picks one of several strategies (optionally weighted: `w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, x: Type) { .. }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal `@` rules must precede the catch-all entry arm, or recursive
    // invocations would re-enter it and loop forever.

    // One test fn, then recurse on the remainder. `#[test]` is written by
    // the user inside the block (proptest convention), so it arrives via
    // the meta repetition and is not added here.
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::proptest!(@parse __config, (), (), $body, $($params)*);
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};

    // Parameter munching: accumulate (strategies) and (patterns).
    (@parse $cfg:ident, ($($strats:tt)*), ($($pats:tt)*), $body:block,
        $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        $crate::proptest!(@parse $cfg, ($($strats)* ($strat),), ($($pats)* $pat,),
            $body, $($rest)*);
    };
    (@parse $cfg:ident, ($($strats:tt)*), ($($pats:tt)*), $body:block,
        $pat:pat_param in $strat:expr) => {
        $crate::proptest!(@parse $cfg, ($($strats)* ($strat),), ($($pats)* $pat,),
            $body,);
    };
    (@parse $cfg:ident, ($($strats:tt)*), ($($pats:tt)*), $body:block,
        $var:ident : $ty:ty, $($rest:tt)*) => {
        $crate::proptest!(@parse $cfg,
            ($($strats)* ($crate::arbitrary::any::<$ty>()),), ($($pats)* $var,),
            $body, $($rest)*);
    };
    (@parse $cfg:ident, ($($strats:tt)*), ($($pats:tt)*), $body:block,
        $var:ident : $ty:ty) => {
        $crate::proptest!(@parse $cfg,
            ($($strats)* ($crate::arbitrary::any::<$ty>()),), ($($pats)* $var,),
            $body,);
    };
    // All parameters consumed: run.
    (@parse $cfg:ident, ($(($strat:expr),)+), ($($pat:pat_param,)+), $body:block,) => {
        $crate::test_runner::run(&$cfg, ($($strat,)+), |($($pat,)+)| $body);
    };

    // Entry: leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // Entry: no config.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::sample(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        for _ in 0..50 {
            let s = crate::strategy::Strategy::sample(&"[ -~]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0f64..2.0, z: u64, b: bool) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = (z, b);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..5).prop_map(|n| n * 2), 1..6),
            s in prop_oneof![Just(1u32), 10u32..20],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            prop_assert!(s == 1 || (10..20).contains(&s));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let t = crate::strategy::Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
