//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no syn/quote available offline).
//!
//! The input item is parsed just deeply enough to learn its *shape* — item
//! name, field names / tuple arities, enum variant forms. Field **types are
//! never parsed**: the generated `Deserialize` code calls
//! `::serde::Deserialize::from_value(...)` and lets type inference pick the
//! impl, which is what makes a syn-free derive practical.
//!
//! Supported shapes (everything this workspace derives): unit/tuple/named
//! structs and enums whose variants are unit, tuple, or struct-like.
//! Generics and `#[serde(...)]` attributes are not supported and panic
//! loudly rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or an enum variant payload.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the tree-model `Serialize` (see the vendored `serde` crate).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_serialize(name, shape),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the tree-model `Deserialize` (see the vendored `serde` crate).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => gen_struct_deserialize(name, shape),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (on `{name}`)");
    }

    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Skips any leading `#[...]` attributes (including doc comments) and a
/// `pub`/`pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits `stream` on commas that sit outside `<...>` nesting. Brackets,
/// braces, and parens are whole `Group` tokens, so only angle brackets need
/// explicit depth tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Counts the fields of a tuple-struct / tuple-variant payload.
fn count_tuple_fields(body: TokenStream) -> usize {
    split_top_level(body).len()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    split_top_level(body)
        .into_iter()
        .map(|var| {
            let mut i = 0;
            skip_attrs_and_vis(&var, &mut i);
            let name = match var.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            i += 1;
            let shape = match var.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("serde_derive: explicit discriminants are not supported")
                }
                other => panic!("serde_derive: unexpected variant payload {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.shape {
                Shape::Unit => {
                    format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                }
                Shape::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\
                     \"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                ),
                Shape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                         \"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binds = fields.join(", ");
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\
                         \"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                        pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{\n\
         \t\tmatch self {{\n{}\n\t\t}}\n\
         \t}}\n\
         }}",
        arms.join("\n")
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_struct_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!(
            "match __v {{\n\
             \t::serde::Value::Null => Ok({name}),\n\
             \t__other => Err(::serde::DeError::expected(\"null\", __other)),\n\
             }}"
        ),
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 \t::serde::Value::Array(__items) if __items.len() == {n} => \
                 Ok({name}({})),\n\
                 \t__other => Err(::serde::DeError::expected(\
                 \"array of length {n}\", __other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))\
                         .map_err(|e| ::serde::DeError::msg(\
                         format!(\"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                 \treturn Err(::serde::DeError::expected(\"object\", __v));\n\
                 }}\n\
                 Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings.
    let str_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();

    // Payload variants arrive as single-key objects.
    let obj_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            let arm = match &v.shape {
                Shape::Unit => return None,
                Shape::Tuple(1) => format!(
                    "\"{vn}\" => Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__payload)?)),"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vn}\" => match __payload {{\n\
                         \t::serde::Value::Array(__items) if __items.len() == {n} => \
                         Ok({name}::{vn}({})),\n\
                         \t__other => Err(::serde::DeError::expected(\
                         \"array of length {n}\", __other)),\n\
                         }},",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __payload.field(\"{f}\"))?,"
                            )
                        })
                        .collect();
                    format!("\"{vn}\" => Ok({name}::{vn} {{\n{}\n}}),", inits.join("\n"))
                }
            };
            Some(arm)
        })
        .collect();

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         match __v {{\n\
         \t::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {str_arms}\n\
         \t\t__other => Err(::serde::DeError::msg(\
         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         \t}},\n\
         \t::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
         \t\tlet (__tag, __payload) = (&__pairs[0].0, &__pairs[0].1);\n\
         \t\tmatch __tag.as_str() {{\n\
         {obj_arms}\n\
         \t\t\t__other => Err(::serde::DeError::msg(\
         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         \t\t}}\n\
         \t}}\n\
         \t__other => Err(::serde::DeError::expected(\
         \"string or single-key object\", __other)),\n\
         }}\n\
         }}\n\
         }}",
        str_arms = str_arms.join("\n"),
        obj_arms = obj_arms.join("\n"),
    )
}
