//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Only the subset used by this workspace is provided: `Mutex` and `RwLock`
//! with the parking_lot calling convention (`lock()` returns the guard
//! directly instead of a `Result`, recovering from poisoning).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored,
    /// matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
