//! Offline stand-in for `criterion`.
//!
//! Keeps the criterion API shape (`bench_function`, `benchmark_group`,
//! `criterion_group!`/`criterion_main!`) but with a much simpler
//! measurement loop: warm up briefly, auto-calibrate an iteration batch
//! size, take `sample_size` wall-clock samples, and print mean/min/max
//! nanoseconds per iteration. No statistics beyond that, no plots, no
//! saved baselines — this repo's benches only need honest relative
//! numbers (serial vs parallel, cold vs cached).

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(25),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the wall-clock target for one timed sample.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.target_sample_time = t / 10;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.target_sample_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples, self.criterion.target_sample_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples, self.criterion.target_sample_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

/// Passed to benchmark closures; owns the measurement loop.
pub struct Bencher {
    sample_size: usize,
    target_sample_time: Duration,
    /// Mean/min/max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    fn new(sample_size: usize, target_sample_time: Duration) -> Bencher {
        Bencher {
            sample_size,
            target_sample_time,
            result: None,
        }
    }

    /// Times `routine`, auto-calibrating the batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until ~10ms or 1000 iters elapsed.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let warm_budget = Duration::from_millis(10);
        while warm_start.elapsed() < warm_budget && warm_iters < 1000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.target_sample_time.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            samples.push(ns);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.result = Some((mean, min, max));
    }

    fn report(&self, name: &str) {
        match self.result {
            Some((mean, min, max)) => println!(
                "{name:<44} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(mean),
                fmt_ns(max)
            ),
            None => println!("{name:<44} (no measurement)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, with an optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| b.iter(|| n * 2));
        }
        g.finish();
    }
}
