//! Offline stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this crate uses a
//! simple tree-valued data model: `Serialize` lowers a type to a [`Value`],
//! `Deserialize` raises a [`Value`] back. `serde_json` then renders and
//! parses `Value`s. The derive macros (re-exported from `serde_derive`)
//! generate the same externally-tagged representation serde_json would,
//! so golden files and round-trip tests behave as with real serde.
//!
//! Object fields keep insertion order (struct declaration order), which
//! makes serialized output deterministic — a property the golden-file
//! regression suite relies on.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Value)>),
}

/// Shared `null` used when a field is absent (mirrors serde's
/// missing-field-deserializes-Option-as-None behaviour).
pub static NULL: Value = Value::Null;

impl Value {
    /// A short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrows the object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Looks up `key`, treating a missing field as `null` (so `Option`
    /// fields deserialize to `None` when absent).
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// What went wrong.
    pub msg: String,
}

impl DeError {
    /// Builds an "expected X, got Y" error.
    pub fn expected(expected: &str, got: &Value) -> DeError {
        DeError {
            msg: format!("expected {expected}, got {}", got.type_name()),
        }
    }

    /// Builds an error from a message.
    pub fn msg(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Produces the serialized tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialized tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => {
                        Ok(*f as $t)
                    }
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                if n <= i64::MAX as u64 {
                    Value::I64(n as i64)
                } else {
                    Value::U64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::msg(format!("integer {n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 9.0e15 => {
                        Ok(*f as $t)
                    }
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    // serde_json renders non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => other
                        .as_f64()
                        .map(|f| f as $t)
                        .ok_or_else(|| DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError::msg("array length changed during conversion"))
            }
            other => Err(DeError::expected("fixed-length array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $n => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $n),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::I64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::I64(3)).unwrap(), 3);
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert_eq!(i32::from_value(&Value::F64(4.0)).unwrap(), 4);
        assert!(i32::from_value(&Value::F64(4.5)).is_err());
    }

    #[test]
    fn option_absent_field_is_none() {
        let obj = Value::Object(vec![]);
        let got: Option<u32> = Deserialize::from_value(obj.field("missing")).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn collections_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.0f64);
        let v = m.to_value();
        // BTreeMap serializes in key order.
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::F64(1.0)),
                ("b".into(), Value::F64(2.0)),
            ])
        );
        let back: BTreeMap<String, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
