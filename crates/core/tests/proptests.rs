//! Property-based tests for the EIL core: printer/parser round-trips,
//! distribution invariants, interval-analysis soundness, and linker
//! behaviour under randomly generated interfaces.

use proptest::prelude::*;

use ei_core::analysis::interval::{abstract_eval, AbsValue, Interval};
use ei_core::ast::{Expr, FnDef, Stmt};
use ei_core::dist::EnergyDist;
use ei_core::ecv::{DistSpec, EcvDecl, EcvEnv};
use ei_core::interface::Interface;
use ei_core::interp::{evaluate, evaluate_energy, EvalConfig};
use ei_core::parser::{parse, parse_expr};
use ei_core::pretty::{fmt_eil_num, print_interface};
use ei_core::units::{Calibration, Energy, EnergyVec};
use ei_core::value::Value;

// Generators are shared with the workspace-level VM differential suite.
#[path = "common/generators.rs"]
mod generators;
use generators::*;

// ---------------------------------------------------------------------------
// Printer / parser round-trip
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn print_parse_roundtrip_numeric(iface in arb_numeric_interface()) {
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).expect("printed interface must re-parse");
        prop_assert_eq!(&iface, &reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn print_parse_roundtrip_with_ecvs(
        names in proptest::collection::btree_set(arb_ident(), 1..4),
        dists in proptest::collection::vec(arb_dist_spec(), 4),
        doc in "[ -~]{0,30}",
    ) {
        let mut iface = Interface::new("gen");
        iface.doc = doc;
        for (name, dist) in names.iter().zip(dists) {
            iface.add_ecv(name.clone(), EcvDecl { dist, doc: String::new() }).unwrap();
        }
        iface.add_fn(FnDef::new("f", vec![], vec![Stmt::Return(Expr::Joules(1.0))]))
            .unwrap();
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).expect("must re-parse");
        prop_assert_eq!(iface, reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn print_parse_roundtrip_rich(iface in arb_rich_interface()) {
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).expect("rich interface must re-parse");
        prop_assert_eq!(&iface, &reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn fmt_eil_num_roundtrips_arbitrary_floats(bits: u64) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let e = parse_expr(&fmt_eil_num(v)).expect("EIL numeral must parse");
        let got = match e {
            Expr::Num(x) => x,
            other => panic!("parsed to non-literal {other:?}"),
        };
        prop_assert_eq!(got.to_bits(), v.to_bits(), "{} reparsed as {}", v, got);
    }

    // -----------------------------------------------------------------------
    // Interpreter / analysis coherence
    // -----------------------------------------------------------------------

    #[test]
    fn interval_analysis_is_sound(iface in arb_numeric_interface(), x in 0.0f64..100.0) {
        let cfg = EvalConfig::default();
        let env = EcvEnv::new();
        let concrete = evaluate_energy(&iface, "f", &[Value::Num(x)], &env, 0, &cfg);
        let abs = abstract_eval(
            &iface,
            "f",
            &[AbsValue::Num(Interval::new(0.0, 100.0))],
        );
        if let (Ok(c), Ok(a)) = (concrete, abs) {
            let e = a.as_energy().unwrap();
            let lo = e.lower_bound(&Calibration::empty()).unwrap();
            let hi = e.upper_bound(&Calibration::empty()).unwrap();
            let slack = 1e-9 * (1.0 + hi.as_joules().abs());
            prop_assert!(
                c.as_joules() >= lo.as_joules() - slack
                    && c.as_joules() <= hi.as_joules() + slack,
                "concrete {} outside [{}, {}]",
                c.as_joules(), lo.as_joules(), hi.as_joules()
            );
        }
    }

    #[test]
    fn evaluation_is_deterministic(iface in arb_numeric_interface(), x in 0.0f64..50.0, seed: u64) {
        let cfg = EvalConfig::default();
        let env = EcvEnv::new();
        let a = evaluate(&iface, "f", &[Value::Num(x)], &env, seed, &cfg);
        let b = evaluate(&iface, "f", &[Value::Num(x)], &env, seed, &cfg);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    // -----------------------------------------------------------------------
    // Distribution invariants
    // -----------------------------------------------------------------------

    #[test]
    fn dist_stats_invariants(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let d = EnergyDist::empirical(samples.iter().map(|j| Energy::joules(*j)).collect());
        let mean = d.mean().as_joules();
        prop_assert!(mean >= d.min().as_joules() - 1e-9);
        prop_assert!(mean <= d.max().as_joules() + 1e-9);
        prop_assert!(d.variance() >= -1e-9);
        let q05 = d.quantile(0.05);
        let q95 = d.quantile(0.95);
        prop_assert!(q05 <= q95);
        prop_assert!(d.quantile(0.0) == d.min());
    }

    #[test]
    fn mixture_mean_matches_weighted_sum(
        outcomes in proptest::collection::vec((0.0f64..100.0, 1u32..10), 1..8)
    ) {
        let total: u32 = outcomes.iter().map(|(_, w)| w).sum();
        let pairs: Vec<(Energy, f64)> = outcomes
            .iter()
            .map(|(e, w)| (Energy::joules(*e), *w as f64 / total as f64))
            .collect();
        let expect: f64 = pairs.iter().map(|(e, p)| e.as_joules() * p).sum();
        let d = EnergyDist::mixture(pairs);
        prop_assert!((d.mean().as_joules() - expect).abs() < 1e-9);
    }

    #[test]
    fn convolution_mean_is_additive(
        a in proptest::collection::vec((0.0f64..10.0, 1u32..4), 1..4),
        b in proptest::collection::vec((0.0f64..10.0, 1u32..4), 1..4),
    ) {
        let norm = |raw: &[(f64, u32)]| {
            let total: u32 = raw.iter().map(|(_, w)| w).sum();
            EnergyDist::mixture(
                raw.iter()
                    .map(|(e, w)| (Energy::joules(*e), *w as f64 / total as f64)),
            )
        };
        let da = norm(&a);
        let db = norm(&b);
        let c = da.convolve(&db);
        prop_assert!(
            (c.mean().as_joules() - (da.mean().as_joules() + db.mean().as_joules())).abs()
                < 1e-9
        );
    }

    // -----------------------------------------------------------------------
    // Unit algebra invariants
    // -----------------------------------------------------------------------

    #[test]
    fn energy_vec_algebra(j1 in -1e6f64..1e6, j2 in -1e6f64..1e6, k in -100.0f64..100.0) {
        let a = EnergyVec::from_joules(j1);
        let b = EnergyVec::from_joules(j2);
        let sum = a.plus(&b);
        prop_assert!((sum.joules - (j1 + j2)).abs() < 1e-6);
        let scaled = a.scaled(k);
        prop_assert!((scaled.joules - j1 * k).abs() < 1e-4);
        let diff = sum.minus(&b);
        prop_assert!((diff.joules - j1).abs() < 1e-6);
    }

    #[test]
    fn ecv_samples_in_support(dist in arb_dist_spec(), seed: u64) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = dist.sample(&mut rng).as_num();
        match &dist {
            DistSpec::Bernoulli { .. } => prop_assert!(v == 0.0 || v == 1.0),
            DistSpec::Uniform { lo, hi } => prop_assert!(v >= *lo && v <= *hi),
            DistSpec::Point { value } => prop_assert!((v - value).abs() < 1e-12),
            DistSpec::Discrete { outcomes } => {
                prop_assert!(outcomes.iter().any(|(o, _)| (o - v).abs() < 1e-12));
            }
            DistSpec::Normal { .. } => prop_assert!(v.is_finite()),
        }
    }
}

// ---------------------------------------------------------------------------
// Non-random cross-module integration checks kept alongside the properties.
// ---------------------------------------------------------------------------

#[test]
fn fig1_interface_text_renders_and_reparses() {
    let src = r#"
        interface ml_webservice "Fig. 1 of the paper" {
            unit conv2d; unit relu; unit mlp;
            ecv request_hit: bernoulli(0.25) "request found in cache";
            ecv local_cache_hit: bernoulli(0.8) "cache hit in current node";
            fn handle(request) {
                let max_response_len = 1024;
                if request_hit {
                    return cache_lookup(request.image_id, max_response_len);
                } else {
                    return cnn_forward(request);
                }
            }
            fn cache_lookup(key, response_len) {
                return (if local_cache_hit { 5 mJ } else { 100 mJ }) * response_len;
            }
            fn cnn_forward(request) {
                let n_embedding = 256;
                return 8 conv2d * ((request.image_size - request.image_zeros) / 1024)
                     + 8 relu * (n_embedding / 256)
                     + 16 mlp * (n_embedding / 256);
            }
        }
    "#;
    let iface = parse(src).unwrap();
    let printed = print_interface(&iface);
    let again = parse(&printed).unwrap();
    assert_eq!(iface, again);

    // And it evaluates under a calibration.
    let cal = Calibration::from_pairs([
        ("conv2d", Energy::millijoules(40.0)),
        ("relu", Energy::millijoules(1.0)),
        ("mlp", Energy::millijoules(10.0)),
    ]);
    let cfg = EvalConfig {
        calibration: cal,
        ..EvalConfig::default()
    };
    let mut env = iface.ecv_env();
    env.pin_bool("request_hit", false);
    let req = Value::num_record([
        ("image_id", 0.0),
        ("image_size", 1024.0),
        ("image_zeros", 0.0),
    ]);
    let e = evaluate_energy(&iface, "handle", &[req], &env, 0, &cfg).unwrap();
    let expect = 8.0 * 40e-3 + 8.0 * 1e-3 + 16.0 * 10e-3;
    assert!((e.as_joules() - expect).abs() < 1e-12);
}
