//! Shared proptest generators for EIL interfaces.
//!
//! Used by the core property suite (`crates/core/tests/proptests.rs`) and
//! the workspace-level VM differential suite (`tests/vm_differential.rs`)
//! via `#[path]` includes, so both test the same distribution of programs.

#![allow(dead_code)]

use proptest::prelude::*;

use ei_core::ast::{BinOp, Builtin, Expr, FnDef, Stmt};
use ei_core::ecv::{DistSpec, EcvDecl};
use ei_core::interface::Interface;

/// Small positive literal that prints and re-parses losslessly.
pub fn arb_lit() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u32..1000).prop_map(|n| n as f64),
        (1u32..10_000).prop_map(|n| n as f64 / 100.0),
    ]
}

pub fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword/builtin/suffix", |s| {
        !ei_core::parser::KEYWORDS.contains(&s.as_str())
            && Builtin::from_name(s).is_none()
            && !["mj", "uj", "nj", "pj", "kj", "j", "wh"].contains(&s.as_str())
    })
}

/// Numeric expressions over one scalar parameter `x`.
pub fn arb_num_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_lit().prop_map(Expr::Num), Just(Expr::var("x")),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::BuiltinCall(Builtin::Min, vec![a, b])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::BuiltinCall(Builtin::Max, vec![a, b])),
            inner
                .clone()
                .prop_map(|a| Expr::BuiltinCall(Builtin::Abs, vec![a])),
        ]
    })
}

/// A random single-function interface `fn f(x) { return joules(<num expr>); }`.
pub fn arb_numeric_interface() -> impl Strategy<Value = Interface> {
    arb_num_expr().prop_map(|e| {
        let mut i = Interface::new("gen");
        i.add_fn(FnDef::new(
            "f",
            vec!["x".into()],
            vec![Stmt::Return(Expr::BuiltinCall(Builtin::Joules, vec![e]))],
        ))
        .unwrap();
        i
    })
}

pub fn arb_dist_spec() -> impl Strategy<Value = DistSpec> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(|p| DistSpec::Bernoulli { p }),
        (arb_lit(), arb_lit()).prop_map(|(a, b)| DistSpec::Uniform {
            lo: a.min(b),
            hi: a.max(b)
        }),
        (arb_lit(), 0.0f64..5.0).prop_map(|(m, s)| DistSpec::Normal {
            mean: m,
            std_dev: s
        }),
        arb_lit().prop_map(|v| DistSpec::Point { value: v }),
        proptest::collection::vec((arb_lit(), 1u32..5), 1..4).prop_map(|raw| {
            let total: u32 = raw.iter().map(|(_, w)| w).sum();
            DistSpec::Discrete {
                outcomes: raw
                    .into_iter()
                    .map(|(v, w)| (v, w as f64 / total as f64))
                    .collect(),
            }
        }),
    ]
}

/// Arbitrary finite non-negative f64, drawn from raw bit patterns so the
/// full exponent range (denormals included) is exercised.
pub fn arb_pos_float() -> impl Strategy<Value = f64> {
    any::<u64>()
        .prop_map(|b| f64::from_bits(b & !(1u64 << 63)))
        .prop_filter("finite", |v| v.is_finite())
}

/// Unit names that cannot collide with keywords, energy suffixes, or the
/// variable names the rich generator uses.
pub fn arb_unit_name() -> impl Strategy<Value = String> {
    arb_ident().prop_map(|s| format!("u_{s}"))
}

/// A two-function interface exercising units, energy literals (with
/// extreme-magnitude floats), both loop forms, if/else, and a
/// cross-function call — everything the printer must round-trip.
///
/// Leaves arrive as raw `(concrete?, unit pick, magnitude)` triples and are
/// resolved against the generated unit set inside the map (the vendored
/// strategy combinators have no `prop_flat_map`).
pub fn arb_rich_interface() -> impl Strategy<Value = Interface> {
    (
        proptest::collection::btree_set(arb_unit_name(), 1..3),
        proptest::collection::vec((any::<bool>(), any::<u64>(), arb_pos_float()), 3),
        (arb_lit(), 1u32..24, 1u64..8, any::<bool>()),
    )
        .prop_map(|(units, raw_leaves, (thr, trips, bound, use_while))| {
            let names: Vec<&String> = units.iter().collect();
            let leaves: Vec<Expr> = raw_leaves
                .into_iter()
                .map(|(concrete, pick, v)| {
                    if concrete {
                        Expr::Joules(v)
                    } else {
                        Expr::Unit(names[pick as usize % names.len()].clone(), v)
                    }
                })
                .collect();
            let mut i = Interface::new("rich");
            for u in &units {
                i.add_unit(u.clone());
            }
            let accumulate = Stmt::Assign(
                "e".into(),
                Expr::bin(BinOp::Add, Expr::var("e"), leaves[0].clone()),
            );
            let looped = if use_while {
                Stmt::While {
                    cond: Expr::bin(BinOp::Lt, Expr::var("x"), Expr::Num(thr)),
                    bound,
                    body: vec![accumulate],
                }
            } else {
                Stmt::For {
                    var: "i".into(),
                    from: Expr::Num(0.0),
                    to: Expr::Num(f64::from(trips)),
                    body: vec![accumulate],
                }
            };
            i.add_fn(FnDef::new(
                "work",
                vec!["x".into()],
                vec![
                    Stmt::Let("e".into(), Expr::Joules(0.0)),
                    looped,
                    Stmt::If(
                        Expr::bin(BinOp::Lt, Expr::var("x"), Expr::Num(thr)),
                        vec![Stmt::Return(Expr::var("e"))],
                        vec![Stmt::Return(Expr::bin(
                            BinOp::Add,
                            Expr::var("e"),
                            leaves[1].clone(),
                        ))],
                    ),
                ],
            ))
            .unwrap();
            i.add_fn(FnDef::new(
                "top",
                vec!["y".into()],
                vec![Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::Call("work".into(), vec![Expr::var("y")]),
                    leaves[2].clone(),
                ))],
            ))
            .unwrap();
            i
        })
}

/// [`arb_rich_interface`] plus sampled ECVs and an `entry` function whose
/// control flow depends on them — the distribution the VM differential
/// suite evaluates under both engines.
pub fn arb_vm_interface() -> impl Strategy<Value = Interface> {
    (arb_rich_interface(), 0.0f64..=1.0, (arb_lit(), arb_lit())).prop_map(|(mut i, p, (a, b))| {
        i.add_ecv(
            "hot",
            EcvDecl {
                dist: DistSpec::Bernoulli { p },
                doc: String::new(),
            },
        )
        .unwrap();
        i.add_ecv(
            "mix",
            EcvDecl {
                dist: DistSpec::Uniform {
                    lo: a.min(b),
                    hi: a.max(b),
                },
                doc: String::new(),
            },
        )
        .unwrap();
        i.add_fn(FnDef::new(
            "entry",
            vec!["z".into()],
            vec![Stmt::If(
                Expr::Ecv("hot".into()),
                vec![Stmt::Return(Expr::bin(
                    BinOp::Mul,
                    Expr::Call("top".into(), vec![Expr::var("z")]),
                    Expr::Ecv("mix".into()),
                ))],
                vec![Stmt::Return(Expr::Call(
                    "work".into(),
                    vec![Expr::var("z")],
                ))],
            )],
        ))
        .unwrap();
        i
    })
}
