//! Runtime values of the EIL interpreter.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, NameKind, Result};
use crate::units::{Energy, EnergyVec};

/// A runtime value: number, boolean, energy vector, or record.
///
/// Records model the *abstraction of the input* that §3 allows: "a
/// communication layer might care only about the number of RPC calls and
/// payload size" — so inputs are records of numeric features rather than
/// concrete payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A dimensionless number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An energy quantity (possibly with abstract-unit components).
    Energy(EnergyVec),
    /// A record of named fields.
    Record(BTreeMap<String, Value>),
}

impl Value {
    /// A record value built from `(field, value)` pairs.
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A record of numeric fields — the common input shape.
    pub fn num_record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        Value::record(fields.into_iter().map(|(k, v)| (k, Value::Num(v))))
    }

    /// A pure-Joule energy value.
    pub fn joules(j: f64) -> Value {
        Value::Energy(EnergyVec::from_joules(j))
    }

    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Energy(_) => "energy",
            Value::Record(_) => "record",
        }
    }

    /// Extracts a number, or errors.
    pub fn as_num(&self) -> Result<f64> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(Error::Type {
                expected: "number",
                got: other.type_name().into(),
            }),
        }
    }

    /// Extracts a boolean, or errors.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::Type {
                expected: "boolean",
                got: other.type_name().into(),
            }),
        }
    }

    /// Extracts an energy vector, or errors.
    pub fn as_energy(&self) -> Result<&EnergyVec> {
        match self {
            Value::Energy(e) => Ok(e),
            other => Err(Error::Type {
                expected: "energy",
                got: other.type_name().into(),
            }),
        }
    }

    /// Extracts an energy vector, consuming the value.
    pub fn into_energy(self) -> Result<EnergyVec> {
        match self {
            Value::Energy(e) => Ok(e),
            other => Err(Error::Type {
                expected: "energy",
                got: other.type_name().into(),
            }),
        }
    }

    /// Converts an energy value to concrete Joules with no calibration.
    pub fn into_joules(self) -> Result<Energy> {
        self.into_energy()?.to_energy()
    }

    /// Reads a field of a record, or errors.
    pub fn field(&self, name: &str) -> Result<&Value> {
        match self {
            Value::Record(fields) => fields.get(name).ok_or_else(|| Error::Unresolved {
                kind: NameKind::Field,
                name: name.to_string(),
            }),
            other => Err(Error::Type {
                expected: "record",
                got: other.type_name().into(),
            }),
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Energy> for Value {
    fn from(e: Energy) -> Value {
        Value::Energy(EnergyVec::from_energy(e))
    }
}

impl From<EnergyVec> for Value {
    fn from(v: EnergyVec) -> Value {
        Value::Energy(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Energy(e) => write!(f, "{e}"),
            Value::Record(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Num(2.0).as_num().unwrap(), 2.0);
        assert!(Value::Num(2.0).as_bool().is_err());
        assert!(Value::Bool(true).as_num().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::joules(1.0).as_energy().is_ok());
        assert!(Value::joules(1.0).as_num().is_err());
    }

    #[test]
    fn record_field_access() {
        let r = Value::num_record([("size", 64.0), ("zeros", 8.0)]);
        assert_eq!(r.field("size").unwrap().as_num().unwrap(), 64.0);
        let err = r.field("missing").unwrap_err();
        assert!(matches!(err, Error::Unresolved { .. }));
        assert!(Value::Num(1.0).field("x").is_err());
    }

    #[test]
    fn conversions() {
        let v: Value = Energy::millijoules(3.0).into();
        assert!((v.into_joules().unwrap().as_joules() - 3e-3).abs() < 1e-15);
        let v: Value = 2.5f64.into();
        assert_eq!(v, Value::Num(2.5));
        let v: Value = true.into();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn display_forms() {
        let r = Value::record([("a", Value::Num(1.0)), ("b", Value::Bool(false))]);
        assert_eq!(format!("{r}"), "{a: 1, b: false}");
        assert_eq!(format!("{}", Value::joules(2.0)), "2.0000 J");
    }
}
