//! Energy interfaces: named collections of EIL functions plus ECV and unit
//! declarations.
//!
//! An [`Interface`] is the paper's central artifact: "an explanation of the
//! energy behavior of a resource that is both concise and accurate" (§2),
//! written as a program. Interfaces declare the abstract units they emit,
//! the ECVs they read, and the extern functions (lower-layer interfaces)
//! they call; [linking](crate::compose) resolves externs against providers.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ast::{Builtin, Expr, ExternDecl, FnDef};
use crate::ecv::{EcvDecl, EcvEnv};
use crate::error::{Error, NameKind, Result};

/// The declared range of one numeric input feature, used by worst-case and
/// compatibility analyses to bound the input space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl FeatureRange {
    /// Creates a range; callers must ensure `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        FeatureRange { lo, hi }
    }

    /// A degenerate single-point range.
    pub fn point(v: f64) -> Self {
        FeatureRange { lo: v, hi: v }
    }

    /// True when `v` falls within the range.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Schema of one function's input: per-parameter feature ranges.
///
/// A scalar parameter has an entry under its own name; a record parameter
/// has entries `param.field`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    ranges: BTreeMap<String, FeatureRange>,
}

impl InputSpec {
    /// An empty spec (no declared ranges).
    pub fn new() -> Self {
        InputSpec::default()
    }

    /// Declares the range of `path` (`param` or `param.field`).
    pub fn range(mut self, path: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.ranges.insert(path.into(), FeatureRange::new(lo, hi));
        self
    }

    /// Looks up the declared range for `path`.
    pub fn get(&self, path: &str) -> Option<FeatureRange> {
        self.ranges.get(path).copied()
    }

    /// Iterates over all `(path, range)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, FeatureRange)> {
        self.ranges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when no ranges are declared.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// An energy interface: functions, ECV declarations, abstract units, and
/// extern requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    /// Interface name (e.g. `ml_webservice`).
    pub name: String,
    /// Documentation shown at the top of the pretty-printed interface.
    pub doc: String,
    /// Function definitions, keyed by name.
    pub fns: BTreeMap<String, FnDef>,
    /// ECV declarations, keyed by name.
    pub ecvs: BTreeMap<String, EcvDecl>,
    /// Abstract energy units this interface may emit.
    pub units: BTreeSet<String>,
    /// Extern functions this interface calls but does not define.
    pub externs: BTreeMap<String, ExternDecl>,
    /// Optional input schemas per function, for analyses.
    pub input_specs: BTreeMap<String, InputSpec>,
    /// Source positions recorded by the parser (metadata: always compares
    /// equal, serializes as `null`; empty for programmatically built
    /// interfaces).
    pub spans: crate::span::SpanTable,
}

impl Interface {
    /// Creates an empty interface with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            doc: String::new(),
            fns: BTreeMap::new(),
            ecvs: BTreeMap::new(),
            units: BTreeSet::new(),
            externs: BTreeMap::new(),
            input_specs: BTreeMap::new(),
            spans: crate::span::SpanTable::default(),
        }
    }

    /// Adds a function definition; errors on duplicates.
    pub fn add_fn(&mut self, f: FnDef) -> Result<()> {
        if self.fns.contains_key(&f.name) {
            return Err(Error::Duplicate {
                kind: NameKind::Function,
                name: f.name.clone(),
            });
        }
        if self.externs.contains_key(&f.name) {
            return Err(Error::Duplicate {
                kind: NameKind::Function,
                name: f.name.clone(),
            });
        }
        self.fns.insert(f.name.clone(), f);
        Ok(())
    }

    /// Declares an ECV; errors on duplicates.
    pub fn add_ecv(&mut self, name: impl Into<String>, decl: EcvDecl) -> Result<()> {
        let name = name.into();
        decl.dist.validate(&name)?;
        if self.ecvs.contains_key(&name) {
            return Err(Error::Duplicate {
                kind: NameKind::Ecv,
                name,
            });
        }
        self.ecvs.insert(name, decl);
        Ok(())
    }

    /// Declares an abstract energy unit.
    pub fn add_unit(&mut self, name: impl Into<String>) {
        self.units.insert(name.into());
    }

    /// Declares an extern function requirement; errors on duplicates.
    pub fn add_extern(&mut self, decl: ExternDecl) -> Result<()> {
        if self.fns.contains_key(&decl.name) || self.externs.contains_key(&decl.name) {
            return Err(Error::Duplicate {
                kind: NameKind::Function,
                name: decl.name.clone(),
            });
        }
        self.externs.insert(decl.name.clone(), decl);
        Ok(())
    }

    /// Attaches an input schema to a function.
    pub fn set_input_spec(&mut self, func: impl Into<String>, spec: InputSpec) {
        self.input_specs.insert(func.into(), spec);
    }

    /// Looks up a function definition.
    pub fn get_fn(&self, name: &str) -> Result<&FnDef> {
        self.fns.get(name).ok_or_else(|| Error::Unresolved {
            kind: NameKind::Function,
            name: name.to_string(),
        })
    }

    /// True when the interface has no unresolved externs.
    pub fn is_closed(&self) -> bool {
        self.externs.is_empty()
    }

    /// Builds an [`EcvEnv`] from this interface's ECV declarations.
    pub fn ecv_env(&self) -> EcvEnv {
        EcvEnv::from_decls(&self.ecvs)
    }

    /// Validates internal consistency:
    ///
    /// - every `Call` target resolves to a local function or declared extern
    ///   (builtins are checked structurally at parse/build time);
    /// - call arity matches the callee;
    /// - every `Ecv` read has a declaration;
    /// - every abstract-unit literal has a unit declaration;
    /// - every ECV distribution is valid.
    pub fn validate(&self) -> Result<()> {
        for (name, decl) in &self.ecvs {
            decl.dist.validate(name)?;
        }
        for f in self.fns.values() {
            let mut err: Option<Error> = None;
            for stmt in &f.body {
                stmt.visit_exprs(&mut |e| {
                    if err.is_some() {
                        return;
                    }
                    err = self.check_expr(e).err();
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn check_expr(&self, e: &Expr) -> Result<()> {
        match e {
            Expr::Call(name, args) => {
                if let Some(f) = self.fns.get(name) {
                    if f.params.len() != args.len() {
                        return Err(Error::Arity {
                            func: name.clone(),
                            expected: f.params.len(),
                            got: args.len(),
                        });
                    }
                } else if let Some(ext) = self.externs.get(name) {
                    if ext.arity != args.len() {
                        return Err(Error::Arity {
                            func: name.clone(),
                            expected: ext.arity,
                            got: args.len(),
                        });
                    }
                } else if Builtin::from_name(name).is_none() {
                    return Err(Error::Unresolved {
                        kind: NameKind::Function,
                        name: name.clone(),
                    });
                }
                Ok(())
            }
            Expr::BuiltinCall(b, args) => {
                if b.arity() != args.len() {
                    return Err(Error::Arity {
                        func: b.name().to_string(),
                        expected: b.arity(),
                        got: args.len(),
                    });
                }
                Ok(())
            }
            Expr::Ecv(name) => {
                if !self.ecvs.contains_key(name) {
                    return Err(Error::Unresolved {
                        kind: NameKind::Ecv,
                        name: name.clone(),
                    });
                }
                Ok(())
            }
            Expr::Unit(name, _) => {
                if !self.units.contains(name) {
                    return Err(Error::Unresolved {
                        kind: NameKind::Unit,
                        name: name.clone(),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// The set of extern names actually called from function bodies.
    ///
    /// Linking uses this to know what remains unresolved; `validate`
    /// guarantees it is a subset of `self.externs`.
    pub fn called_externs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for f in self.fns.values() {
            for callee in f.callees() {
                if self.externs.contains_key(&callee) {
                    out.insert(callee);
                }
            }
        }
        out
    }

    /// The call graph restricted to local functions: `name -> callees`.
    pub fn call_graph(&self) -> BTreeMap<String, Vec<String>> {
        self.fns
            .iter()
            .map(|(name, f)| {
                let local: Vec<String> = f
                    .callees()
                    .into_iter()
                    .filter(|c| self.fns.contains_key(c))
                    .collect();
                (name.clone(), local)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};
    use crate::ecv::DistSpec;

    fn ret(e: Expr) -> Vec<Stmt> {
        vec![Stmt::Return(e)]
    }

    #[test]
    fn add_and_get_fn() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new("f", vec![], ret(Expr::Joules(1.0))))
            .unwrap();
        assert!(i.get_fn("f").is_ok());
        assert!(i.get_fn("g").is_err());
        let dup = i.add_fn(FnDef::new("f", vec![], ret(Expr::Joules(2.0))));
        assert!(dup.is_err());
    }

    #[test]
    fn validate_unresolved_call() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new(
            "f",
            vec![],
            ret(Expr::Call("missing".into(), vec![])),
        ))
        .unwrap();
        let err = i.validate().unwrap_err();
        assert_eq!(
            err,
            Error::Unresolved {
                kind: NameKind::Function,
                name: "missing".into()
            }
        );
    }

    #[test]
    fn validate_arity_mismatch() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new("g", vec!["x".into()], ret(Expr::var("x"))))
            .unwrap();
        i.add_fn(FnDef::new("f", vec![], ret(Expr::Call("g".into(), vec![]))))
            .unwrap();
        assert!(matches!(i.validate(), Err(Error::Arity { .. })));
    }

    #[test]
    fn validate_extern_arity() {
        let mut i = Interface::new("t");
        i.add_extern(ExternDecl {
            name: "hw_op".into(),
            arity: 2,
            doc: String::new(),
        })
        .unwrap();
        i.add_fn(FnDef::new(
            "f",
            vec![],
            ret(Expr::Call("hw_op".into(), vec![Expr::Num(1.0)])),
        ))
        .unwrap();
        assert!(matches!(i.validate(), Err(Error::Arity { .. })));
        assert!(!i.is_closed());
        assert!(i.called_externs().contains("hw_op"));
    }

    #[test]
    fn validate_ecv_and_unit_declarations() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new("f", vec![], ret(Expr::Ecv("hit".into()))))
            .unwrap();
        assert!(i.validate().is_err());
        i.add_ecv(
            "hit",
            EcvDecl {
                dist: DistSpec::Bernoulli { p: 0.5 },
                doc: String::new(),
            },
        )
        .unwrap();
        assert!(i.validate().is_ok());

        let mut j = Interface::new("u");
        j.add_fn(FnDef::new("f", vec![], ret(Expr::Unit("relu".into(), 2.0))))
            .unwrap();
        assert!(j.validate().is_err());
        j.add_unit("relu");
        assert!(j.validate().is_ok());
    }

    #[test]
    fn builtin_calls_pass_validation() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new(
            "f",
            vec![],
            ret(Expr::Call(
                "min".into(),
                vec![Expr::Num(1.0), Expr::Num(2.0)],
            )),
        ))
        .unwrap();
        assert!(i.validate().is_ok());
    }

    #[test]
    fn call_graph_is_local_only() {
        let mut i = Interface::new("t");
        i.add_extern(ExternDecl {
            name: "ext".into(),
            arity: 0,
            doc: String::new(),
        })
        .unwrap();
        i.add_fn(FnDef::new(
            "a",
            vec![],
            ret(Expr::bin(
                BinOp::Add,
                Expr::Call("b".into(), vec![]),
                Expr::Call("ext".into(), vec![]),
            )),
        ))
        .unwrap();
        i.add_fn(FnDef::new("b", vec![], ret(Expr::Joules(1.0))))
            .unwrap();
        let g = i.call_graph();
        assert_eq!(g["a"], vec!["b"]);
        assert!(g["b"].is_empty());
    }

    #[test]
    fn input_spec_ranges() {
        let spec = InputSpec::new()
            .range("request.image_size", 1.0, 4096.0)
            .range("n", 0.0, 10.0);
        assert!(spec.get("request.image_size").unwrap().contains(100.0));
        assert!(!spec.get("n").unwrap().contains(11.0));
        assert_eq!(spec.iter().count(), 2);
        assert!(!spec.is_empty());
        assert_eq!(FeatureRange::point(3.0), FeatureRange::new(3.0, 3.0));
    }

    #[test]
    fn extern_and_fn_name_collision() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new("f", vec![], ret(Expr::Joules(1.0))))
            .unwrap();
        assert!(i
            .add_extern(ExternDecl {
                name: "f".into(),
                arity: 0,
                doc: String::new()
            })
            .is_err());
        i.add_extern(ExternDecl {
            name: "g".into(),
            arity: 0,
            doc: String::new(),
        })
        .unwrap();
        assert!(i
            .add_fn(FnDef::new("g", vec![], ret(Expr::Joules(1.0))))
            .is_err());
    }
}
