//! Compatibility checking between interfaces.
//!
//! §4.1: "A tool then combines the energy interfaces of the system's modules
//! and provides a first-cut answer on whether they are compatible with each
//! other, i.e., whether the composition of lower-level modules satisfies the
//! energy constraints present in the upper-level energy interfaces."
//!
//! Here, a *spec* interface declares the energy envelope (its value per
//! input is the worst-case allowance) and a *candidate* interface (typically
//! the linked composition of lower-level modules, or an interface derived
//! from an implementation) must stay within that envelope pointwise over the
//! declared input space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::analysis::worst_case::worst_case_at;
use crate::error::{Error, Result};
use crate::interface::{InputSpec, Interface};
use crate::units::{Calibration, Energy};

/// One point where the candidate exceeded the spec's envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The input (one scalar per parameter) at which the violation occurred.
    pub input: Vec<f64>,
    /// The candidate's worst-case energy at this input.
    pub candidate: Energy,
    /// The spec's allowance at this input.
    pub allowed: Energy,
}

/// Result of a compatibility check.
#[derive(Debug, Clone)]
pub struct CompatReport {
    /// Number of input points checked.
    pub points_checked: usize,
    /// All violations found (empty means compatible on the sampled grid).
    pub violations: Vec<Violation>,
    /// Largest candidate/spec ratio observed (1.0 means exactly at budget).
    pub max_ratio: f64,
}

impl CompatReport {
    /// True when no violation was found.
    pub fn is_compatible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Configuration for [`check_compat`].
#[derive(Debug, Clone)]
pub struct CompatConfig {
    /// Grid points per input dimension (endpoints always included).
    pub grid: usize,
    /// Extra uniformly random points.
    pub random: usize,
    /// RNG seed for the random points.
    pub seed: u64,
    /// Calibration used to reduce both interfaces to Joules.
    pub calibration: Calibration,
}

impl Default for CompatConfig {
    fn default() -> Self {
        CompatConfig {
            grid: 5,
            random: 32,
            seed: 0xC0,
            calibration: Calibration::empty(),
        }
    }
}

/// Checks that `candidate.func` stays within `spec.func` over `inputs`.
///
/// At each sampled input point the candidate's *upper* bound (worst case
/// over its ECVs) is compared against the spec's upper bound at the same
/// point — the spec is an envelope, so its worst case is the allowance.
/// Both functions must share the same scalar parameter list.
pub fn check_compat(
    spec: &Interface,
    candidate: &Interface,
    func: &str,
    inputs: &InputSpec,
    config: &CompatConfig,
) -> Result<CompatReport> {
    let sf = spec.get_fn(func)?;
    let cf = candidate.get_fn(func)?;
    if sf.params.len() != cf.params.len() {
        return Err(Error::Incompatible {
            msg: format!(
                "`{func}` has {} parameter(s) in the spec but {} in the candidate",
                sf.params.len(),
                cf.params.len()
            ),
        });
    }
    let ranges: Vec<(f64, f64)> = sf
        .params
        .iter()
        .map(|p| {
            inputs
                .get(p)
                .map(|r| (r.lo, r.hi))
                .ok_or_else(|| Error::BadInput {
                    msg: format!("no declared range for parameter `{p}` of `{func}`"),
                })
        })
        .collect::<Result<_>>()?;

    let mut points: Vec<Vec<f64>> = Vec::new();
    push_grid(&ranges, config.grid.max(2), &mut points);
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.random {
        points.push(
            ranges
                .iter()
                .map(|(a, b)| a + (b - a) * rng.random::<f64>())
                .collect(),
        );
    }

    let mut violations = Vec::new();
    let mut max_ratio: f64 = 0.0;
    for point in &points {
        let allowed = worst_case_at(spec, func, point, &config.calibration)?.upper;
        let cand = worst_case_at(candidate, func, point, &config.calibration)?.upper;
        let ratio = if allowed.as_joules() > 0.0 {
            cand.as_joules() / allowed.as_joules()
        } else if cand.as_joules() > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        max_ratio = max_ratio.max(ratio);
        if cand.as_joules() > allowed.as_joules() * (1.0 + 1e-12) {
            violations.push(Violation {
                input: point.clone(),
                candidate: cand,
                allowed,
            });
        }
    }
    Ok(CompatReport {
        points_checked: points.len(),
        violations,
        max_ratio,
    })
}

/// Builds the cartesian grid over `ranges` with `n` points per dimension.
fn push_grid(ranges: &[(f64, f64)], n: usize, out: &mut Vec<Vec<f64>>) {
    let mut point = vec![0.0; ranges.len()];
    fill_grid(ranges, n, 0, &mut point, out);
}

fn fill_grid(
    ranges: &[(f64, f64)],
    n: usize,
    dim: usize,
    point: &mut Vec<f64>,
    out: &mut Vec<Vec<f64>>,
) {
    if dim == ranges.len() {
        out.push(point.clone());
        return;
    }
    let (a, b) = ranges[dim];
    for k in 0..n {
        let v = if n == 1 {
            a
        } else {
            a + (b - a) * (k as f64) / ((n - 1) as f64)
        };
        point[dim] = v;
        fill_grid(ranges, n, dim + 1, point, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn spec() -> Interface {
        parse(
            r#"interface spec {
                fn op(n) { return 10 mJ + 2 mJ * n; }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn compatible_candidate_passes() {
        let cand = parse(
            r#"interface cand {
                ecv fast_path: bernoulli(0.9);
                fn op(n) {
                    if ecv(fast_path) { return 1 mJ + 1 mJ * n; }
                    else { return 5 mJ + 2 mJ * n; }
                }
            }"#,
        )
        .unwrap();
        let inputs = InputSpec::new().range("n", 0.0, 100.0);
        let report = check_compat(&spec(), &cand, "op", &inputs, &CompatConfig::default()).unwrap();
        assert!(report.is_compatible(), "{:?}", report.violations);
        assert!(report.max_ratio <= 1.0);
        assert!(report.points_checked >= 5);
    }

    #[test]
    fn violating_candidate_flagged_with_witness() {
        let cand = parse(
            r#"interface cand {
                fn op(n) { return 5 mJ + 3 mJ * n; }
            }"#,
        )
        .unwrap();
        let inputs = InputSpec::new().range("n", 0.0, 100.0);
        let report = check_compat(&spec(), &cand, "op", &inputs, &CompatConfig::default()).unwrap();
        assert!(!report.is_compatible());
        // 5 + 3n > 10 + 2n iff n > 5: the witness must be there.
        for v in &report.violations {
            assert!(v.input[0] > 5.0);
            assert!(v.candidate > v.allowed);
        }
        assert!(report.max_ratio > 1.0);
    }

    #[test]
    fn crossover_detected_even_between_grid_points() {
        // Violation only in a narrow window (n in (90, 100]); random points
        // plus the grid endpoint at 100 must catch it.
        let cand = parse(
            r#"interface cand {
                fn op(n) {
                    if n > 90 { return 10 mJ + 2.5 mJ * n; }
                    else { return 1 mJ; }
                }
            }"#,
        )
        .unwrap();
        let inputs = InputSpec::new().range("n", 0.0, 100.0);
        let report = check_compat(&spec(), &cand, "op", &inputs, &CompatConfig::default()).unwrap();
        assert!(!report.is_compatible());
    }

    #[test]
    fn parameter_count_mismatch_rejected() {
        let cand = parse("interface cand { fn op(n, m) { return 1 mJ * n * m; } }").unwrap();
        let inputs = InputSpec::new().range("n", 0.0, 1.0);
        assert!(matches!(
            check_compat(&spec(), &cand, "op", &inputs, &CompatConfig::default()),
            Err(Error::Incompatible { .. })
        ));
    }

    #[test]
    fn missing_range_rejected() {
        let cand = parse("interface cand { fn op(n) { return 1 mJ; } }").unwrap();
        assert!(matches!(
            check_compat(
                &spec(),
                &cand,
                "op",
                &InputSpec::new(),
                &CompatConfig::default()
            ),
            Err(Error::BadInput { .. })
        ));
    }

    #[test]
    fn multi_dimensional_grid() {
        let spec2 = parse("interface s2 { fn op(a, b) { return 1 mJ * a + 1 mJ * b; } }").unwrap();
        let cand2 = parse("interface c2 { fn op(a, b) { return 0.5 mJ * (a + b); } }").unwrap();
        let inputs = InputSpec::new().range("a", 0.0, 10.0).range("b", 0.0, 10.0);
        let report = check_compat(
            &spec2,
            &cand2,
            "op",
            &inputs,
            &CompatConfig {
                grid: 3,
                random: 5,
                ..CompatConfig::default()
            },
        )
        .unwrap();
        assert!(report.is_compatible());
        assert_eq!(report.points_checked, 9 + 5);
    }
}
