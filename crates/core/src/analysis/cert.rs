//! Sound energy-bound certificates (`eic certify`).
//!
//! The paper's position is that a published energy interface should let a
//! consumer reason about a module's energy *without* re-measuring it. A
//! [`Certificate`] makes that reasoning checkable: for each certified
//! function it records a **guaranteed** min/max energy over the declared
//! input space ([`InputSpec`]) and ECV domains, plus a per-variable
//! **monotonicity** verdict — both derived statically, so they hold for
//! every concrete execution, not just the ones a sweep happened to
//! sample.
//!
//! Bounds come from the interval abstract interpreter
//! ([`crate::analysis::worst_case`]); monotonicity comes from a
//! *directional* abstract interpretation implemented here: every abstract
//! value carries, alongside its interval, the sign of its dependence on
//! one target variable (a parameter or a numeric ECV). The direction
//! lattice is `Constant ⊑ {NonDecreasing, NonIncreasing} ⊑ Unknown`;
//! transfer functions only strengthen a claim when it is provable
//! (products need sign information, branches on target-dependent
//! conditions poison the result, loops with target-dependent trip counts
//! certify only the accumulate-non-negative pattern). `Unknown` is always
//! sound.
//!
//! Certificates render to canonical JSON — sorted keys, no insignificant
//! whitespace, shortest-roundtrip floats — so byte equality is
//! certificate equality.

use std::collections::BTreeMap;
use std::fmt;

use crate::analysis::interval::{
    abs_binary, abs_builtin, abstract_inputs, ecv_abs_value, AbsBool, AbsValue, Interval,
    MAX_ABSTRACT_TRIPS,
};
use crate::analysis::worst_case::{worst_case, EnergyBound};
use crate::ast::{BinOp, Builtin, Expr, Stmt, UnOp};
use crate::cache::fingerprint_interface;
use crate::ecv::DistSpec;
use crate::error::{Error, NameKind, Result};
use crate::interface::{InputSpec, Interface};
use crate::units::Calibration;

/// How a function's energy responds to one input variable over the
/// certified domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonicity {
    /// The result does not depend on the variable.
    Constant,
    /// Never decreases as the variable increases.
    NonDecreasing,
    /// Never increases as the variable increases.
    NonIncreasing,
    /// The analysis could not prove a direction.
    Unknown,
}

impl fmt::Display for Monotonicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Monotonicity::Constant => "constant",
            Monotonicity::NonDecreasing => "non_decreasing",
            Monotonicity::NonIncreasing => "non_increasing",
            Monotonicity::Unknown => "unknown",
        })
    }
}

/// The certificate of one interface function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnCertificate {
    /// Guaranteed energy bound over the declared domain: no execution
    /// with in-spec inputs and in-domain ECVs lands outside it.
    pub bound: EnergyBound,
    /// Monotonicity per scalar parameter (keyed by name) and per numeric
    /// ECV (keyed `ecv(name)`).
    pub monotone: BTreeMap<String, Monotonicity>,
}

/// A certificate over an interface: sound bounds and monotonicity
/// verdicts for every certifiable function.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Interface name.
    pub interface: String,
    /// Fingerprint of the certified interface
    /// ([`crate::cache::fingerprint_interface`]): a certificate is only
    /// meaningful against the exact interface it was computed from.
    pub fingerprint: u64,
    /// Per-function certificates, keyed by function name.
    pub fns: BTreeMap<String, FnCertificate>,
}

impl Certificate {
    /// Renders the certificate as canonical JSON: sorted keys (BTreeMap
    /// order), no insignificant whitespace, `{:?}` float rendering
    /// (shortest roundtrip), fingerprint as a hex string (u64 exceeds
    /// JSON's exact integer range).
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"fingerprint\":\"{:#018x}\",\"fns\":{{",
            self.fingerprint
        ));
        for (i, (name, fc)) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"bound_j\":{{\"lower\":{:?},\"upper\":{:?}}},\"monotone\":{{",
                json_str(name),
                fc.bound.lower.as_joules(),
                fc.bound.upper.as_joules()
            ));
            for (j, (var, m)) in fc.monotone.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:\"{m}\"", json_str(var)));
            }
            out.push_str("}}");
        }
        out.push_str(&format!("}},\"interface\":{}}}", json_str(&self.interface)));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Certifies every certifiable function of `iface`.
///
/// A function is certified when it has a declared [`InputSpec`] (analysis
/// failure is then an error — a provider declaring a domain promises the
/// function is analyzable over it), or when it takes no parameters and
/// its abstract result is an energy (failures skip it quietly: helper
/// functions are not certificate material).
pub fn certify(iface: &Interface, cal: &Calibration) -> Result<Certificate> {
    let mut fns = BTreeMap::new();
    for (name, f) in iface.fns.iter() {
        if let Some(spec) = iface.input_specs.get(name) {
            fns.insert(name.clone(), certify_fn(iface, name, spec, cal)?);
        } else if f.params.is_empty() {
            let empty = InputSpec::new();
            if let Ok(fc) = certify_fn(iface, name, &empty, cal) {
                fns.insert(name.clone(), fc);
            }
        }
    }
    Ok(Certificate {
        interface: iface.name.clone(),
        fingerprint: fingerprint_interface(iface),
        fns,
    })
}

/// Certifies one function over `spec`: a finite guaranteed energy bound
/// plus monotonicity verdicts for every scalar parameter and numeric ECV.
pub fn certify_fn(
    iface: &Interface,
    func: &str,
    spec: &InputSpec,
    cal: &Calibration,
) -> Result<FnCertificate> {
    let bound = worst_case(iface, func, spec, cal)?;
    if !bound.lower.as_joules().is_finite() || !bound.upper.as_joules().is_finite() {
        return Err(Error::Analysis {
            msg: format!("certified bound for `{func}` is not finite"),
        });
    }
    let f = iface.get_fn(func)?;
    let mut monotone = BTreeMap::new();
    for (idx, p) in f.params.iter().enumerate() {
        if spec.get(p).is_some() {
            monotone.insert(
                p.clone(),
                monotone_in(iface, func, spec, Target::Param(idx)),
            );
        }
    }
    for (name, decl) in iface.ecvs.iter() {
        if !matches!(decl.dist, DistSpec::Bernoulli { .. }) {
            monotone.insert(
                format!("ecv({name})"),
                monotone_in(iface, func, spec, Target::Ecv(name)),
            );
        }
    }
    Ok(FnCertificate { bound, monotone })
}

/// The variable a directional analysis differentiates against.
#[derive(Clone, Copy)]
enum Target<'a> {
    /// Parameter by position.
    Param(usize),
    /// Numeric ECV by name.
    Ecv(&'a str),
}

/// Computes the monotonicity of `func` in `target`; any analysis failure
/// degrades to [`Monotonicity::Unknown`] (never unsound, never an error).
fn monotone_in(
    iface: &Interface,
    func: &str,
    spec: &InputSpec,
    target: Target<'_>,
) -> Monotonicity {
    let Ok(args) = abstract_inputs(iface, func, spec) else {
        return Monotonicity::Unknown;
    };
    let dargs: Vec<DVal> = args
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            let dir = match target {
                Target::Param(t) if t == i => Dir::Up,
                _ => Dir::Zero,
            };
            DVal { val: v, dir }
        })
        .collect();
    let ecv_target = match target {
        Target::Ecv(name) => Some(name),
        Target::Param(_) => None,
    };
    let mut ev = DirEval {
        iface,
        ecv_target,
        depth: 0,
    };
    match ev.call(func, dargs) {
        Ok(dv) => match dv.dir {
            Dir::Zero => Monotonicity::Constant,
            Dir::Up => Monotonicity::NonDecreasing,
            Dir::Down => Monotonicity::NonIncreasing,
            Dir::Unknown => Monotonicity::Unknown,
        },
        Err(_) => Monotonicity::Unknown,
    }
}

// ---------------------------------------------------------------------------
// Directional abstract interpretation
// ---------------------------------------------------------------------------

/// Direction of dependence on the target variable. `Zero` means provably
/// constant in the target; `Up`/`Down` mean provably non-decreasing /
/// non-increasing; `Unknown` is the sound top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Zero,
    Up,
    Down,
    Unknown,
}

impl Dir {
    fn flip(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
            d => d,
        }
    }

    /// Lattice join (also the rule for sums: a non-decreasing plus a
    /// constant is non-decreasing; a non-decreasing plus a non-increasing
    /// is unknown).
    fn join(self, o: Dir) -> Dir {
        match (self, o) {
            (Dir::Zero, d) | (d, Dir::Zero) => d,
            (a, b) if a == b => a,
            _ => Dir::Unknown,
        }
    }
}

/// Sign of an abstract value over its whole interval(s).
#[derive(Clone, Copy, PartialEq)]
enum Sign {
    NonNeg,
    NonPos,
    Mixed,
}

fn sign_of(v: &AbsValue) -> Sign {
    fn iv_sign(i: &Interval) -> Sign {
        if i.lo >= 0.0 {
            Sign::NonNeg
        } else if i.hi <= 0.0 {
            Sign::NonPos
        } else {
            Sign::Mixed
        }
    }
    match v {
        AbsValue::Num(i) => iv_sign(i),
        AbsValue::Energy(e) => {
            let mut s = iv_sign(&e.joules);
            for a in e.abstracts.values() {
                let t = iv_sign(a);
                if t != s {
                    s = Sign::Mixed;
                }
            }
            s
        }
        _ => Sign::Mixed,
    }
}

/// Direction of `k * x` where `k` is constant in the target: the sign of
/// the constant factor orients the other factor's direction.
fn scale_dir(k: Sign, dx: Dir) -> Dir {
    match (k, dx) {
        (_, Dir::Zero) => Dir::Zero,
        (Sign::NonNeg, d) => d,
        (Sign::NonPos, d) => d.flip(),
        (Sign::Mixed, _) => Dir::Unknown,
    }
}

/// Direction of a product from operand signs and directions.
fn mul_dir(sa: Sign, da: Dir, sb: Sign, db: Dir) -> Dir {
    match (da, db) {
        (Dir::Zero, _) => scale_dir(sa, db),
        (_, Dir::Zero) => scale_dir(sb, da),
        (Dir::Unknown, _) | (_, Dir::Unknown) => Dir::Unknown,
        // Both factors move with the target and neither is constant:
        // provable only when both keep a sign.
        (a, b) if a == b => match (sa, sb) {
            // d(ab) = a'b + ab': non-negative factors moving the same way
            // move the product the same way; non-positive factors invert.
            (Sign::NonNeg, Sign::NonNeg) => a,
            (Sign::NonPos, Sign::NonPos) => a.flip(),
            _ => Dir::Unknown,
        },
        _ => Dir::Unknown,
    }
}

/// A directional abstract value: the interval abstraction plus the
/// direction of its dependence on the target.
#[derive(Clone)]
struct DVal {
    val: AbsValue,
    dir: Dir,
}

impl DVal {
    fn of(val: AbsValue) -> DVal {
        DVal {
            val,
            dir: Dir::Zero,
        }
    }

    fn join(&self, o: &DVal) -> Result<DVal> {
        Ok(DVal {
            val: self.val.join(&o.val)?,
            dir: self.dir.join(o.dir),
        })
    }
}

struct DirFlow {
    returned: Option<DVal>,
    falls_through: bool,
}

/// Mirrors [`crate::analysis::interval`]'s abstract evaluator on the
/// paired (interval, direction) domain. Interval transfer defers to the
/// shared `abs_binary`/`abs_builtin` kernels, so values here are always
/// identical to the plain analysis; only directions are new.
struct DirEval<'a> {
    iface: &'a Interface,
    ecv_target: Option<&'a str>,
    depth: usize,
}

type DLocals = BTreeMap<String, DVal>;

impl<'a> DirEval<'a> {
    fn call(&mut self, name: &str, args: Vec<DVal>) -> Result<DVal> {
        if self.depth > 64 {
            return Err(Error::Analysis {
                msg: "abstract call depth exceeded (recursive interface?)".into(),
            });
        }
        let f = if let Some(f) = self.iface.fns.get(name) {
            f
        } else if self.iface.externs.contains_key(name) {
            return Err(Error::Link {
                msg: format!("extern `{name}` must be linked before analysis"),
            });
        } else {
            return Err(Error::Unresolved {
                kind: NameKind::Function,
                name: name.to_string(),
            });
        };
        if f.params.len() != args.len() {
            return Err(Error::Arity {
                func: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let mut locals: DLocals = f.params.iter().cloned().zip(args).collect();
        self.depth += 1;
        let flow = self.block(&f.body, &mut locals);
        self.depth -= 1;
        let flow = flow?;
        match flow.returned {
            Some(v) if !flow.falls_through => Ok(v),
            Some(_) | None => Err(Error::Analysis {
                msg: format!("function `{name}` may fall off the end under abstract evaluation"),
            }),
        }
    }

    fn block(&mut self, stmts: &[Stmt], locals: &mut DLocals) -> Result<DirFlow> {
        let mut returned: Option<DVal> = None;
        for s in stmts {
            match s {
                Stmt::Let(name, e) => {
                    let v = self.expr(e, locals)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::Assign(name, e) => {
                    if !locals.contains_key(name) {
                        return Err(Error::Unresolved {
                            kind: NameKind::Variable,
                            name: name.clone(),
                        });
                    }
                    let v = self.expr(e, locals)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::If(c, t, els) => {
                    let cond = self.expr(c, locals)?;
                    match cond.val.as_bool()? {
                        AbsBool::True => {
                            let f = self.block(t, locals)?;
                            returned = join_opt(returned, f.returned)?;
                            if !f.falls_through {
                                return Ok(DirFlow {
                                    returned,
                                    falls_through: false,
                                });
                            }
                        }
                        AbsBool::False => {
                            let f = self.block(els, locals)?;
                            returned = join_opt(returned, f.returned)?;
                            if !f.falls_through {
                                return Ok(DirFlow {
                                    returned,
                                    falls_through: false,
                                });
                            }
                        }
                        AbsBool::Unknown => {
                            // When the branch choice itself depends on the
                            // target, the selected piece changes as the
                            // target moves: every join is poisoned.
                            let poison = cond.dir != Dir::Zero;
                            let mut then_locals = locals.clone();
                            let ft = self.block(t, &mut then_locals)?;
                            let mut else_locals = locals.clone();
                            let fe = self.block(els, &mut else_locals)?;
                            returned = join_opt(returned, poison_opt(ft.returned, poison))?;
                            returned = join_opt(returned, poison_opt(fe.returned, poison))?;
                            match (ft.falls_through, fe.falls_through) {
                                (false, false) => {
                                    return Ok(DirFlow {
                                        returned,
                                        falls_through: false,
                                    })
                                }
                                (true, false) => *locals = then_locals,
                                (false, true) => *locals = else_locals,
                                (true, true) => {
                                    *locals = join_locals(&then_locals, &else_locals, poison)?;
                                }
                            }
                        }
                    }
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let fl = self.for_loop(var, from, to, body, locals)?;
                    returned = join_opt(returned, fl.returned)?;
                    if !fl.falls_through {
                        return Ok(DirFlow {
                            returned,
                            falls_through: false,
                        });
                    }
                }
                Stmt::While { cond, bound, body } => {
                    let mut exit: Option<DLocals> = None;
                    let mut terminated = false;
                    let mut poison = false;
                    for _ in 0..=*bound {
                        let c = self.expr(cond, locals)?;
                        poison |= c.dir != Dir::Zero;
                        match c.val.as_bool()? {
                            AbsBool::False => {
                                exit = Some(match exit {
                                    None => locals.clone(),
                                    Some(e) => join_locals(&e, locals, false)?,
                                });
                                terminated = true;
                                break;
                            }
                            AbsBool::Unknown => {
                                exit = Some(match exit {
                                    None => locals.clone(),
                                    Some(e) => join_locals(&e, locals, false)?,
                                });
                            }
                            AbsBool::True => {}
                        }
                        let f = self.block(body, locals)?;
                        returned = join_opt(returned, poison_opt(f.returned, poison))?;
                        if !f.falls_through {
                            terminated = true;
                            break;
                        }
                    }
                    if !terminated {
                        let c = self.expr(cond, locals)?;
                        poison |= c.dir != Dir::Zero;
                        match c.val.as_bool()? {
                            AbsBool::False => {
                                exit = Some(match exit {
                                    None => locals.clone(),
                                    Some(e) => join_locals(&e, locals, false)?,
                                });
                            }
                            _ => {
                                return Err(Error::Analysis {
                                    msg: format!(
                                        "while loop may exceed its declared bound {bound}"
                                    ),
                                })
                            }
                        }
                    }
                    if let Some(mut e) = exit {
                        if poison {
                            // The number of iterations taken depends on
                            // the target: nothing the loop writes keeps a
                            // provable direction.
                            for v in e.values_mut() {
                                v.dir = Dir::Unknown;
                            }
                        }
                        *locals = e;
                    }
                }
                Stmt::Return(e) => {
                    let v = self.expr(e, locals)?;
                    returned = join_opt(returned, Some(v))?;
                    return Ok(DirFlow {
                        returned,
                        falls_through: false,
                    });
                }
            }
        }
        Ok(DirFlow {
            returned,
            falls_through: true,
        })
    }

    /// A `for` loop. Target-independent bounds mirror the plain unroll
    /// with direction tracking. Target-dependent bounds certify only the
    /// accumulator pattern (`x = x + e` with single-signed `e`): if every
    /// iteration adds a non-negative amount, more iterations mean more —
    /// the trip count's direction transfers onto the accumulator.
    fn for_loop(
        &mut self,
        var: &str,
        from: &Expr,
        to: &Expr,
        body: &[Stmt],
        locals: &mut DLocals,
    ) -> Result<DirFlow> {
        let from_v = self.expr(from, locals)?;
        let to_v = self.expr(to, locals)?;
        let from_i = from_v.val.as_num()?;
        let to_i = to_v.val.as_num()?;
        let trip_dir = to_v.dir.join(from_v.dir.flip());
        let dependent = from_v.dir != Dir::Zero || to_v.dir != Dir::Zero;

        // The accumulator pattern is decided before the unroll so every
        // iteration can be checked against it.
        let accum = if dependent {
            accumulator_targets(body)
        } else {
            None
        };

        let max_trips = (to_i.hi - from_i.lo).ceil().max(0.0);
        if max_trips > MAX_ABSTRACT_TRIPS as f64 {
            return Err(Error::Analysis {
                msg: format!(
                    "for-loop may run {max_trips} times; exceeds abstract \
                     unroll limit {MAX_ABSTRACT_TRIPS}"
                ),
            });
        }
        let min_trips = (to_i.lo - from_i.hi).ceil().max(0.0) as u64;
        let max_trips = max_trips as u64;
        let mut returned: Option<DVal> = None;
        let mut exit: Option<DLocals> = None;
        // Join of every per-iteration increment direction, per target.
        let mut incr_dirs: BTreeMap<String, (Dir, Sign)> = BTreeMap::new();
        let mut pattern_holds = accum.is_some();

        for k in 0..=max_trips {
            if k >= min_trips {
                exit = Some(match exit {
                    None => locals.clone(),
                    Some(e) => join_locals(&e, locals, false)?,
                });
            }
            if k == max_trips {
                break;
            }
            let iter_var = Interval::new(
                from_i.lo + k as f64,
                (from_i.hi + k as f64).min(to_i.hi - 1.0),
            );
            locals.insert(
                var.to_string(),
                DVal {
                    val: AbsValue::Num(iter_var),
                    // With target-dependent bounds the value of the loop
                    // variable at "the same" iteration shifts with the
                    // target only via `from`, which the pattern requires
                    // to be target-independent — but stay conservative.
                    dir: if dependent { from_v.dir } else { Dir::Zero },
                },
            );
            if pattern_holds {
                if let Some(targets) = &accum {
                    for (name, e) in targets {
                        let inc = self.expr(e, locals)?;
                        let s = sign_of(&inc.val);
                        let entry = incr_dirs.entry(name.clone()).or_insert((Dir::Zero, s));
                        entry.0 = entry.0.join(inc.dir);
                        if s != entry.1 {
                            entry.1 = Sign::Mixed;
                        }
                    }
                }
            }
            let f = self.block(body, locals)?;
            if f.returned.is_some() {
                // The accumulator argument needs straight-line bodies.
                pattern_holds = false;
            }
            returned = join_opt(returned, poison_opt(f.returned, dependent))?;
            if !f.falls_through {
                if k < min_trips {
                    return Ok(DirFlow {
                        returned,
                        falls_through: false,
                    });
                }
                break;
            }
        }
        let mut out = exit.expect("at least one exit state");
        if dependent {
            for (name, v) in out.iter_mut() {
                if pattern_holds {
                    if let Some((inc_dir, inc_sign)) = incr_dirs.get(name) {
                        // x_final = x_entry + Σ increments: direction is
                        // the join of the entry direction, the increment
                        // directions, and the trip-count direction
                        // oriented by the increments' sign.
                        v.dir = v.dir.join(*inc_dir).join(scale_dir(*inc_sign, trip_dir));
                        continue;
                    }
                    if !accum.as_ref().is_some_and(|t| t.contains_key(name)) {
                        continue; // untouched by the loop body
                    }
                }
                v.dir = Dir::Unknown;
            }
        }
        *locals = out;
        Ok(DirFlow {
            returned,
            falls_through: true,
        })
    }

    fn expr(&mut self, e: &Expr, locals: &DLocals) -> Result<DVal> {
        match e {
            Expr::Num(n) => Ok(DVal::of(AbsValue::Num(Interval::point(*n)))),
            Expr::Bool(b) => Ok(DVal::of(AbsValue::Bool(AbsBool::from_bool(*b)))),
            Expr::Joules(_) | Expr::Unit(..) => {
                // Reuse the value kernel through a zero-ary fold: both are
                // leaves, so build directly.
                let v = match e {
                    Expr::Joules(j) => AbsValue::Energy(
                        crate::analysis::interval::AbsEnergy::from_joules(Interval::point(*j)),
                    ),
                    Expr::Unit(u, k) => {
                        AbsValue::Energy(crate::analysis::interval::AbsEnergy::from_unit(
                            u.clone(),
                            Interval::point(*k),
                        ))
                    }
                    _ => unreachable!(),
                };
                Ok(DVal::of(v))
            }
            Expr::Var(name) => locals.get(name).cloned().ok_or_else(|| Error::Unresolved {
                kind: NameKind::Variable,
                name: name.clone(),
            }),
            Expr::Field(base, name) => {
                let b = self.expr(base, locals)?;
                match &b.val {
                    AbsValue::Record(fields) => fields
                        .get(name)
                        .cloned()
                        .map(|val| DVal { val, dir: b.dir })
                        .ok_or_else(|| Error::Unresolved {
                            kind: NameKind::Field,
                            name: name.clone(),
                        }),
                    other => Err(Error::Type {
                        expected: "record",
                        got: abs_type_name_of(other),
                    }),
                }
            }
            Expr::Ecv(name) => {
                let decl = self.iface.ecvs.get(name).ok_or_else(|| Error::Unresolved {
                    kind: NameKind::Ecv,
                    name: name.clone(),
                })?;
                let dir = if self.ecv_target == Some(name.as_str()) {
                    Dir::Up
                } else {
                    Dir::Zero
                };
                Ok(DVal {
                    val: ecv_abs_value(&decl.dist),
                    dir,
                })
            }
            Expr::Unary(op, inner) => {
                let v = self.expr(inner, locals)?;
                match op {
                    UnOp::Neg => {
                        let val = abs_binary(
                            BinOp::Mul,
                            v.val.clone(),
                            AbsValue::Num(Interval::point(-1.0)),
                        )?;
                        Ok(DVal {
                            val,
                            dir: v.dir.flip(),
                        })
                    }
                    UnOp::Not => Ok(DVal {
                        val: AbsValue::Bool(v.val.as_bool()?.not()),
                        dir: bool_dir(v.dir),
                    }),
                }
            }
            Expr::Binary(op, a, b) => {
                let av = self.expr(a, locals)?;
                let bv = self.expr(b, locals)?;
                let val = abs_binary(*op, av.val.clone(), bv.val.clone())?;
                let dir = match op {
                    BinOp::Add => av.dir.join(bv.dir),
                    BinOp::Sub => av.dir.join(bv.dir.flip()),
                    BinOp::Mul => mul_dir(sign_of(&av.val), av.dir, sign_of(&bv.val), bv.dir),
                    // a / b = a * (1/b); d(1/b) flips b's direction and
                    // 1/b keeps b's sign (b is bounded away from zero or
                    // the value kernel has already errored).
                    BinOp::Div => {
                        mul_dir(sign_of(&av.val), av.dir, sign_of(&bv.val), bv.dir.flip())
                    }
                    _ => bool_dir(av.dir.join(bv.dir)),
                };
                Ok(DVal { val, dir })
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals)?);
                }
                if self.iface.fns.contains_key(name) || self.iface.externs.contains_key(name) {
                    self.call(name, vals)
                } else if let Some(b) = Builtin::from_name(name) {
                    self.builtin(b, vals)
                } else {
                    Err(Error::Unresolved {
                        kind: NameKind::Function,
                        name: name.clone(),
                    })
                }
            }
            Expr::BuiltinCall(b, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals)?);
                }
                self.builtin(*b, vals)
            }
            Expr::IfExpr(c, t, f) => {
                let cond = self.expr(c, locals)?;
                match cond.val.as_bool()? {
                    AbsBool::True => self.expr(t, locals),
                    AbsBool::False => self.expr(f, locals),
                    AbsBool::Unknown => {
                        let tv = self.expr(t, locals)?;
                        let fv = self.expr(f, locals)?;
                        let mut j = tv.join(&fv)?;
                        if cond.dir != Dir::Zero {
                            j.dir = Dir::Unknown;
                        }
                        Ok(j)
                    }
                }
            }
        }
    }

    fn builtin(&mut self, b: Builtin, args: Vec<DVal>) -> Result<DVal> {
        let vals: Vec<AbsValue> = args.iter().map(|a| a.val.clone()).collect();
        let val = abs_builtin(b, &vals)?;
        let dir = match b {
            // Monotone non-decreasing in every argument.
            Builtin::Min | Builtin::Max => args.iter().fold(Dir::Zero, |d, a| d.join(a.dir)),
            Builtin::Sqrt
            | Builtin::Exp
            | Builtin::Ln
            | Builtin::Log2
            | Builtin::Floor
            | Builtin::Ceil
            | Builtin::Round
            | Builtin::Joules => args[0].dir,
            Builtin::Abs => match sign_of(&args[0].val) {
                Sign::NonNeg => args[0].dir,
                Sign::NonPos => args[0].dir.flip(),
                Sign::Mixed => {
                    if args[0].dir == Dir::Zero {
                        Dir::Zero
                    } else {
                        Dir::Unknown
                    }
                }
            },
            Builtin::Pow => {
                let base = &args[0];
                let exp = &args[1];
                match (&exp.val, exp.dir) {
                    (AbsValue::Num(e), Dir::Zero)
                        if e.is_point() && sign_of(&base.val) == Sign::NonNeg =>
                    {
                        if e.lo >= 0.0 {
                            base.dir
                        } else {
                            base.dir.flip()
                        }
                    }
                    _ => {
                        if base.dir == Dir::Zero && exp.dir == Dir::Zero {
                            Dir::Zero
                        } else {
                            Dir::Unknown
                        }
                    }
                }
            }
            Builtin::Clamp => {
                if args[1].dir == Dir::Zero && args[2].dir == Dir::Zero {
                    args[0].dir
                } else if args.iter().all(|a| a.dir == Dir::Zero) {
                    Dir::Zero
                } else {
                    Dir::Unknown
                }
            }
        };
        Ok(DVal { val, dir })
    }
}

/// Booleans only carry a dependence bit: any target dependence is
/// `Unknown` (orderings on booleans are not certificate material).
fn bool_dir(d: Dir) -> Dir {
    if d == Dir::Zero {
        Dir::Zero
    } else {
        Dir::Unknown
    }
}

/// Matches a straight-line accumulator body: every statement has the
/// shape `x = x + e` or `x = e + x`. Returns the accumulated expression
/// per target, or `None` when any statement breaks the pattern (two
/// assignments to one target also break it).
fn accumulator_targets(body: &[Stmt]) -> Option<BTreeMap<String, &Expr>> {
    let mut out = BTreeMap::new();
    for s in body {
        let Stmt::Assign(name, e) = s else {
            return None;
        };
        let Expr::Binary(BinOp::Add, a, b) = e else {
            return None;
        };
        let inc = match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), inc) if v == name => inc,
            (inc, Expr::Var(v)) if v == name => inc,
            _ => return None,
        };
        if out.insert(name.clone(), inc).is_some() {
            return None;
        }
    }
    Some(out)
}

fn join_opt(a: Option<DVal>, b: Option<DVal>) -> Result<Option<DVal>> {
    Ok(match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(a.join(&b)?),
    })
}

fn poison_opt(v: Option<DVal>, poison: bool) -> Option<DVal> {
    v.map(|mut v| {
        if poison {
            v.dir = Dir::Unknown;
        }
        v
    })
}

/// Joins two local environments. Variables on only one path are dropped
/// (a later use fails the analysis, which is sound). `poison` marks the
/// join as target-dependent: any variable the two paths disagree on gets
/// an `Unknown` direction.
fn join_locals(a: &DLocals, b: &DLocals, poison: bool) -> Result<DLocals> {
    let mut out = BTreeMap::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            let mut j = va.join(vb)?;
            if poison && !(va.val == vb.val && va.dir == vb.dir) {
                j.dir = Dir::Unknown;
            }
            out.insert(k.clone(), j);
        }
    }
    Ok(out)
}

fn abs_type_name_of(v: &AbsValue) -> String {
    match v {
        AbsValue::Num(_) => "number",
        AbsValue::Bool(_) => "boolean",
        AbsValue::Energy(_) => "energy",
        AbsValue::Record(_) => "record",
    }
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{evaluate_energy, EvalConfig};
    use crate::parser::parse;
    use crate::value::Value;

    fn svc() -> Interface {
        let mut i = parse(
            r#"interface svc {
                ecv load: uniform(0.25, 1.0);
                ecv hit: bernoulli(0.5);
                fn handle(n) {
                    let e = 5 mJ;
                    for i in 0..n { e = e + 2 mJ; }
                    if ecv(hit) { return e * ecv(load); }
                    return e;
                }
                fn discount(n) { return 100 mJ - 1 mJ * n; }
                fn idle() { return 3 mJ; }
            }"#,
        )
        .unwrap();
        i.set_input_spec("handle", InputSpec::new().range("n", 0.0, 16.0));
        i.set_input_spec("discount", InputSpec::new().range("n", 0.0, 10.0));
        i
    }

    #[test]
    fn bounds_and_monotonicity_certify_the_service() {
        let cert = certify(&svc(), &Calibration::empty()).unwrap();
        assert_eq!(cert.interface, "svc");
        let handle = &cert.fns["handle"];
        // e ranges over [5, 37] mJ; the hit branch scales by [0.25, 1].
        assert!((handle.bound.lower.as_joules() - 0.00125).abs() < 1e-12);
        assert!((handle.bound.upper.as_joules() - 0.037).abs() < 1e-12);
        assert_eq!(handle.monotone["n"], Monotonicity::NonDecreasing);
        // Constant on the miss branch, non-decreasing on the hit branch;
        // the branch condition is load-independent, so the join holds.
        assert_eq!(handle.monotone["ecv(load)"], Monotonicity::NonDecreasing);
        let discount = &cert.fns["discount"];
        assert_eq!(discount.monotone["n"], Monotonicity::NonIncreasing);
        assert_eq!(discount.monotone["ecv(load)"], Monotonicity::Constant);
        // Zero-parameter functions certify opportunistically.
        let idle = &cert.fns["idle"];
        assert!((idle.bound.lower.as_joules() - 0.003).abs() < 1e-12);
        assert!((idle.bound.upper.as_joules() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn certified_bounds_admit_every_sample() {
        let i = svc();
        let cert = certify(&i, &Calibration::empty()).unwrap();
        let handle = &cert.fns["handle"];
        let env = i.ecv_env();
        let cfg = EvalConfig::default();
        for k in 0u32..100 {
            let n = f64::from(k % 17);
            let e =
                evaluate_energy(&i, "handle", &[Value::Num(n)], &env, u64::from(k), &cfg).unwrap();
            assert!(
                handle.bound.admits(e),
                "sample {e} escapes certified bound [{}, {}]",
                handle.bound.lower,
                handle.bound.upper
            );
        }
    }

    #[test]
    fn monotone_ecv_scaling_is_certified() {
        let mut i = parse(
            r#"interface scaled {
                ecv load: uniform(0.5, 2.0);
                fn cost(n) { return 1 mJ * n * ecv(load); }
            }"#,
        )
        .unwrap();
        i.set_input_spec("cost", InputSpec::new().range("n", 0.0, 8.0));
        let cert = certify(&i, &Calibration::empty()).unwrap();
        let cost = &cert.fns["cost"];
        assert_eq!(cost.monotone["n"], Monotonicity::NonDecreasing);
        assert_eq!(cost.monotone["ecv(load)"], Monotonicity::NonDecreasing);
    }

    #[test]
    fn target_dependent_branches_stay_unknown() {
        let mut i = parse(
            r#"interface branchy {
                fn step(n) {
                    if n > 5 { return 1 mJ; }
                    return 10 mJ;
                }
            }"#,
        )
        .unwrap();
        i.set_input_spec("step", InputSpec::new().range("n", 0.0, 10.0));
        let cert = certify(&i, &Calibration::empty()).unwrap();
        // Actually non-increasing, but the piecewise analysis cannot
        // prove it; `Unknown` is the sound verdict.
        assert_eq!(cert.fns["step"].monotone["n"], Monotonicity::Unknown);
    }

    #[test]
    fn canonical_json_is_stable_and_fingerprinted() {
        let i = svc();
        let a = certify(&i, &Calibration::empty()).unwrap();
        let b = certify(&i, &Calibration::empty()).unwrap();
        assert_eq!(a, b);
        let json = a.to_canonical_json();
        assert_eq!(json, b.to_canonical_json());
        assert!(json.starts_with("{\"fingerprint\":\"0x"));
        assert!(json.contains("\"interface\":\"svc\""));
        assert!(json.contains("\"handle\":{\"bound_j\":{\"lower\":0.00125,"));
        assert!(json.contains("\"n\":\"non_decreasing\""));
        assert!(!json.contains(' '), "canonical JSON has no whitespace");
        // A changed interface changes the fingerprint — input specs are
        // part of the certified identity.
        let mut other = svc();
        other.set_input_spec("idle", InputSpec::new());
        let c = certify(&other, &Calibration::empty()).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn declared_spec_failures_are_loud() {
        let mut i = parse(
            r#"interface bad {
                fn divide(n) { return 1 mJ / n; }
            }"#,
        )
        .unwrap();
        i.set_input_spec("divide", InputSpec::new().range("n", -1.0, 1.0));
        assert!(certify(&i, &Calibration::empty()).is_err());
    }
}
