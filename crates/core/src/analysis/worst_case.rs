//! Worst-case energy bounds.
//!
//! §4.1: during the interface→implementation workflow "a module's energy
//! interface provides upper-bound requirements on energy consumption". This
//! module computes a sound upper (and lower) bound on the energy an
//! interface can report over a declared input space, via the interval
//! abstract interpreter.

use crate::analysis::interval::{abstract_eval, abstract_inputs, AbsValue, Interval};
use crate::error::{Error, Result};
use crate::interface::{InputSpec, Interface};
use crate::units::{Calibration, Energy};

/// A sound bound on the energy of one interface function.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct EnergyBound {
    /// No execution consumes less than this.
    pub lower: Energy,
    /// No execution consumes more than this.
    pub upper: Energy,
}

impl EnergyBound {
    /// Width of the bound.
    pub fn width(&self) -> Energy {
        self.upper - self.lower
    }

    /// True when the bound admits `e`.
    pub fn admits(&self, e: Energy) -> bool {
        e >= self.lower && e <= self.upper
    }
}

/// Computes a sound energy bound for `iface.func` over `spec`'s input space.
///
/// ECVs range over their declared distributions; abstract units are reduced
/// to Joules via `cal`.
pub fn worst_case(
    iface: &Interface,
    func: &str,
    spec: &InputSpec,
    cal: &Calibration,
) -> Result<EnergyBound> {
    let args = abstract_inputs(iface, func, spec)?;
    worst_case_with_args(iface, func, &args, cal)
}

/// Like [`worst_case`], with explicitly constructed abstract arguments.
pub fn worst_case_with_args(
    iface: &Interface,
    func: &str,
    args: &[AbsValue],
    cal: &Calibration,
) -> Result<EnergyBound> {
    let out = abstract_eval(iface, func, args)?;
    let e = out.as_energy()?;
    Ok(EnergyBound {
        lower: e.lower_bound(cal)?,
        upper: e.upper_bound(cal)?,
    })
}

/// Computes the worst-case energy for a single concrete numeric input.
///
/// Convenience for sweep-style checks: every parameter is a scalar point.
pub fn worst_case_at(
    iface: &Interface,
    func: &str,
    point: &[f64],
    cal: &Calibration,
) -> Result<EnergyBound> {
    let args: Vec<AbsValue> = point
        .iter()
        .map(|v| AbsValue::Num(Interval::point(*v)))
        .collect();
    worst_case_with_args(iface, func, &args, cal)
}

/// Verifies that `impl_iface.func` stays within `budget` over `spec`.
///
/// Returns the computed bound on success; errors with
/// [`Error::Incompatible`] when the worst case exceeds the budget.
pub fn check_budget(
    impl_iface: &Interface,
    func: &str,
    spec: &InputSpec,
    cal: &Calibration,
    budget: Energy,
) -> Result<EnergyBound> {
    let bound = worst_case(impl_iface, func, spec, cal)?;
    if bound.upper > budget {
        return Err(Error::Incompatible {
            msg: format!(
                "worst-case energy {} of `{func}` exceeds budget {}",
                bound.upper, budget
            ),
        });
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::interp::{evaluate_energy, EvalConfig};
    use crate::parser::parse;
    use crate::value::Value;

    fn iface() -> Interface {
        parse(
            r#"interface svc {
                ecv hit: bernoulli(0.5);
                fn handle(n) {
                    let base = 10 mJ;
                    if ecv(hit) { return base; }
                    else { return base + 2 mJ * n; }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn bound_covers_both_branches_and_input_range() {
        let spec = InputSpec::new().range("n", 0.0, 100.0);
        let b = worst_case(&iface(), "handle", &spec, &Calibration::empty()).unwrap();
        assert!((b.lower.as_joules() - 0.010).abs() < 1e-12);
        assert!((b.upper.as_joules() - 0.210).abs() < 1e-12);
        assert!((b.width().as_joules() - 0.2).abs() < 1e-12);
        assert!(b.admits(Energy::millijoules(50.0)));
        assert!(!b.admits(Energy::millijoules(211.0)));
    }

    #[test]
    fn bound_is_sound_against_sampling() {
        // Every concrete execution must land inside the bound.
        let i = iface();
        let spec = InputSpec::new().range("n", 0.0, 100.0);
        let b = worst_case(&i, "handle", &spec, &Calibration::empty()).unwrap();
        let env = i.ecv_env();
        let cfg = EvalConfig::default();
        for k in 0..200 {
            let n = (k as f64) / 2.0;
            let e = evaluate_energy(&i, "handle", &[Value::Num(n)], &env, k, &cfg).unwrap();
            assert!(
                b.admits(e),
                "sample {e} outside bound [{}, {}]",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn worst_case_at_point() {
        let b = worst_case_at(&iface(), "handle", &[50.0], &Calibration::empty()).unwrap();
        assert!((b.upper.as_joules() - 0.110).abs() < 1e-12);
        assert!((b.lower.as_joules() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn budget_check() {
        let spec = InputSpec::new().range("n", 0.0, 100.0);
        assert!(check_budget(
            &iface(),
            "handle",
            &spec,
            &Calibration::empty(),
            Energy::millijoules(250.0)
        )
        .is_ok());
        assert!(matches!(
            check_budget(
                &iface(),
                "handle",
                &spec,
                &Calibration::empty(),
                Energy::millijoules(100.0)
            ),
            Err(Error::Incompatible { .. })
        ));
    }

    #[test]
    fn loops_bound_scales_with_input() {
        let i = parse(
            r#"interface s {
                fn f(n) {
                    let acc = 0 J;
                    for t in 0..n { acc = acc + 1 mJ; }
                    return acc;
                }
            }"#,
        )
        .unwrap();
        let spec = InputSpec::new().range("n", 10.0, 20.0);
        let b = worst_case(&i, "f", &spec, &Calibration::empty()).unwrap();
        assert!((b.lower.as_joules() - 0.010).abs() < 1e-12);
        assert!((b.upper.as_joules() - 0.020).abs() < 1e-12);
    }
}
