//! Interval abstract interpretation of EIL.
//!
//! §4.1: "the interface's return value represents the worst-case energy
//! consumption for all module executions that correspond to that path", and
//! a toolchain must verify "that indeed the code written thus far satisfies
//! the worst-case energy interface". This module provides the sound
//! over-approximation that backs those checks: every value becomes an
//! interval (numbers, energy components) or a three-valued boolean, inputs
//! range over their declared [`crate::interface::InputSpec`]
//! ranges, and ECVs range over their distributions' supports.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Builtin, Expr, Stmt, UnOp};
use crate::ecv::DistSpec;
use crate::error::{Error, NameKind, Result};
use crate::interface::{InputSpec, Interface};
use crate::units::{Calibration, Energy};

/// Maximum trip count an abstract loop may be unrolled to.
pub const MAX_ABSTRACT_TRIPS: u64 = 65_536;

/// A closed interval of reals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// A degenerate point interval.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// A general interval; callers must keep `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// True when the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Smallest interval containing both operands.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval sum.
    pub fn add(&self, o: &Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    /// Interval difference.
    pub fn sub(&self, o: &Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo)
    }

    /// Interval product (min/max of the four corner products).
    pub fn mul(&self, o: &Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval::new(
            c.iter().cloned().fold(f64::INFINITY, f64::min),
            c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Interval quotient; errors when the divisor may be zero.
    ///
    /// The endpoints are computed with *direct* divisions, not as
    /// `x · (1/y)`: f64 division is correctly rounded and monotone in
    /// both operands, so the endpoint quotients genuinely bracket every
    /// representable `x / y` — in particular, a point ÷ point interval is
    /// exactly the concrete quotient, which the bound certifier relies on
    /// (the double rounding of multiply-by-reciprocal can put the true
    /// quotient a ulp outside the product).
    pub fn div(&self, o: &Interval) -> Result<Interval> {
        if o.contains(0.0) {
            return Err(Error::Analysis {
                msg: "possible division by zero under worst-case analysis".into(),
            });
        }
        let c = [
            self.lo / o.lo,
            self.lo / o.hi,
            self.hi / o.lo,
            self.hi / o.hi,
        ];
        Ok(Interval::new(
            c.iter().cloned().fold(f64::INFINITY, f64::min),
            c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ))
    }

    /// Applies a monotone non-decreasing function to both ends.
    ///
    /// **Soundness caveat:** the image of an interval under a
    /// *non-monotone* function is not bracketed by its endpoint images —
    /// `x²` over `[-1, 2]` is `[0, 4]`, not `[1, 4]`. Callers must either
    /// prove monotonicity over the whole interval (e.g. by pre-clamping
    /// the domain) or use an exact range evaluator such as [`powi`] or
    /// [`map_quadratic`].
    ///
    /// [`powi`]: Interval::powi
    /// [`map_quadratic`]: Interval::map_quadratic
    pub fn map_monotone(&self, f: impl Fn(f64) -> f64) -> Interval {
        Interval::new(f(self.lo), f(self.hi))
    }

    /// Exact range of `x^k` for a non-negative integer exponent, sound
    /// for intervals spanning zero (where even powers are non-monotone).
    pub fn powi(&self, k: u32) -> Interval {
        if k == 0 {
            return Interval::point(1.0);
        }
        let (plo, phi) = (self.lo.powi(k as i32), self.hi.powi(k as i32));
        if k % 2 == 1 || self.lo >= 0.0 {
            // Odd powers are monotone everywhere; even powers are
            // monotone non-decreasing on [0, inf).
            Interval::new(plo, phi)
        } else if self.hi <= 0.0 {
            // Even power, monotone non-increasing on (-inf, 0].
            Interval::new(phi, plo)
        } else {
            // Even power over an interval spanning zero: the vertex at 0
            // is the minimum.
            Interval::new(0.0, plo.max(phi))
        }
    }

    /// Exact range of the quadratic `c0 + c1·x + c2·x²` over the
    /// interval, including the vertex `-c1 / (2·c2)` when it falls
    /// inside — the case endpoint-only evaluation gets wrong (e.g. DVFS
    /// voltage-scaling polynomials swept across their minimum).
    pub fn map_quadratic(&self, c0: f64, c1: f64, c2: f64) -> Interval {
        let f = |x: f64| c0 + c1 * x + c2 * x * x;
        let (a, b) = (f(self.lo), f(self.hi));
        let mut lo = a.min(b);
        let mut hi = a.max(b);
        if c2 != 0.0 {
            let vertex = -c1 / (2.0 * c2);
            if vertex > self.lo && vertex < self.hi {
                let v = f(vertex);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        Interval::new(lo, hi)
    }
}

/// Three-valued abstract boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsBool {
    /// Definitely true on every concrete execution.
    True,
    /// Definitely false on every concrete execution.
    False,
    /// May be either.
    Unknown,
}

impl AbsBool {
    /// Lifts a concrete boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            AbsBool::True
        } else {
            AbsBool::False
        }
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            AbsBool::True => AbsBool::False,
            AbsBool::False => AbsBool::True,
            AbsBool::Unknown => AbsBool::Unknown,
        }
    }

    /// Logical conjunction.
    pub fn and(self, o: AbsBool) -> AbsBool {
        match (self, o) {
            (AbsBool::False, _) | (_, AbsBool::False) => AbsBool::False,
            (AbsBool::True, AbsBool::True) => AbsBool::True,
            _ => AbsBool::Unknown,
        }
    }

    /// Logical disjunction.
    pub fn or(self, o: AbsBool) -> AbsBool {
        match (self, o) {
            (AbsBool::True, _) | (_, AbsBool::True) => AbsBool::True,
            (AbsBool::False, AbsBool::False) => AbsBool::False,
            _ => AbsBool::Unknown,
        }
    }
}

/// An abstract energy vector: interval Joules plus interval abstract units.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsEnergy {
    /// Joule component interval.
    pub joules: Interval,
    /// Abstract-unit component intervals.
    pub abstracts: BTreeMap<String, Interval>,
}

impl AbsEnergy {
    /// The zero energy.
    pub fn zero() -> Self {
        AbsEnergy {
            joules: Interval::point(0.0),
            abstracts: BTreeMap::new(),
        }
    }

    /// A pure-Joule abstract energy.
    pub fn from_joules(i: Interval) -> Self {
        AbsEnergy {
            joules: i,
            abstracts: BTreeMap::new(),
        }
    }

    /// A single abstract-unit component.
    pub fn from_unit(u: impl Into<String>, i: Interval) -> Self {
        let mut abstracts = BTreeMap::new();
        abstracts.insert(u.into(), i);
        AbsEnergy {
            joules: Interval::point(0.0),
            abstracts,
        }
    }

    fn zip(&self, o: &AbsEnergy, f: impl Fn(&Interval, &Interval) -> Interval) -> AbsEnergy {
        let mut abstracts = BTreeMap::new();
        let zero = Interval::point(0.0);
        for k in self.abstracts.keys().chain(o.abstracts.keys()) {
            if abstracts.contains_key(k) {
                continue;
            }
            let a = self.abstracts.get(k).unwrap_or(&zero);
            let b = o.abstracts.get(k).unwrap_or(&zero);
            abstracts.insert(k.clone(), f(a, b));
        }
        AbsEnergy {
            joules: f(&self.joules, &o.joules),
            abstracts,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, o: &AbsEnergy) -> AbsEnergy {
        self.zip(o, |a, b| a.add(b))
    }

    /// Component-wise difference.
    pub fn sub(&self, o: &AbsEnergy) -> AbsEnergy {
        self.zip(o, |a, b| a.sub(b))
    }

    /// Component-wise join.
    pub fn join(&self, o: &AbsEnergy) -> AbsEnergy {
        self.zip(o, |a, b| a.join(b))
    }

    /// Divides every component by an interval divisor, with the same
    /// direct-quotient endpoints as [`Interval::div`].
    pub fn div_num(&self, k: &Interval) -> Result<AbsEnergy> {
        let joules = self.joules.div(k)?;
        let mut abstracts = BTreeMap::new();
        for (u, i) in &self.abstracts {
            abstracts.insert(u.clone(), i.div(k)?);
        }
        Ok(AbsEnergy { joules, abstracts })
    }

    /// Scales every component by an interval factor.
    pub fn scale(&self, k: &Interval) -> AbsEnergy {
        AbsEnergy {
            joules: self.joules.mul(k),
            abstracts: self
                .abstracts
                .iter()
                .map(|(u, i)| (u.clone(), i.mul(k)))
                .collect(),
        }
    }

    /// Worst-case (upper bound) concrete energy under a calibration.
    pub fn upper_bound(&self, cal: &Calibration) -> Result<Energy> {
        let mut hi = self.joules.hi;
        for (u, i) in &self.abstracts {
            if i.lo == 0.0 && i.hi == 0.0 {
                continue;
            }
            let e = cal
                .get(u)
                .ok_or_else(|| Error::Uncalibrated { unit: u.clone() })?;
            // Calibrations are non-negative energies per unit.
            hi += i.hi * e.as_joules();
        }
        Ok(Energy(hi))
    }

    /// Best-case (lower bound) concrete energy under a calibration.
    pub fn lower_bound(&self, cal: &Calibration) -> Result<Energy> {
        let mut lo = self.joules.lo;
        for (u, i) in &self.abstracts {
            if i.lo == 0.0 && i.hi == 0.0 {
                continue;
            }
            let e = cal
                .get(u)
                .ok_or_else(|| Error::Uncalibrated { unit: u.clone() })?;
            lo += i.lo * e.as_joules();
        }
        Ok(Energy(lo))
    }
}

/// An abstract value.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsValue {
    /// A numeric interval.
    Num(Interval),
    /// A three-valued boolean.
    Bool(AbsBool),
    /// An abstract energy vector.
    Energy(AbsEnergy),
    /// A record of abstract fields.
    Record(BTreeMap<String, AbsValue>),
}

impl AbsValue {
    /// Extracts a numeric interval, or errors.
    pub fn as_num(&self) -> Result<Interval> {
        match self {
            AbsValue::Num(i) => Ok(*i),
            other => Err(Error::Type {
                expected: "number",
                got: abs_type_name(other).into(),
            }),
        }
    }

    /// Extracts an abstract boolean, or errors.
    pub fn as_bool(&self) -> Result<AbsBool> {
        match self {
            AbsValue::Bool(b) => Ok(*b),
            other => Err(Error::Type {
                expected: "boolean",
                got: abs_type_name(other).into(),
            }),
        }
    }

    /// Extracts an abstract energy, or errors.
    pub fn as_energy(&self) -> Result<&AbsEnergy> {
        match self {
            AbsValue::Energy(e) => Ok(e),
            other => Err(Error::Type {
                expected: "energy",
                got: abs_type_name(other).into(),
            }),
        }
    }

    /// Smallest abstract value covering both operands.
    pub fn join(&self, other: &AbsValue) -> Result<AbsValue> {
        match (self, other) {
            (AbsValue::Num(a), AbsValue::Num(b)) => Ok(AbsValue::Num(a.join(b))),
            (AbsValue::Bool(a), AbsValue::Bool(b)) => {
                Ok(AbsValue::Bool(if a == b { *a } else { AbsBool::Unknown }))
            }
            (AbsValue::Energy(a), AbsValue::Energy(b)) => Ok(AbsValue::Energy(a.join(b))),
            (AbsValue::Record(a), AbsValue::Record(b)) if a.len() == b.len() => {
                let mut out = BTreeMap::new();
                for (k, va) in a {
                    let vb = b.get(k).ok_or_else(|| Error::Type {
                        expected: "records with matching fields",
                        got: format!("missing field `{k}`"),
                    })?;
                    out.insert(k.clone(), va.join(vb)?);
                }
                Ok(AbsValue::Record(out))
            }
            (a, b) => Err(Error::Type {
                expected: "joinable abstract values",
                got: format!("{} and {}", abs_type_name(a), abs_type_name(b)),
            }),
        }
    }
}

fn abs_type_name(v: &AbsValue) -> &'static str {
    match v {
        AbsValue::Num(_) => "number",
        AbsValue::Bool(_) => "boolean",
        AbsValue::Energy(_) => "energy",
        AbsValue::Record(_) => "record",
    }
}

/// The abstract range of one ECV, derived from its distribution.
pub fn ecv_abs_value(dist: &DistSpec) -> AbsValue {
    match dist {
        DistSpec::Bernoulli { p } => AbsValue::Bool(if *p == 0.0 {
            AbsBool::False
        } else if *p == 1.0 {
            AbsBool::True
        } else {
            AbsBool::Unknown
        }),
        DistSpec::Discrete { outcomes } => {
            let lo = outcomes
                .iter()
                .filter(|(_, p)| *p > 0.0)
                .map(|(v, _)| *v)
                .fold(f64::INFINITY, f64::min);
            let hi = outcomes
                .iter()
                .filter(|(_, p)| *p > 0.0)
                .map(|(v, _)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            AbsValue::Num(Interval::new(lo, hi))
        }
        DistSpec::Uniform { lo, hi } => AbsValue::Num(Interval::new(*lo, *hi)),
        DistSpec::Normal { mean, std_dev } => {
            AbsValue::Num(Interval::new(mean - 6.0 * std_dev, mean + 6.0 * std_dev))
        }
        DistSpec::Point { value } => AbsValue::Num(Interval::point(*value)),
    }
}

/// Builds the abstract input for `func` from its declared [`InputSpec`].
///
/// Paths of the form `param` become interval numbers; `param.field` paths
/// become record fields. Parameters without any declared range are rejected.
pub fn abstract_inputs(iface: &Interface, func: &str, spec: &InputSpec) -> Result<Vec<AbsValue>> {
    let f = iface.get_fn(func)?;
    let mut out = Vec::with_capacity(f.params.len());
    for p in &f.params {
        if let Some(r) = spec.get(p) {
            out.push(AbsValue::Num(Interval::new(r.lo, r.hi)));
            continue;
        }
        // Record-shaped parameter: gather `p.field` entries.
        let prefix = format!("{p}.");
        let mut fields = BTreeMap::new();
        for (path, r) in spec.iter() {
            if let Some(field) = path.strip_prefix(&prefix) {
                fields.insert(field.to_string(), AbsValue::Num(Interval::new(r.lo, r.hi)));
            }
        }
        if fields.is_empty() {
            return Err(Error::BadInput {
                msg: format!("no input range declared for parameter `{p}` of `{func}`"),
            });
        }
        out.push(AbsValue::Record(fields));
    }
    Ok(out)
}

/// Abstractly evaluates `iface.func(args)`.
///
/// ECVs take their distribution-derived abstract values; both branches of
/// unknown conditionals are joined; loops are unrolled up to
/// [`MAX_ABSTRACT_TRIPS`]. The result over-approximates every concrete
/// execution.
pub fn abstract_eval(iface: &Interface, func: &str, args: &[AbsValue]) -> Result<AbsValue> {
    let mut a = AbsEval { iface, depth: 0 };
    a.call(func, args.to_vec())
}

struct AbsEval<'a> {
    iface: &'a Interface,
    depth: usize,
}

/// Outcome of abstractly executing a block.
struct AbsFlow {
    /// Join of all values returned so far on paths that returned.
    returned: Option<AbsValue>,
    /// Whether some path falls through the block.
    falls_through: bool,
}

impl<'a> AbsEval<'a> {
    fn call(&mut self, name: &str, args: Vec<AbsValue>) -> Result<AbsValue> {
        if self.depth > 64 {
            return Err(Error::Analysis {
                msg: "abstract call depth exceeded (recursive interface?)".into(),
            });
        }
        let f = if let Some(f) = self.iface.fns.get(name) {
            f
        } else if self.iface.externs.contains_key(name) {
            return Err(Error::Link {
                msg: format!("extern `{name}` must be linked before analysis"),
            });
        } else {
            return Err(Error::Unresolved {
                kind: NameKind::Function,
                name: name.to_string(),
            });
        };
        if f.params.len() != args.len() {
            return Err(Error::Arity {
                func: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let mut locals: BTreeMap<String, AbsValue> = f.params.iter().cloned().zip(args).collect();
        self.depth += 1;
        let flow = self.block(&f.body, &mut locals);
        self.depth -= 1;
        let flow = flow?;
        match flow.returned {
            Some(v) if !flow.falls_through => Ok(v),
            Some(_) | None => Err(Error::Analysis {
                msg: format!("function `{name}` may fall off the end under abstract evaluation"),
            }),
        }
    }

    fn block(
        &mut self,
        stmts: &[Stmt],
        locals: &mut BTreeMap<String, AbsValue>,
    ) -> Result<AbsFlow> {
        let mut returned: Option<AbsValue> = None;
        for s in stmts {
            match s {
                Stmt::Let(name, e) => {
                    let v = self.expr(e, locals)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::Assign(name, e) => {
                    if !locals.contains_key(name) {
                        return Err(Error::Unresolved {
                            kind: NameKind::Variable,
                            name: name.clone(),
                        });
                    }
                    let v = self.expr(e, locals)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::If(c, t, els) => {
                    let cond = self.expr(c, locals)?.as_bool()?;
                    match cond {
                        AbsBool::True => {
                            let f = self.block(t, locals)?;
                            returned = join_opt(returned, f.returned)?;
                            if !f.falls_through {
                                return Ok(AbsFlow {
                                    returned,
                                    falls_through: false,
                                });
                            }
                        }
                        AbsBool::False => {
                            let f = self.block(els, locals)?;
                            returned = join_opt(returned, f.returned)?;
                            if !f.falls_through {
                                return Ok(AbsFlow {
                                    returned,
                                    falls_through: false,
                                });
                            }
                        }
                        AbsBool::Unknown => {
                            let mut then_locals = locals.clone();
                            let ft = self.block(t, &mut then_locals)?;
                            let mut else_locals = locals.clone();
                            let fe = self.block(els, &mut else_locals)?;
                            returned = join_opt(returned, ft.returned)?;
                            returned = join_opt(returned, fe.returned)?;
                            match (ft.falls_through, fe.falls_through) {
                                (false, false) => {
                                    return Ok(AbsFlow {
                                        returned,
                                        falls_through: false,
                                    })
                                }
                                (true, false) => *locals = then_locals,
                                (false, true) => *locals = else_locals,
                                (true, true) => {
                                    *locals = join_locals(&then_locals, &else_locals)?;
                                }
                            }
                        }
                    }
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let from_i = self.expr(from, locals)?.as_num()?;
                    let to_i = self.expr(to, locals)?.as_num()?;
                    let max_trips = (to_i.hi - from_i.lo).ceil().max(0.0);
                    if max_trips > MAX_ABSTRACT_TRIPS as f64 {
                        return Err(Error::Analysis {
                            msg: format!(
                                "for-loop may run {max_trips} times; exceeds abstract \
                                 unroll limit {MAX_ABSTRACT_TRIPS}"
                            ),
                        });
                    }
                    let min_trips = (to_i.lo - from_i.hi).ceil().max(0.0) as u64;
                    let max_trips = max_trips as u64;
                    let mut exit: Option<BTreeMap<String, AbsValue>> = None;
                    for k in 0..=max_trips {
                        if k >= min_trips {
                            exit = Some(match exit {
                                None => locals.clone(),
                                Some(e) => join_locals(&e, locals)?,
                            });
                        }
                        if k == max_trips {
                            break;
                        }
                        let iter_var = Interval::new(
                            from_i.lo + k as f64,
                            (from_i.hi + k as f64).min(to_i.hi - 1.0),
                        );
                        locals.insert(var.clone(), AbsValue::Num(iter_var));
                        let f = self.block(body, locals)?;
                        returned = join_opt(returned, f.returned)?;
                        if !f.falls_through {
                            if k < min_trips {
                                // The iteration definitely executes and every
                                // path through it returns: terminal.
                                return Ok(AbsFlow {
                                    returned,
                                    falls_through: false,
                                });
                            }
                            // The loop may also exit before this iteration;
                            // keep the joined exit states accumulated so far.
                            break;
                        }
                    }
                    *locals = exit.expect("at least one exit state");
                }
                Stmt::While { cond, bound, body } => {
                    let mut exit: Option<BTreeMap<String, AbsValue>> = None;
                    let mut terminated = false;
                    for _ in 0..=*bound {
                        match self.expr(cond, locals)?.as_bool()? {
                            AbsBool::False => {
                                exit = Some(match exit {
                                    None => locals.clone(),
                                    Some(e) => join_locals(&e, locals)?,
                                });
                                terminated = true;
                                break;
                            }
                            AbsBool::Unknown => {
                                exit = Some(match exit {
                                    None => locals.clone(),
                                    Some(e) => join_locals(&e, locals)?,
                                });
                            }
                            AbsBool::True => {}
                        }
                        let f = self.block(body, locals)?;
                        returned = join_opt(returned, f.returned)?;
                        if !f.falls_through {
                            terminated = true;
                            break;
                        }
                    }
                    if !terminated {
                        // After `bound` iterations the condition may still
                        // hold; the runtime would fault, so the worst case
                        // is unbounded from the analysis' perspective.
                        match self.expr(cond, locals)?.as_bool()? {
                            AbsBool::False => {
                                exit = Some(match exit {
                                    None => locals.clone(),
                                    Some(e) => join_locals(&e, locals)?,
                                });
                            }
                            _ => {
                                return Err(Error::Analysis {
                                    msg: format!(
                                        "while loop may exceed its declared bound {bound}"
                                    ),
                                })
                            }
                        }
                    }
                    if let Some(e) = exit {
                        *locals = e;
                    }
                }
                Stmt::Return(e) => {
                    let v = self.expr(e, locals)?;
                    returned = join_opt(returned, Some(v))?;
                    return Ok(AbsFlow {
                        returned,
                        falls_through: false,
                    });
                }
            }
        }
        Ok(AbsFlow {
            returned,
            falls_through: true,
        })
    }

    fn expr(&mut self, e: &Expr, locals: &BTreeMap<String, AbsValue>) -> Result<AbsValue> {
        match e {
            Expr::Num(n) => Ok(AbsValue::Num(Interval::point(*n))),
            Expr::Bool(b) => Ok(AbsValue::Bool(AbsBool::from_bool(*b))),
            Expr::Joules(j) => Ok(AbsValue::Energy(AbsEnergy::from_joules(Interval::point(
                *j,
            )))),
            Expr::Unit(u, k) => Ok(AbsValue::Energy(AbsEnergy::from_unit(
                u.clone(),
                Interval::point(*k),
            ))),
            Expr::Var(name) => locals.get(name).cloned().ok_or_else(|| Error::Unresolved {
                kind: NameKind::Variable,
                name: name.clone(),
            }),
            Expr::Field(base, name) => {
                let b = self.expr(base, locals)?;
                match b {
                    AbsValue::Record(fields) => {
                        fields.get(name).cloned().ok_or_else(|| Error::Unresolved {
                            kind: NameKind::Field,
                            name: name.clone(),
                        })
                    }
                    other => Err(Error::Type {
                        expected: "record",
                        got: abs_type_name(&other).into(),
                    }),
                }
            }
            Expr::Ecv(name) => {
                let decl = self.iface.ecvs.get(name).ok_or_else(|| Error::Unresolved {
                    kind: NameKind::Ecv,
                    name: name.clone(),
                })?;
                Ok(ecv_abs_value(&decl.dist))
            }
            Expr::Unary(op, inner) => {
                let v = self.expr(inner, locals)?;
                match op {
                    UnOp::Neg => match v {
                        AbsValue::Num(i) => Ok(AbsValue::Num(Interval::new(-i.hi, -i.lo))),
                        AbsValue::Energy(e) => {
                            Ok(AbsValue::Energy(e.scale(&Interval::point(-1.0))))
                        }
                        other => Err(Error::Type {
                            expected: "number or energy",
                            got: abs_type_name(&other).into(),
                        }),
                    },
                    UnOp::Not => Ok(AbsValue::Bool(v.as_bool()?.not())),
                }
            }
            Expr::Binary(op, a, b) => {
                let av = self.expr(a, locals)?;
                let bv = self.expr(b, locals)?;
                abs_binary(*op, av, bv)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals)?);
                }
                if self.iface.fns.contains_key(name) || self.iface.externs.contains_key(name) {
                    self.call(name, vals)
                } else if let Some(b) = Builtin::from_name(name) {
                    abs_builtin(b, &vals)
                } else {
                    Err(Error::Unresolved {
                        kind: NameKind::Function,
                        name: name.clone(),
                    })
                }
            }
            Expr::BuiltinCall(b, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals)?);
                }
                abs_builtin(*b, &vals)
            }
            Expr::IfExpr(c, t, f) => match self.expr(c, locals)?.as_bool()? {
                AbsBool::True => self.expr(t, locals),
                AbsBool::False => self.expr(f, locals),
                AbsBool::Unknown => {
                    let tv = self.expr(t, locals)?;
                    let fv = self.expr(f, locals)?;
                    tv.join(&fv)
                }
            },
        }
    }
}

fn join_opt(a: Option<AbsValue>, b: Option<AbsValue>) -> Result<Option<AbsValue>> {
    Ok(match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(a.join(&b)?),
    })
}

fn join_locals(
    a: &BTreeMap<String, AbsValue>,
    b: &BTreeMap<String, AbsValue>,
) -> Result<BTreeMap<String, AbsValue>> {
    // Variables defined on only one path are dropped; a later use of such a
    // variable fails the analysis, which is the sound response.
    let mut out = BTreeMap::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            out.insert(k.clone(), va.join(vb)?);
        }
    }
    Ok(out)
}

pub(crate) fn abs_binary(op: BinOp, a: AbsValue, b: AbsValue) -> Result<AbsValue> {
    use BinOp::*;
    match op {
        Add | Sub => match (a, b) {
            (AbsValue::Num(x), AbsValue::Num(y)) => {
                Ok(AbsValue::Num(if op == Add { x.add(&y) } else { x.sub(&y) }))
            }
            (AbsValue::Energy(x), AbsValue::Energy(y)) => Ok(AbsValue::Energy(if op == Add {
                x.add(&y)
            } else {
                x.sub(&y)
            })),
            (a, b) => Err(Error::Type {
                expected: "matching operand types for +/-",
                got: format!("{} and {}", abs_type_name(&a), abs_type_name(&b)),
            }),
        },
        Mul => match (a, b) {
            (AbsValue::Num(x), AbsValue::Num(y)) => Ok(AbsValue::Num(x.mul(&y))),
            (AbsValue::Energy(e), AbsValue::Num(k)) | (AbsValue::Num(k), AbsValue::Energy(e)) => {
                Ok(AbsValue::Energy(e.scale(&k)))
            }
            (a, b) => Err(Error::Type {
                expected: "number*number or energy*number",
                got: format!("{} and {}", abs_type_name(&a), abs_type_name(&b)),
            }),
        },
        Div => match (a, b) {
            (AbsValue::Num(x), AbsValue::Num(y)) => Ok(AbsValue::Num(x.div(&y)?)),
            (AbsValue::Energy(e), AbsValue::Num(k)) => Ok(AbsValue::Energy(e.div_num(&k)?)),
            (AbsValue::Energy(x), AbsValue::Energy(y)) => {
                if !x.abstracts.is_empty() || !y.abstracts.is_empty() {
                    return Err(Error::Analysis {
                        msg: "energy/energy division requires concrete energies".into(),
                    });
                }
                Ok(AbsValue::Num(x.joules.div(&y.joules)?))
            }
            (a, b) => Err(Error::Type {
                expected: "number/number, energy/number, or energy/energy",
                got: format!("{} and {}", abs_type_name(&a), abs_type_name(&b)),
            }),
        },
        Mod => {
            let x = a.as_num()?;
            let y = b.as_num()?;
            if y.contains(0.0) {
                return Err(Error::Analysis {
                    msg: "possible modulo by zero under worst-case analysis".into(),
                });
            }
            if x.is_point() && y.is_point() {
                Ok(AbsValue::Num(Interval::point(x.lo.rem_euclid(y.lo))))
            } else {
                // `rem_euclid` is bounded by [0, |y|.hi).
                let m = y.lo.abs().max(y.hi.abs());
                Ok(AbsValue::Num(Interval::new(0.0, m)))
            }
        }
        Eq | Ne => {
            let r = abs_compare_eq(&a, &b)?;
            Ok(AbsValue::Bool(if op == Eq { r } else { r.not() }))
        }
        Lt | Le | Gt | Ge => {
            let (x, y) = match (&a, &b) {
                (AbsValue::Num(x), AbsValue::Num(y)) => (*x, *y),
                (AbsValue::Energy(x), AbsValue::Energy(y))
                    if x.abstracts.is_empty() && y.abstracts.is_empty() =>
                {
                    (x.joules, y.joules)
                }
                _ => {
                    return Err(Error::Type {
                        expected: "numbers or concrete energies for comparison",
                        got: format!("{} and {}", abs_type_name(&a), abs_type_name(&b)),
                    })
                }
            };
            let r = match op {
                Lt => {
                    if x.hi < y.lo {
                        AbsBool::True
                    } else if x.lo >= y.hi {
                        AbsBool::False
                    } else {
                        AbsBool::Unknown
                    }
                }
                Le => {
                    if x.hi <= y.lo {
                        AbsBool::True
                    } else if x.lo > y.hi {
                        AbsBool::False
                    } else {
                        AbsBool::Unknown
                    }
                }
                Gt => {
                    if x.lo > y.hi {
                        AbsBool::True
                    } else if x.hi <= y.lo {
                        AbsBool::False
                    } else {
                        AbsBool::Unknown
                    }
                }
                Ge => {
                    if x.lo >= y.hi {
                        AbsBool::True
                    } else if x.hi < y.lo {
                        AbsBool::False
                    } else {
                        AbsBool::Unknown
                    }
                }
                _ => unreachable!("comparison op"),
            };
            Ok(AbsValue::Bool(r))
        }
        And => Ok(AbsValue::Bool(a.as_bool()?.and(b.as_bool()?))),
        Or => Ok(AbsValue::Bool(a.as_bool()?.or(b.as_bool()?))),
    }
}

fn abs_compare_eq(a: &AbsValue, b: &AbsValue) -> Result<AbsBool> {
    match (a, b) {
        (AbsValue::Num(x), AbsValue::Num(y)) => Ok(if x.is_point() && y.is_point() {
            AbsBool::from_bool(x.lo == y.lo)
        } else if x.hi < y.lo || y.hi < x.lo {
            AbsBool::False
        } else {
            AbsBool::Unknown
        }),
        (AbsValue::Bool(x), AbsValue::Bool(y)) => Ok(match (x, y) {
            (AbsBool::Unknown, _) | (_, AbsBool::Unknown) => AbsBool::Unknown,
            _ => AbsBool::from_bool(x == y),
        }),
        _ => Err(Error::Type {
            expected: "matching operand types for ==",
            got: format!("{} and {}", abs_type_name(a), abs_type_name(b)),
        }),
    }
}

pub(crate) fn abs_builtin(b: Builtin, args: &[AbsValue]) -> Result<AbsValue> {
    if args.len() != b.arity() {
        return Err(Error::Arity {
            func: b.name().to_string(),
            expected: b.arity(),
            got: args.len(),
        });
    }
    let num = |i: usize| args[i].as_num();
    match b {
        Builtin::Min | Builtin::Max => {
            let pick = |x: f64, y: f64| {
                if b == Builtin::Min {
                    x.min(y)
                } else {
                    x.max(y)
                }
            };
            match (&args[0], &args[1]) {
                (AbsValue::Num(x), AbsValue::Num(y)) => Ok(AbsValue::Num(Interval::new(
                    pick(x.lo, y.lo),
                    pick(x.hi, y.hi),
                ))),
                (AbsValue::Energy(x), AbsValue::Energy(y))
                    if x.abstracts.is_empty() && y.abstracts.is_empty() =>
                {
                    Ok(AbsValue::Energy(AbsEnergy::from_joules(Interval::new(
                        pick(x.joules.lo, y.joules.lo),
                        pick(x.joules.hi, y.joules.hi),
                    ))))
                }
                (a, c) => Err(Error::Type {
                    expected: "two numbers or two concrete energies",
                    got: format!("{} and {}", abs_type_name(a), abs_type_name(c)),
                }),
            }
        }
        Builtin::Abs => {
            let i = num(0)?;
            Ok(AbsValue::Num(if i.lo >= 0.0 {
                i
            } else if i.hi <= 0.0 {
                Interval::new(-i.hi, -i.lo)
            } else {
                Interval::new(0.0, i.lo.abs().max(i.hi.abs()))
            }))
        }
        Builtin::Ceil => Ok(AbsValue::Num(num(0)?.map_monotone(f64::ceil))),
        Builtin::Floor => Ok(AbsValue::Num(num(0)?.map_monotone(f64::floor))),
        Builtin::Round => Ok(AbsValue::Num(num(0)?.map_monotone(f64::round))),
        Builtin::Sqrt => {
            let i = num(0)?;
            if i.lo < 0.0 {
                Err(Error::Analysis {
                    msg: "sqrt of possibly negative value".into(),
                })
            } else {
                Ok(AbsValue::Num(i.map_monotone(f64::sqrt)))
            }
        }
        Builtin::Log2 => {
            let i = num(0)?;
            if i.lo <= 0.0 {
                Err(Error::Analysis {
                    msg: "log2 of possibly non-positive value".into(),
                })
            } else {
                Ok(AbsValue::Num(i.map_monotone(f64::log2)))
            }
        }
        Builtin::Ln => {
            let i = num(0)?;
            if i.lo <= 0.0 {
                Err(Error::Analysis {
                    msg: "ln of possibly non-positive value".into(),
                })
            } else {
                Ok(AbsValue::Num(i.map_monotone(f64::ln)))
            }
        }
        Builtin::Exp => Ok(AbsValue::Num(num(0)?.map_monotone(f64::exp))),
        Builtin::Pow => {
            let base = num(0)?;
            let exp = num(1)?;
            if !exp.is_point() {
                return Err(Error::Analysis {
                    msg: "pow with interval exponent is not supported".into(),
                });
            }
            let e = exp.lo;
            if base.lo < 0.0 {
                // Negative bases only make sense with integer exponents;
                // there the exact `powi` range evaluator handles the
                // non-monotone even-power case soundly.
                if e >= 0.0 && e.fract() == 0.0 && e <= u32::MAX as f64 {
                    return Ok(AbsValue::Num(base.powi(e as u32)));
                }
                return Err(Error::Analysis {
                    msg: "pow with possibly negative base is not supported".into(),
                });
            }
            if e >= 0.0 {
                Ok(AbsValue::Num(base.map_monotone(|x| x.powf(e))))
            } else {
                if base.contains(0.0) {
                    return Err(Error::Analysis {
                        msg: "pow with negative exponent and base possibly zero".into(),
                    });
                }
                Ok(AbsValue::Num(Interval::new(
                    base.hi.powf(e),
                    base.lo.powf(e),
                )))
            }
        }
        Builtin::Joules => Ok(AbsValue::Energy(AbsEnergy::from_joules(num(0)?))),
        Builtin::Clamp => {
            let x = num(0)?;
            let lo = num(1)?;
            let hi = num(2)?;
            Ok(AbsValue::Num(Interval::new(
                x.lo.clamp(lo.lo, hi.hi),
                x.hi.clamp(lo.lo, hi.hi),
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a.add(&b), Interval::new(0.0, 5.0));
        assert_eq!(a.sub(&b), Interval::new(-2.0, 3.0));
        assert_eq!(a.mul(&b), Interval::new(-2.0, 6.0));
        assert!(a.div(&b).is_err());
        assert_eq!(
            a.div(&Interval::new(2.0, 4.0)).unwrap(),
            Interval::new(0.25, 1.0)
        );
        assert_eq!(a.join(&b), Interval::new(-1.0, 3.0));
        assert!(Interval::point(2.0).is_point());
    }

    #[test]
    fn powi_is_exact_across_zero() {
        // Even powers are non-monotone over zero-spanning intervals:
        // endpoint mapping would report [1, 4] for x² over [-1, 2].
        assert_eq!(Interval::new(-1.0, 2.0).powi(2), Interval::new(0.0, 4.0));
        assert_eq!(Interval::new(-3.0, -1.0).powi(2), Interval::new(1.0, 9.0));
        // Odd powers are monotone everywhere.
        assert_eq!(Interval::new(-2.0, 1.0).powi(3), Interval::new(-8.0, 1.0));
        // x^0 is identically 1, even over zero.
        assert_eq!(Interval::new(-5.0, 5.0).powi(0), Interval::point(1.0));
    }

    #[test]
    fn map_quadratic_covers_the_vertex() {
        // A DVFS-style power curve swept across its minimum: the vertex
        // of 0.3 - 0.8·f + f² sits at f = 0.4, strictly inside the
        // [0.1, 1.0] frequency range. Endpoint-only evaluation would
        // report a lower bound of 0.23 and miss the true minimum 0.14.
        let f = Interval::new(0.1, 1.0);
        let r = f.map_quadratic(0.3, -0.8, 1.0);
        assert!((r.lo - 0.14).abs() < 1e-12, "vertex minimum: {r:?}");
        assert!((r.hi - 0.5).abs() < 1e-12, "endpoint maximum: {r:?}");
        // With the vertex outside the interval the quadratic is monotone
        // and the endpoints are exact.
        let g = Interval::new(0.5, 1.0);
        let s = g.map_quadratic(0.3, -0.8, 1.0);
        assert!((s.lo - (0.3 - 0.4 + 0.25)).abs() < 1e-12);
        assert!((s.hi - 0.5).abs() < 1e-12);
        // Degenerate quadratic (c2 = 0): plain affine endpoints.
        assert_eq!(
            Interval::new(0.0, 2.0).map_quadratic(1.0, 2.0, 0.0),
            Interval::new(1.0, 5.0)
        );
    }

    #[test]
    fn division_endpoints_are_exact_quotients() {
        // Point ÷ point must be *exactly* the concrete quotient — the
        // bound certifier relies on it. Computing x·(1/y) instead double-
        // rounds and can land one ulp off the true quotient; first find a
        // pair where the two disagree to show the hazard is real.
        let mut witnessed = false;
        for num in 1..60u32 {
            for den in 1..60u32 {
                let (x, y) = (f64::from(num) * 0.1, f64::from(den) * 0.3);
                let exact = x / y;
                witnessed |= (x * (1.0 / y)).to_bits() != exact.to_bits();
                let q = Interval::point(x).div(&Interval::point(y)).unwrap();
                assert!(q.is_point(), "{x}/{y} must stay a point");
                assert_eq!(q.lo.to_bits(), exact.to_bits(), "{x}/{y}");
                // And the concrete quotient never escapes a widened box.
                let wide = Interval::new(x * 0.5, x * 2.0)
                    .div(&Interval::new(y * 0.5, y * 2.0))
                    .unwrap();
                assert!(wide.contains(exact), "{exact} escapes {wide:?}");
            }
        }
        assert!(witnessed, "expected at least one double-rounding witness");
    }

    #[test]
    fn absbool_logic() {
        use AbsBool::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn straight_line_energy_is_point() {
        let iface = parse("interface s { fn f(n) { return 2 mJ * n + 1 J; } }").unwrap();
        let out = abstract_eval(&iface, "f", &[AbsValue::Num(Interval::new(0.0, 100.0))]).unwrap();
        let e = out.as_energy().unwrap();
        assert!((e.joules.lo - 1.0).abs() < 1e-12);
        assert!((e.joules.hi - 1.2).abs() < 1e-12);
    }

    #[test]
    fn unknown_branch_joins() {
        let iface = parse(
            r#"interface s {
                ecv hit: bernoulli(0.5);
                fn f() {
                    if ecv(hit) { return 1 J; } else { return 3 J; }
                }
            }"#,
        )
        .unwrap();
        let out = abstract_eval(&iface, "f", &[]).unwrap();
        let e = out.as_energy().unwrap();
        assert_eq!(e.joules, Interval::new(1.0, 3.0));
    }

    #[test]
    fn degenerate_bernoulli_prunes_branch() {
        let iface = parse(
            r#"interface s {
                ecv hit: bernoulli(1);
                fn f() {
                    if ecv(hit) { return 1 J; } else { return 3 J; }
                }
            }"#,
        )
        .unwrap();
        let out = abstract_eval(&iface, "f", &[]).unwrap();
        assert_eq!(out.as_energy().unwrap().joules, Interval::point(1.0));
    }

    #[test]
    fn for_loop_accumulates_bounds() {
        let iface = parse(
            r#"interface s {
                fn f(n) {
                    let acc = 0 J;
                    for i in 0..n { acc = acc + 2 mJ; }
                    return acc;
                }
            }"#,
        )
        .unwrap();
        let out = abstract_eval(&iface, "f", &[AbsValue::Num(Interval::new(3.0, 5.0))]).unwrap();
        let e = out.as_energy().unwrap();
        assert!((e.joules.lo - 0.006).abs() < 1e-12, "lo={}", e.joules.lo);
        assert!((e.joules.hi - 0.010).abs() < 1e-12, "hi={}", e.joules.hi);
    }

    #[test]
    fn for_loop_unroll_limit() {
        let iface = parse(
            r#"interface s {
                fn f() {
                    let acc = 0 J;
                    for i in 0..1000000 { acc = acc + 1 mJ; }
                    return acc;
                }
            }"#,
        )
        .unwrap();
        assert!(matches!(
            abstract_eval(&iface, "f", &[]),
            Err(Error::Analysis { .. })
        ));
    }

    #[test]
    fn while_loop_with_sound_bound() {
        let iface = parse(
            r#"interface s {
                fn f() {
                    let i = 0;
                    let acc = 0 J;
                    while i < 5 bound 10 {
                        i = i + 1;
                        acc = acc + 1 J;
                    }
                    return acc;
                }
            }"#,
        )
        .unwrap();
        let out = abstract_eval(&iface, "f", &[]).unwrap();
        // The analysis joins exit states for every plausible exit point, so
        // the bound must cover [0 J, 5 J]; crucially hi == 5.
        let e = out.as_energy().unwrap();
        assert_eq!(e.joules.hi, 5.0);
    }

    #[test]
    fn while_loop_possibly_unbounded_rejected() {
        let iface = parse(
            r#"interface s {
                fn f(n) {
                    let i = 0;
                    while i < n bound 4 { i = i + 1; }
                    return 1 J;
                }
            }"#,
        )
        .unwrap();
        let r = abstract_eval(&iface, "f", &[AbsValue::Num(Interval::new(0.0, 100.0))]);
        assert!(matches!(r, Err(Error::Analysis { .. })));
    }

    #[test]
    fn calls_compose_intervals() {
        let iface = parse(
            r#"interface s {
                fn leaf(x) { return 3 mJ * x; }
                fn f(n) { return leaf(n) + leaf(2 * n); }
            }"#,
        )
        .unwrap();
        let out = abstract_eval(&iface, "f", &[AbsValue::Num(Interval::new(1.0, 2.0))]).unwrap();
        let e = out.as_energy().unwrap();
        assert!((e.joules.lo - 0.009).abs() < 1e-12);
        assert!((e.joules.hi - 0.018).abs() < 1e-12);
    }

    #[test]
    fn unlinked_extern_rejected() {
        let iface = parse("interface s { extern fn hw(x); fn f(x) { return hw(x); } }").unwrap();
        assert!(matches!(
            abstract_eval(&iface, "f", &[AbsValue::Num(Interval::point(1.0))]),
            Err(Error::Link { .. })
        ));
    }

    #[test]
    fn abstract_inputs_from_spec() {
        let iface =
            parse("interface s { fn f(n, req) { return 1 mJ * n + 1 mJ * req.size; } }").unwrap();
        let spec = InputSpec::new()
            .range("n", 0.0, 10.0)
            .range("req.size", 1.0, 64.0);
        let args = abstract_inputs(&iface, "f", &spec).unwrap();
        assert_eq!(args.len(), 2);
        assert_eq!(args[0], AbsValue::Num(Interval::new(0.0, 10.0)));
        match &args[1] {
            AbsValue::Record(fields) => {
                assert_eq!(fields["size"], AbsValue::Num(Interval::new(1.0, 64.0)));
            }
            other => panic!("expected record, got {other:?}"),
        }
        let bad = InputSpec::new().range("n", 0.0, 10.0);
        assert!(abstract_inputs(&iface, "f", &bad).is_err());
    }

    #[test]
    fn ecv_abstract_values() {
        assert_eq!(
            ecv_abs_value(&DistSpec::Bernoulli { p: 0.5 }),
            AbsValue::Bool(AbsBool::Unknown)
        );
        assert_eq!(
            ecv_abs_value(&DistSpec::Discrete {
                outcomes: vec![(1.0, 0.5), (4.0, 0.5), (99.0, 0.0)]
            }),
            AbsValue::Num(Interval::new(1.0, 4.0))
        );
        assert_eq!(
            ecv_abs_value(&DistSpec::Point { value: 7.0 }),
            AbsValue::Num(Interval::point(7.0))
        );
    }

    #[test]
    fn upper_bound_with_calibration() {
        let mut e = AbsEnergy::from_joules(Interval::new(1.0, 2.0));
        e.abstracts.insert("relu".into(), Interval::new(0.0, 4.0));
        let cal = Calibration::from_pairs([("relu", Energy::millijoules(10.0))]);
        assert!((e.upper_bound(&cal).unwrap().as_joules() - 2.04).abs() < 1e-12);
        assert!((e.lower_bound(&cal).unwrap().as_joules() - 1.0).abs() < 1e-12);
        assert!(e.upper_bound(&Calibration::empty()).is_err());
    }

    #[test]
    fn branch_local_variables_dropped_at_join() {
        let iface = parse(
            r#"interface s {
                ecv hit: bernoulli(0.5);
                fn f() {
                    if ecv(hit) { let x = 1; } else { }
                    return 1 J;
                }
            }"#,
        )
        .unwrap();
        // `x` is branch-local and unused afterwards: fine.
        assert!(abstract_eval(&iface, "f", &[]).is_ok());
    }
}
