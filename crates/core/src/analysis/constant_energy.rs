//! Constant-energy (side-channel freedom) checking.
//!
//! §4.1: "There might be situations in which additional constraints would
//! need to be expressed, such as constant-energy execution for crypto code,
//! to explicitly disallow energy side-channels — a mere upper bound is not
//! sufficient for this." This module checks whether an interface function
//! consumes the same energy for *every* input in its declared space and
//! every ECV outcome.
//!
//! Strategy: first the sound interval analysis — if the abstract result is a
//! point (within tolerance), the function is proven constant-energy. If the
//! interval is wide, concrete sampling hunts for a counterexample pair of
//! inputs with different energies; if one is found the verdict is a definite
//! "leaky" with a witness, otherwise the verdict stays "unknown" (the
//! abstraction was too coarse to prove either way).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::analysis::worst_case::worst_case;
use crate::ecv::EcvEnv;
use crate::error::Result;
use crate::interface::{InputSpec, Interface};
use crate::interp::{evaluate_energy, EvalConfig};
use crate::units::{Calibration, Energy};
use crate::value::Value;

/// The verdict of a constant-energy check.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstantEnergy {
    /// Proven: all executions consume the same energy (within tolerance).
    Constant {
        /// The constant energy value.
        energy: Energy,
    },
    /// Disproven: two concrete executions with different energies exist.
    Leaky {
        /// Inputs (one scalar per parameter) of the cheaper execution.
        input_lo: Vec<f64>,
        /// Energy of the cheaper execution.
        energy_lo: Energy,
        /// Inputs of the more expensive execution.
        input_hi: Vec<f64>,
        /// Energy of the more expensive execution.
        energy_hi: Energy,
    },
    /// The interval analysis was inconclusive and sampling found no
    /// counterexample.
    Unknown {
        /// Width of the abstract energy interval that blocked the proof.
        interval_width: Energy,
    },
}

impl ConstantEnergy {
    /// True only for a proven-constant verdict.
    pub fn is_constant(&self) -> bool {
        matches!(self, ConstantEnergy::Constant { .. })
    }

    /// True only for a disproven (leaky) verdict.
    pub fn is_leaky(&self) -> bool {
        matches!(self, ConstantEnergy::Leaky { .. })
    }
}

/// Checks whether `iface.func` is constant-energy over `spec`.
///
/// `tolerance` absorbs floating-point noise; `samples` controls the
/// counterexample hunt. Parameters must all be scalars with declared ranges
/// (crypto kernels take sizes/flags, not records).
pub fn check_constant_energy(
    iface: &Interface,
    func: &str,
    spec: &InputSpec,
    cal: &Calibration,
    tolerance: Energy,
    samples: usize,
    seed: u64,
) -> Result<ConstantEnergy> {
    // Phase 1: sound proof attempt.
    let bound = worst_case(iface, func, spec, cal)?;
    if bound.width().as_joules().abs() <= tolerance.as_joules() {
        return Ok(ConstantEnergy::Constant {
            energy: bound.upper,
        });
    }

    // Phase 2: counterexample hunt over concrete inputs and ECV samples.
    let f = iface.get_fn(func)?;
    let ranges: Vec<(f64, f64)> = f
        .params
        .iter()
        .map(|p| {
            spec.get(p)
                .map(|r| (r.lo, r.hi))
                .ok_or_else(|| crate::error::Error::BadInput {
                    msg: format!("no declared range for scalar parameter `{p}`"),
                })
        })
        .collect::<Result<_>>()?;
    let env = EcvEnv::from_decls(&iface.ecvs);
    let cfg = EvalConfig {
        calibration: cal.clone(),
        ..EvalConfig::default()
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut lo: Option<(Vec<f64>, Energy)> = None;
    let mut hi: Option<(Vec<f64>, Energy)> = None;
    for s in 0..samples {
        let input: Vec<f64> = ranges
            .iter()
            .map(|(a, b)| {
                if s == 0 {
                    *a
                } else if s == 1 {
                    *b
                } else {
                    a + (b - a) * rng.random::<f64>()
                }
            })
            .collect();
        let args: Vec<Value> = input.iter().map(|v| Value::Num(*v)).collect();
        let e = evaluate_energy(iface, func, &args, &env, seed ^ s as u64, &cfg)?;
        if lo.as_ref().is_none_or(|(_, le)| e < *le) {
            lo = Some((input.clone(), e));
        }
        if hi.as_ref().is_none_or(|(_, he)| e > *he) {
            hi = Some((input, e));
        }
        if let (Some((li, le)), Some((hi_i, he))) = (&lo, &hi) {
            if (*he - *le).as_joules() > tolerance.as_joules() {
                return Ok(ConstantEnergy::Leaky {
                    input_lo: li.clone(),
                    energy_lo: *le,
                    input_hi: hi_i.clone(),
                    energy_hi: *he,
                });
            }
        }
    }
    Ok(ConstantEnergy::Unknown {
        interval_width: bound.width(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn constant_time_compare_is_proven_constant() {
        // A fixed-iteration compare: energy depends only on the (fixed)
        // buffer length, never on the data.
        let i = parse(
            r#"interface crypto {
                fn ct_compare(len) {
                    let acc = 0 J;
                    for b in 0..32 { acc = acc + 3 nJ; }
                    return acc;
                }
            }"#,
        )
        .unwrap();
        let spec = InputSpec::new().range("len", 0.0, 1024.0);
        let v = check_constant_energy(
            &i,
            "ct_compare",
            &spec,
            &Calibration::empty(),
            Energy::picojoules(1.0),
            64,
            42,
        )
        .unwrap();
        match v {
            ConstantEnergy::Constant { energy } => {
                assert!((energy.as_joules() - 96e-9).abs() < 1e-15);
            }
            other => panic!("expected constant, got {other:?}"),
        }
    }

    #[test]
    fn early_exit_compare_is_leaky() {
        // Early-exit compare: energy scales with the match prefix length.
        let i = parse(
            r#"interface crypto {
                fn leaky_compare(prefix) {
                    let acc = 1 nJ;
                    for b in 0..prefix { acc = acc + 3 nJ; }
                    return acc;
                }
            }"#,
        )
        .unwrap();
        let spec = InputSpec::new().range("prefix", 0.0, 32.0);
        let v = check_constant_energy(
            &i,
            "leaky_compare",
            &spec,
            &Calibration::empty(),
            Energy::picojoules(1.0),
            64,
            42,
        )
        .unwrap();
        match v {
            ConstantEnergy::Leaky {
                energy_lo,
                energy_hi,
                ..
            } => {
                assert!(energy_hi > energy_lo);
            }
            other => panic!("expected leaky, got {other:?}"),
        }
        assert!(v.is_leaky());
        assert!(!v.is_constant());
    }

    #[test]
    fn ecv_dependent_energy_is_leaky() {
        let i = parse(
            r#"interface c {
                ecv cached: bernoulli(0.5);
                fn f(x) {
                    if ecv(cached) { return 1 nJ; } else { return 9 nJ; }
                }
            }"#,
        )
        .unwrap();
        let spec = InputSpec::new().range("x", 0.0, 1.0);
        let v = check_constant_energy(
            &i,
            "f",
            &spec,
            &Calibration::empty(),
            Energy::picojoules(1.0),
            128,
            7,
        )
        .unwrap();
        assert!(v.is_leaky(), "got {v:?}");
    }

    #[test]
    fn tolerance_absorbs_noise() {
        let i = parse(
            r#"interface c {
                fn f(x) {
                    if x > 0.5 { return 1.0000001 nJ; } else { return 1 nJ; }
                }
            }"#,
        )
        .unwrap();
        let spec = InputSpec::new().range("x", 0.0, 1.0);
        let v = check_constant_energy(
            &i,
            "f",
            &spec,
            &Calibration::empty(),
            Energy::nanojoules(0.001),
            64,
            1,
        )
        .unwrap();
        assert!(v.is_constant(), "got {v:?}");
    }
}
