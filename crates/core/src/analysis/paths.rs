//! Path enumeration over ECV outcomes.
//!
//! §4.2 calls for "a combination of per-path analysis (e.g., using symbolic
//! execution) with side-effects analysis". For a concrete input, an
//! interface's control flow is determined by the ECV assignment, so
//! enumerating the finite ECV space enumerates the interface's paths; each
//! path carries its probability and energy. This is the machine-readable
//! version of what a developer does when reading Fig. 1: "if the request
//! hits the cache, energy is X with probability p; otherwise Y".

use std::collections::BTreeMap;

use crate::ecv::{EcvEnv, EcvValue};
use crate::error::Result;
use crate::interface::Interface;
use crate::interp::{eval_with_assignment, EvalConfig};
use crate::units::Energy;
use crate::value::Value;

/// One enumerated path: the ECV observations that select it, its
/// probability, and the energy consumed along it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// The ECV assignment that drives this path.
    pub assignment: BTreeMap<String, EcvValue>,
    /// Probability of the assignment.
    pub probability: f64,
    /// Energy consumed on this path (calibrated Joules).
    pub energy: Energy,
}

/// The full path profile of one invocation.
#[derive(Debug, Clone)]
pub struct PathProfile {
    /// All enumerated paths, sorted by descending probability.
    pub paths: Vec<PathOutcome>,
}

impl PathProfile {
    /// The expected energy across paths.
    pub fn expected_energy(&self) -> Energy {
        Energy(
            self.paths
                .iter()
                .map(|p| p.probability * p.energy.as_joules())
                .sum(),
        )
    }

    /// The worst-case (most expensive) path.
    pub fn worst(&self) -> Option<&PathOutcome> {
        self.paths.iter().max_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The best-case (cheapest) path.
    pub fn best(&self) -> Option<&PathOutcome> {
        self.paths.iter().min_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Number of distinct energy outcomes (paths with equal energy merged).
    pub fn distinct_energies(&self, tolerance: Energy) -> usize {
        let mut es: Vec<f64> = self.paths.iter().map(|p| p.energy.as_joules()).collect();
        es.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut count = 0;
        let mut last = f64::NEG_INFINITY;
        for e in es {
            if (e - last).abs() > tolerance.as_joules() {
                count += 1;
                last = e;
            }
        }
        count
    }

    /// Renders a human-readable path table (one line per path).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            let conds: Vec<String> = p
                .assignment
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!(
                "p={:.4}  E={}  [{}]\n",
                p.probability,
                p.energy,
                conds.join(", ")
            ));
        }
        out
    }
}

/// Enumerates every ECV-selected path of `iface.func(args)`.
///
/// All unpinned ECVs must have finite support (Bernoulli/Discrete/Point);
/// pin continuous ECVs in `env` first. `limit` caps the assignment space.
pub fn enumerate_paths(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    limit: usize,
    config: &EvalConfig,
) -> Result<PathProfile> {
    let assignments = env.enumerate_assignments(limit)?;
    let mut paths = Vec::with_capacity(assignments.len());
    for (assignment, probability) in assignments {
        let v = eval_with_assignment(iface, func, args, &assignment, config)?;
        let energy = v.into_energy()?.calibrate(&config.calibration)?;
        paths.push(PathOutcome {
            assignment,
            probability,
            energy,
        });
    }
    paths.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(PathProfile { paths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn iface() -> Interface {
        parse(
            r#"interface svc {
                ecv request_hit: bernoulli(0.25) "request found in cache";
                ecv local_hit: bernoulli(0.8) "cache hit in current node";
                fn handle(len) {
                    if ecv(request_hit) {
                        if ecv(local_hit) { return 5 mJ * len; }
                        else { return 100 mJ * len; }
                    } else {
                        return 2 J;
                    }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn enumerates_all_paths_with_probabilities() {
        let i = iface();
        let env = i.ecv_env();
        let profile = enumerate_paths(
            &i,
            "handle",
            &[Value::Num(10.0)],
            &env,
            100,
            &EvalConfig::default(),
        )
        .unwrap();
        assert_eq!(profile.paths.len(), 4);
        let total: f64 = profile.paths.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Highest-probability path first: miss (0.75 * anything).
        assert!(profile.paths[0].probability >= profile.paths[1].probability);
    }

    #[test]
    fn expected_worst_best() {
        let i = iface();
        let env = i.ecv_env();
        let profile = enumerate_paths(
            &i,
            "handle",
            &[Value::Num(10.0)],
            &env,
            100,
            &EvalConfig::default(),
        )
        .unwrap();
        let expect = 0.25 * (0.8 * 0.05 + 0.2 * 1.0) + 0.75 * 2.0;
        assert!((profile.expected_energy().as_joules() - expect).abs() < 1e-9);
        assert_eq!(profile.worst().unwrap().energy.as_joules(), 2.0);
        assert!((profile.best().unwrap().energy.as_joules() - 0.05).abs() < 1e-12);
        // Four assignments, but `local_hit` is dead on the miss path, so the
        // two miss assignments produce the same 2 J outcome: 3 distinct.
        assert_eq!(profile.distinct_energies(Energy::nanojoules(1.0)), 3);
    }

    #[test]
    fn pinning_reduces_path_space() {
        let i = iface();
        let mut env = i.ecv_env();
        env.pin_bool("request_hit", false);
        let profile = enumerate_paths(
            &i,
            "handle",
            &[Value::Num(10.0)],
            &env,
            100,
            &EvalConfig::default(),
        )
        .unwrap();
        assert_eq!(profile.paths.len(), 2);
        assert!(profile.paths.iter().all(|p| p.energy.as_joules() == 2.0));
    }

    #[test]
    fn render_is_readable() {
        let i = iface();
        let env = i.ecv_env();
        let profile = enumerate_paths(
            &i,
            "handle",
            &[Value::Num(1.0)],
            &env,
            100,
            &EvalConfig::default(),
        )
        .unwrap();
        let text = profile.render();
        assert!(text.contains("request_hit=true"));
        assert!(text.contains("p=0.6000") || text.contains("p=0.7500"));
    }
}
