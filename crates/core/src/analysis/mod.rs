//! Analyses over energy interfaces: the toolchain of §4.
//!
//! - [`interval`]: sound interval abstract interpretation (the engine).
//! - [`worst_case`]: upper/lower energy bounds over declared input spaces.
//! - [`paths`]: per-path enumeration over ECV outcomes (§4.2).
//! - [`constant_energy`]: side-channel freedom checking (§4.1).
//! - [`compat`]: envelope compatibility between spec and implementation
//!   interfaces (§4.1).
//! - [`cert`]: sound per-function energy certificates — guaranteed
//!   min/max bounds plus monotonicity verdicts (`eic certify`).

pub mod cert;
pub mod compat;
pub mod constant_energy;
pub mod interval;
pub mod paths;
pub mod worst_case;
