//! The pluggable lint rules.
//!
//! Each rule is a [`LintRule`] with a stable id, a fixed severity, and a
//! `check` that appends [`Diagnostic`]s for one interface (with the whole
//! program visible for cross-interface rules). [`default_rules`] is the
//! day-one rule set:
//!
//! | id   | severity | defect |
//! |------|----------|--------|
//! | E001 | error    | unit/dimension mismatch (counts vs. energy vs. booleans) |
//! | E002 | error    | abstract unit used with no calibration entry |
//! | E003 | error    | provably negative energy over the declared input space |
//! | E004 | error    | unbounded loop trip count or recursion |
//! | W001 | warning  | dead ECV, unit, or local binding |
//! | W002 | warning  | non-deterministic construct outside an ECV declaration |
//! | W003 | warning  | extern does not match a sibling provider's shape |

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::interval::{
    abstract_eval, abstract_inputs, ecv_abs_value, AbsValue, Interval,
};
use crate::ast::{Builtin, Expr, FnDef, Stmt};
use crate::sema::diag::{Diagnostic, Diagnostics, Severity};
use crate::sema::types::{infer_interface, recursive_fns, Ty};
use crate::sema::LintContext;
use crate::span::{ExprSpans, Span, StmtSpans};

/// Static description of one rule, for `--help`-style tables and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable id (`E001`...).
    pub id: &'static str,
    /// Severity of every diagnostic the rule emits.
    pub severity: Severity,
    /// One-line summary of the defect class.
    pub summary: &'static str,
}

/// One pluggable semantic check.
pub trait LintRule {
    /// The rule's static description.
    fn info(&self) -> RuleInfo;
    /// Appends findings for `cx.iface` to `out`.
    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics);
}

/// The built-in rule set, in id order.
pub fn default_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(UnitMismatch),
        Box::new(Uncalibrated),
        Box::new(NegativeEnergy),
        Box::new(Unbounded),
        Box::new(DeadCode),
        Box::new(Nondeterminism),
        Box::new(CompositionShape),
    ]
}

/// Ids/severities/summaries of the built-in rules, for docs and CLI help.
pub fn rule_table() -> Vec<RuleInfo> {
    default_rules().iter().map(|r| r.info()).collect()
}

fn diagnostic(
    info: RuleInfo,
    cx: &LintContext<'_>,
    function: Option<&str>,
    span: Span,
    message: String,
    hint: Option<&str>,
) -> Diagnostic {
    Diagnostic {
        rule: info.id,
        severity: info.severity,
        interface: cx.iface.name.clone(),
        function: function.map(str::to_string),
        span,
        message,
        hint: hint.map(str::to_string),
    }
}

// ---------------------------------------------------------------------------
// Span-paired AST walkers
// ---------------------------------------------------------------------------

/// Visits every expression in a function body alongside its span mirror,
/// in pre-order.
fn visit_fn_exprs(stmts: &[Stmt], spans: &[StmtSpans], f: &mut impl FnMut(&Expr, &ExprSpans)) {
    visit_stmts(stmts, spans, &mut |_, _| {}, f);
}

/// Visits every statement (with its mirror) and every expression (with its
/// mirror) in a body.
fn visit_stmts(
    stmts: &[Stmt],
    spans: &[StmtSpans],
    on_stmt: &mut impl FnMut(&Stmt, &StmtSpans),
    on_expr: &mut impl FnMut(&Expr, &ExprSpans),
) {
    for (i, s) in stmts.iter().enumerate() {
        let sp = spans.get(i).unwrap_or(StmtSpans::none());
        on_stmt(s, sp);
        match s {
            Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) => {
                visit_expr(e, sp.expr(0), on_expr);
            }
            Stmt::If(c, t, els) => {
                visit_expr(c, sp.expr(0), on_expr);
                visit_stmts(t, sp.block(0), on_stmt, on_expr);
                visit_stmts(els, sp.block(1), on_stmt, on_expr);
            }
            Stmt::For { from, to, body, .. } => {
                visit_expr(from, sp.expr(0), on_expr);
                visit_expr(to, sp.expr(1), on_expr);
                visit_stmts(body, sp.block(0), on_stmt, on_expr);
            }
            Stmt::While { cond, body, .. } => {
                visit_expr(cond, sp.expr(0), on_expr);
                visit_stmts(body, sp.block(0), on_stmt, on_expr);
            }
        }
    }
}

fn visit_expr(e: &Expr, sp: &ExprSpans, f: &mut impl FnMut(&Expr, &ExprSpans)) {
    f(e, sp);
    match e {
        Expr::Num(_)
        | Expr::Bool(_)
        | Expr::Joules(_)
        | Expr::Unit(_, _)
        | Expr::Var(_)
        | Expr::Ecv(_) => {}
        Expr::Field(b, _) | Expr::Unary(_, b) => visit_expr(b, sp.child(0), f),
        Expr::Binary(_, a, b) => {
            visit_expr(a, sp.child(0), f);
            visit_expr(b, sp.child(1), f);
        }
        Expr::Call(_, args) | Expr::BuiltinCall(_, args) => {
            for (i, a) in args.iter().enumerate() {
                visit_expr(a, sp.child(i), f);
            }
        }
        Expr::IfExpr(c, t, els) => {
            visit_expr(c, sp.child(0), f);
            visit_expr(t, sp.child(1), f);
            visit_expr(els, sp.child(2), f);
        }
    }
}

// ---------------------------------------------------------------------------
// E001 — unit/dimension mismatch
// ---------------------------------------------------------------------------

struct UnitMismatch;

impl LintRule for UnitMismatch {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "E001",
            severity: Severity::Error,
            summary: "unit/dimension mismatch (counts vs. energy vs. booleans)",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        let (_, diags) = infer_interface(cx.iface);
        out.extend(diags);
    }
}

// ---------------------------------------------------------------------------
// E002 — uncalibrated abstract unit
// ---------------------------------------------------------------------------

struct Uncalibrated;

impl LintRule for Uncalibrated {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "E002",
            severity: Severity::Error,
            summary: "abstract unit used in an energy expression with no calibration entry",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        let cal = &cx.options.calibration;
        for (name, f) in &cx.iface.fns {
            let fs = cx.iface.spans.fn_spans(name);
            let mut seen: BTreeSet<String> = BTreeSet::new();
            visit_fn_exprs(&f.body, &fs.body, &mut |e, sp| {
                if let Expr::Unit(u, _) = e {
                    if cal.get(u).is_none() && seen.insert(u.clone()) {
                        out.push(diagnostic(
                            self.info(),
                            cx,
                            Some(name),
                            sp.span,
                            format!("abstract unit `{u}` has no Joule calibration"),
                            Some("provide a Calibration entry (e.g. `--cal` on the CLI) or a measured per-unit cost"),
                        ));
                    }
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// E003 — possibly-negative energy
// ---------------------------------------------------------------------------

struct NegativeEnergy;

impl LintRule for NegativeEnergy {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "E003",
            severity: Severity::Error,
            summary: "interval analysis proves a possibly-negative energy result",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        for (name, f) in &cx.iface.fns {
            // Build abstract arguments from the declared input space; a
            // parameterless function needs none. Anything else (no spec,
            // open interface, analysis failure) is inconclusive, not a
            // finding.
            let args = match cx.iface.input_specs.get(name) {
                Some(spec) => match abstract_inputs(cx.iface, name, spec) {
                    Ok(a) => a,
                    Err(_) => continue,
                },
                None if f.params.is_empty() => Vec::new(),
                None => continue,
            };
            let Ok(AbsValue::Energy(ae)) = abstract_eval(cx.iface, name, &args) else {
                continue;
            };
            let Ok(lb) = ae.lower_bound(&cx.options.calibration) else {
                continue;
            };
            if lb.as_joules() < 0.0 {
                out.push(diagnostic(
                    self.info(),
                    cx,
                    Some(name),
                    cx.iface.spans.fn_spans(name).decl,
                    format!(
                        "energy can be negative over the declared inputs (lower bound {:.3e} J)",
                        lb.as_joules()
                    ),
                    Some("clamp the subtraction with max(..., 0) or tighten the input ranges"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// E004 — unbounded loop / recursion
// ---------------------------------------------------------------------------

struct Unbounded;

impl LintRule for Unbounded {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "E004",
            severity: Severity::Error,
            summary: "loop trip count or recursion depth is not statically bounded",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        for name in recursive_fns(cx.iface) {
            out.push(diagnostic(
                self.info(),
                cx,
                Some(&name),
                cx.iface.spans.fn_spans(&name).decl,
                format!(
                    "`{name}` is part of a recursive call cycle with no statically bounded depth"
                ),
                Some("rewrite the recursion as a `for` or `while ... bound N` loop"),
            ));
        }
        check_loop_bounds(self.info(), cx, out);
    }
}

/// Flags `for` loops whose trip count the interval domain cannot bound.
///
/// Parameter intervals come from the function's own `input_spec` when it has
/// one; otherwise from joining the argument intervals at every local call
/// site (functions are visited callers-first, so those are known); a root
/// function with no spec contributes unbounded parameters.
fn check_loop_bounds(info: RuleInfo, cx: &LintContext<'_>, out: &mut Diagnostics) {
    let top = Interval::new(f64::NEG_INFINITY, f64::INFINITY);
    // Callers-first order: reverse of the callees-first post-order implied
    // by the call graph. Compute it the same way `types::topo_order` does.
    let graph = cx.iface.call_graph();
    let mut order: Vec<String> = Vec::new();
    {
        let mut state: BTreeMap<&str, u8> = BTreeMap::new();
        fn po<'a>(
            n: &'a str,
            g: &'a BTreeMap<String, Vec<String>>,
            state: &mut BTreeMap<&'a str, u8>,
            out: &mut Vec<String>,
        ) {
            if state.contains_key(n) {
                return;
            }
            state.insert(n, 1);
            if let Some(cs) = g.get(n) {
                for c in cs {
                    po(c, g, state, out);
                }
            }
            out.push(n.to_string());
        }
        for n in graph.keys() {
            po(n, &graph, &mut state, &mut order);
        }
        order.reverse();
    }
    // Joined argument intervals observed at call sites, per callee.
    let mut incoming: BTreeMap<String, Vec<Option<Interval>>> = BTreeMap::new();
    for name in &order {
        let f = &cx.iface.fns[name];
        let fs = cx.iface.spans.fn_spans(name);
        let mut env: BTreeMap<String, Interval> = BTreeMap::new();
        match cx.iface.input_specs.get(name) {
            Some(spec) => {
                for p in &f.params {
                    let iv = spec
                        .get(p)
                        .map(|r| Interval::new(r.lo, r.hi))
                        .unwrap_or(top);
                    env.insert(p.clone(), iv);
                }
                // Record-parameter fields live under composite keys.
                for (path, r) in spec.iter() {
                    if path.contains('.') {
                        env.insert(path.to_string(), Interval::new(r.lo, r.hi));
                    }
                }
            }
            None => {
                let joined = incoming.get(name.as_str());
                for (i, p) in f.params.iter().enumerate() {
                    let iv = joined
                        .and_then(|v| v.get(i).copied().flatten())
                        .unwrap_or(top);
                    env.insert(p.clone(), iv);
                }
            }
        }
        let mut walker = BoundWalker {
            cx,
            info,
            fn_name: name,
            incoming: &mut incoming,
            out,
        };
        walker.block(&f.body, &fs.body, &mut env);
    }
}

struct BoundWalker<'a, 'b> {
    cx: &'a LintContext<'a>,
    info: RuleInfo,
    fn_name: &'a str,
    incoming: &'b mut BTreeMap<String, Vec<Option<Interval>>>,
    out: &'b mut Diagnostics,
}

impl BoundWalker<'_, '_> {
    fn block(&mut self, stmts: &[Stmt], spans: &[StmtSpans], env: &mut BTreeMap<String, Interval>) {
        for (i, s) in stmts.iter().enumerate() {
            let sp = spans.get(i).unwrap_or(StmtSpans::none());
            self.stmt(s, sp, env);
        }
    }

    fn stmt(&mut self, s: &Stmt, sp: &StmtSpans, env: &mut BTreeMap<String, Interval>) {
        match s {
            Stmt::Let(name, e) => {
                let iv = self.eval(e, env);
                env.insert(name.clone(), iv);
            }
            Stmt::Assign(name, e) => {
                let iv = self.eval(e, env);
                let joined = env.get(name).map(|old| old.join(&iv)).unwrap_or(iv);
                env.insert(name.clone(), joined);
            }
            Stmt::If(c, t, els) => {
                self.eval(c, env);
                let mut te = env.clone();
                let mut ee = env.clone();
                self.block(t, sp.block(0), &mut te);
                self.block(els, sp.block(1), &mut ee);
                for (k, v) in te {
                    let joined = ee.get(&k).map(|o| o.join(&v)).unwrap_or(v);
                    env.insert(k, joined);
                }
                for (k, v) in ee {
                    env.entry(k).or_insert(v);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let from_iv = self.eval(from, env);
                let to_iv = self.eval(to, env);
                if !from_iv.lo.is_finite() || !to_iv.hi.is_finite() {
                    self.out.push(diagnostic(
                        self.info,
                        self.cx,
                        Some(self.fn_name),
                        sp.span,
                        "for-loop trip count is not statically bounded".into(),
                        Some("declare an input range (input_spec) for the loop bound"),
                    ));
                }
                // Loop-carried assignments widen to top before the body runs.
                widen_assigned(body, env);
                env.insert(var.clone(), from_iv.join(&to_iv));
                self.block(body, sp.block(0), env);
            }
            Stmt::While { cond, body, .. } => {
                self.eval(cond, env);
                widen_assigned(body, env);
                self.block(body, sp.block(0), env);
            }
            Stmt::Return(e) => {
                self.eval(e, env);
            }
        }
    }

    /// Numeric interval of `e`; non-numeric or unknown values are top.
    /// Also records argument intervals for local call sites as a side
    /// effect, feeding `incoming` for spec-less callees.
    fn eval(&mut self, e: &Expr, env: &BTreeMap<String, Interval>) -> Interval {
        let top = Interval::new(f64::NEG_INFINITY, f64::INFINITY);
        match e {
            Expr::Num(n) => Interval::point(*n),
            Expr::Bool(_) | Expr::Joules(_) | Expr::Unit(_, _) => top,
            Expr::Var(name) => env.get(name).copied().unwrap_or(top),
            Expr::Field(base, field) => {
                if let Expr::Var(p) = base.as_ref() {
                    if let Some(iv) = env.get(&format!("{p}.{field}")) {
                        return *iv;
                    }
                }
                top
            }
            Expr::Ecv(name) => match cx_ecv_interval(self.cx, name) {
                Some(iv) => iv,
                None => top,
            },
            Expr::Unary(crate::ast::UnOp::Neg, inner) => {
                let iv = self.eval(inner, env);
                Interval::new(-iv.hi, -iv.lo)
            }
            Expr::Unary(crate::ast::UnOp::Not, inner) => {
                self.eval(inner, env);
                top
            }
            Expr::Binary(op, a, b) => {
                let (x, y) = (self.eval(a, env), self.eval(b, env));
                use crate::ast::BinOp::*;
                match op {
                    Add => x.add(&y),
                    Sub => x.sub(&y),
                    Mul => x.mul(&y),
                    Div => x.div(&y).unwrap_or(top),
                    Mod => {
                        let m = y.lo.abs().max(y.hi.abs());
                        if m.is_finite() {
                            Interval::new(-m, m)
                        } else {
                            top
                        }
                    }
                    _ => top,
                }
            }
            Expr::Call(name, args) => {
                let ivs: Vec<Interval> = args.iter().map(|a| self.eval(a, env)).collect();
                if self.cx.iface.fns.contains_key(name) {
                    let slot = self
                        .incoming
                        .entry(name.clone())
                        .or_insert_with(|| vec![None; ivs.len()]);
                    for (i, iv) in ivs.iter().enumerate() {
                        if let Some(s) = slot.get_mut(i) {
                            *s = Some(s.map(|old| old.join(iv)).unwrap_or(*iv));
                        }
                    }
                }
                top
            }
            Expr::BuiltinCall(b, args) => {
                let ivs: Vec<Interval> = args.iter().map(|a| self.eval(a, env)).collect();
                match b {
                    Builtin::Min => {
                        Interval::new(ivs[0].lo.min(ivs[1].lo), ivs[0].hi.min(ivs[1].hi))
                    }
                    Builtin::Max => {
                        Interval::new(ivs[0].lo.max(ivs[1].lo), ivs[0].hi.max(ivs[1].hi))
                    }
                    Builtin::Abs => {
                        let iv = ivs[0];
                        let hi = iv.lo.abs().max(iv.hi.abs());
                        let lo = if iv.contains(0.0) {
                            0.0
                        } else {
                            iv.lo.abs().min(iv.hi.abs())
                        };
                        Interval::new(lo, hi)
                    }
                    Builtin::Ceil => ivs[0].map_monotone(f64::ceil),
                    Builtin::Floor => ivs[0].map_monotone(f64::floor),
                    Builtin::Round => ivs[0].map_monotone(f64::round),
                    Builtin::Exp => ivs[0].map_monotone(f64::exp),
                    Builtin::Sqrt => Interval::new(ivs[0].lo.max(0.0), ivs[0].hi.max(0.0))
                        .map_monotone(f64::sqrt),
                    Builtin::Clamp => {
                        if ivs[1].lo.is_finite() && ivs[2].hi.is_finite() {
                            Interval::new(ivs[1].lo, ivs[2].hi)
                        } else {
                            ivs[0]
                        }
                    }
                    _ => top,
                }
            }
            Expr::IfExpr(c, t, f) => {
                self.eval(c, env);
                let (x, y) = (self.eval(t, env), self.eval(f, env));
                x.join(&y)
            }
        }
    }
}

/// Numeric range an ECV read can take, from its declared distribution.
fn cx_ecv_interval(cx: &LintContext<'_>, name: &str) -> Option<Interval> {
    let decl = cx.iface.ecvs.get(name)?;
    match ecv_abs_value(&decl.dist) {
        AbsValue::Num(iv) => Some(iv),
        // Booleans count as 0/1 when they leak into arithmetic.
        AbsValue::Bool(_) => Some(Interval::new(0.0, 1.0)),
        _ => None,
    }
}

/// Widens every variable assigned inside a loop body to top, so loop-carried
/// accumulators never look bounded.
fn widen_assigned(body: &[Stmt], env: &mut BTreeMap<String, Interval>) {
    let top = Interval::new(f64::NEG_INFINITY, f64::INFINITY);
    for s in body {
        match s {
            Stmt::Assign(name, _) | Stmt::Let(name, _) => {
                env.insert(name.clone(), top);
            }
            Stmt::If(_, t, e) => {
                widen_assigned(t, env);
                widen_assigned(e, env);
            }
            Stmt::For { body, var, .. } => {
                env.insert(var.clone(), top);
                widen_assigned(body, env);
            }
            Stmt::While { body, .. } => widen_assigned(body, env),
            Stmt::Return(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// W001 — dead ECV / unit / local
// ---------------------------------------------------------------------------

struct DeadCode;

impl LintRule for DeadCode {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "W001",
            severity: Severity::Warning,
            summary: "declared ECV, unit, or local binding never contributes to any result",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        let mut ecvs_read: BTreeSet<String> = BTreeSet::new();
        let mut units_used: BTreeSet<String> = BTreeSet::new();
        for f in cx.iface.fns.values() {
            ecvs_read.extend(f.ecvs_read());
            for s in &f.body {
                s.visit_exprs(&mut |e| {
                    if let Expr::Unit(u, _) = e {
                        units_used.insert(u.clone());
                    }
                });
            }
        }
        for name in cx.iface.ecvs.keys() {
            if !ecvs_read.contains(name) {
                out.push(diagnostic(
                    self.info(),
                    cx,
                    None,
                    cx.iface.spans.ecv(name),
                    format!("ECV `{name}` is declared but never read"),
                    Some("delete the declaration or wire the ECV into an energy expression"),
                ));
            }
        }
        for u in &cx.iface.units {
            if !units_used.contains(u) {
                out.push(diagnostic(
                    self.info(),
                    cx,
                    None,
                    cx.iface.spans.unit(u),
                    format!("unit `{u}` is declared but never emitted"),
                    Some("delete the declaration or emit the unit from an energy expression"),
                ));
            }
        }
        for (name, f) in &cx.iface.fns {
            self.dead_locals(cx, name, f, out);
        }
    }
}

impl DeadCode {
    fn dead_locals(&self, cx: &LintContext<'_>, name: &str, f: &FnDef, out: &mut Diagnostics) {
        let mut read: BTreeSet<String> = BTreeSet::new();
        for s in &f.body {
            s.visit_exprs(&mut |e| {
                if let Expr::Var(v) = e {
                    read.insert(v.clone());
                }
            });
        }
        let fs = cx.iface.spans.fn_spans(name);
        visit_stmts(
            &f.body,
            &fs.body,
            &mut |s, sp| {
                if let Stmt::Let(local, _) = s {
                    if !read.contains(local) {
                        out.push(diagnostic(
                            self.info(),
                            cx,
                            Some(name),
                            sp.span,
                            format!("local `{local}` is never used"),
                            None,
                        ));
                    }
                }
            },
            &mut |_, _| {},
        );
    }
}

// ---------------------------------------------------------------------------
// W002 — non-determinism outside an ECV declaration
// ---------------------------------------------------------------------------

struct Nondeterminism;

impl LintRule for Nondeterminism {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "W002",
            severity: Severity::Warning,
            summary: "non-deterministic construct where analyses need determinism",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        for (name, f) in &cx.iface.fns {
            let fs = cx.iface.spans.fn_spans(name);
            // Statement-level pass: ECVs in loop bounds, branches on
            // continuous ECVs in statement conditions.
            visit_stmts(
                &f.body,
                &fs.body,
                &mut |s, sp| match s {
                    Stmt::For { from, to, .. } => {
                        for (e, esp) in [(from, sp.expr(0)), (to, sp.expr(1))] {
                            visit_expr(e, esp, &mut |e, esp| {
                                if let Expr::Ecv(ecv) = e {
                                    out.push(diagnostic(
                                        self.info(),
                                        cx,
                                        Some(name),
                                        esp.span,
                                        format!(
                                            "ECV `{ecv}` makes the loop trip count non-deterministic"
                                        ),
                                        Some("bound the loop by a declared input and branch on the ECV inside the body"),
                                    ));
                                }
                            });
                        }
                    }
                    Stmt::If(c, _, _) | Stmt::While { cond: c, .. } => {
                        self.continuous_branch(cx, name, c, sp.expr(0), out);
                    }
                    _ => {}
                },
                &mut |_, _| {},
            );
            // Expression-level pass: branches on continuous ECVs in
            // if-expression conditions.
            visit_stmts(&f.body, &fs.body, &mut |_, _| {}, &mut |e, esp| {
                if let Expr::IfExpr(c, _, _) = e {
                    self.continuous_branch(cx, name, c, esp.child(0), out);
                }
            });
        }
    }
}

impl Nondeterminism {
    /// Branching on a continuous (non-enumerable) ECV defeats exact path
    /// enumeration: every sample takes its own path.
    fn continuous_branch(
        &self,
        cx: &LintContext<'_>,
        fn_name: &str,
        cond: &Expr,
        sp: &ExprSpans,
        out: &mut Diagnostics,
    ) {
        visit_expr(cond, sp, &mut |e, esp| {
            if let Expr::Ecv(name) = e {
                if let Some(decl) = cx.iface.ecvs.get(name) {
                    if decl.dist.support().is_none() {
                        out.push(diagnostic(
                            self.info(),
                            cx,
                            Some(fn_name),
                            esp.span,
                            format!(
                                "branch on continuous ECV `{name}` defeats exact path enumeration"
                            ),
                            Some("model the decision with a bernoulli/discrete ECV instead"),
                        ));
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// W003 — composition arity/shape mismatch
// ---------------------------------------------------------------------------

struct CompositionShape;

impl LintRule for CompositionShape {
    fn info(&self) -> RuleInfo {
        RuleInfo {
            id: "W003",
            severity: Severity::Warning,
            summary: "an extern declaration does not match a sibling provider's shape",
        }
    }

    fn check(&self, cx: &LintContext<'_>, out: &mut Diagnostics) {
        if cx.program.len() < 2 {
            return;
        }
        for provider in cx.program {
            if provider.name == cx.iface.name {
                continue;
            }
            let mut sigs = None;
            for (name, ext) in &cx.iface.externs {
                let Some(pf) = provider.fns.get(name) else {
                    continue;
                };
                let span = cx.iface.spans.extern_decl(name);
                if pf.params.len() != ext.arity {
                    out.push(diagnostic(
                        self.info(),
                        cx,
                        None,
                        span,
                        format!(
                            "extern `{name}` expects {} argument(s) but `{}::{name}` takes {}",
                            ext.arity,
                            provider.name,
                            pf.params.len()
                        ),
                        Some(
                            "align the arities before linking; `link` will reject this composition",
                        ),
                    ));
                    continue;
                }
                let sigs = sigs.get_or_insert_with(|| infer_interface(provider).0);
                if let Some(sig) = sigs.get(name) {
                    if matches!(sig.ret, Ty::Num | Ty::Bool) {
                        out.push(diagnostic(
                            self.info(),
                            cx,
                            None,
                            span,
                            format!(
                                "provider `{}::{name}` returns {}, but externs must supply energy",
                                provider.name,
                                sig.ret.name()
                            ),
                            Some("make the provider return an energy expression, then run compat analysis"),
                        ));
                    }
                }
            }
        }
    }
}
