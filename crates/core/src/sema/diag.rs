//! Structured diagnostics for the semantic analyzer.
//!
//! Every lint rule reports through [`Diagnostic`]: a stable rule id, a
//! severity, the interface (and usually function) it fired in, a `line:col`
//! [`Span`] into the original source when the interface was parsed, a
//! human-readable message, and an optional fix hint. [`Diagnostics`] is the
//! ordered collection with deterministic text and JSON renderings — the JSON
//! is hand-rolled (ei-core does not depend on serde_json) and byte-stable,
//! so CI can archive and diff lint reports.

use std::fmt;

use crate::span::Span;

/// How severe a diagnostic is.
///
/// Errors describe interfaces that will mislead or break downstream tooling
/// (wrong units, negative energy, undecidable worst case); warnings describe
/// interfaces that are suspicious but usable (`--deny warnings` promotes
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not disqualifying.
    Warning,
    /// The interface should not be trusted until fixed.
    Error,
}

impl Severity {
    /// Lowercase name used in both renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from a lint rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule id (`E001`, `W002`, ...).
    pub rule: &'static str,
    /// Severity the rule declared.
    pub severity: Severity,
    /// Name of the interface the finding is in.
    pub interface: String,
    /// Function the finding is in, when it is function-local.
    pub function: Option<String>,
    /// Source position (0:0 for programmatically built interfaces).
    pub span: Span,
    /// Human-readable description of the defect.
    pub message: String,
    /// Optional suggestion for fixing it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Renders the one-line text form (without the hint).
    pub fn text_line(&self) -> String {
        let mut loc = self.interface.clone();
        if let Some(f) = &self.function {
            loc.push_str("::");
            loc.push_str(f);
        }
        if self.span.is_none() {
            format!("{}[{}] {}: {}", self.severity, self.rule, loc, self.message)
        } else {
            format!(
                "{}[{}] {}:{}: {}",
                self.severity, self.rule, loc, self.span, self.message
            )
        }
    }
}

/// An ordered, deduplicated collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Absorbs another collection.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Sorts findings into the canonical order (interface, position, rule,
    /// message) and drops exact duplicates. Renderings are byte-stable only
    /// after this; the `check*` entry points call it before returning.
    pub fn finish(&mut self) {
        self.items.sort_by(|a, b| {
            (&a.interface, &a.function, a.span, a.rule, &a.message).cmp(&(
                &b.interface,
                &b.function,
                b.span,
                b.rule,
                &b.message,
            ))
        });
        self.items.dedup();
    }

    /// All findings, in insertion (or post-[`finish`](Self::finish)) order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Renders the human-readable report: one line per finding plus an
    /// indented hint line where a rule offered one, then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.text_line());
            out.push('\n');
            if let Some(h) = &d.hint {
                out.push_str("    hint: ");
                out.push_str(h);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Renders the machine-readable report as deterministic JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\n      \"rule\": {},", json_str(d.rule)));
            out.push_str(&format!(
                "\n      \"severity\": {},",
                json_str(d.severity.name())
            ));
            out.push_str(&format!(
                "\n      \"interface\": {},",
                json_str(&d.interface)
            ));
            match &d.function {
                Some(f) => out.push_str(&format!("\n      \"function\": {},", json_str(f))),
                None => out.push_str("\n      \"function\": null,"),
            }
            out.push_str(&format!("\n      \"line\": {},", d.span.line));
            out.push_str(&format!("\n      \"col\": {},", d.span.col));
            out.push_str(&format!("\n      \"message\": {},", json_str(&d.message)));
            match &d.hint {
                Some(h) => out.push_str(&format!("\n      \"hint\": {}", json_str(h))),
                None => out.push_str("\n      \"hint\": null"),
            }
            out.push_str("\n    }");
        }
        if !self.items.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"errors\": {},\n", self.error_count()));
        out.push_str(&format!("  \"warnings\": {}\n", self.warning_count()));
        out.push_str("}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, sev: Severity, line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: sev,
            interface: "t".into(),
            function: Some("f".into()),
            span: Span::new(line, 5),
            message: msg.into(),
            hint: None,
        }
    }

    #[test]
    fn counts_and_order() {
        let mut ds = Diagnostics::new();
        ds.push(diag("W001", Severity::Warning, 9, "later"));
        ds.push(diag("E001", Severity::Error, 2, "earlier"));
        ds.push(diag("E001", Severity::Error, 2, "earlier"));
        ds.finish();
        assert_eq!(ds.len(), 2, "exact duplicates collapse");
        assert_eq!(ds.error_count(), 1);
        assert_eq!(ds.warning_count(), 1);
        let first = ds.iter().next().unwrap();
        assert_eq!(first.span.line, 2, "sorted by position");
    }

    #[test]
    fn text_rendering_is_stable() {
        let mut ds = Diagnostics::new();
        let mut d = diag("E003", Severity::Error, 3, "possibly-negative energy");
        d.hint = Some("clamp the subtraction".into());
        ds.push(d);
        ds.finish();
        let text = ds.render_text();
        assert_eq!(
            text,
            "error[E003] t::f:3:5: possibly-negative energy\n    hint: clamp the subtraction\n1 error(s), 0 warning(s)\n"
        );
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let mut ds = Diagnostics::new();
        ds.push(diag("E001", Severity::Error, 1, "bad \"quote\""));
        ds.finish();
        let json = ds.render_json();
        assert!(json.contains("\"rule\": \"E001\""));
        assert!(json.contains("bad \\\"quote\\\""));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_report_renders() {
        let ds = Diagnostics::new();
        assert_eq!(ds.render_text(), "0 error(s), 0 warning(s)\n");
        assert!(ds.render_json().contains("\"diagnostics\": []"));
    }

    #[test]
    fn positionless_findings_omit_the_span() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic {
            rule: "W001",
            severity: Severity::Warning,
            interface: "t".into(),
            function: None,
            span: Span::NONE,
            message: "dead ECV".into(),
            hint: None,
        });
        let text = ds.render_text();
        assert!(text.starts_with("warning[W001] t: dead ECV\n"));
    }
}
