//! Abstract type lattice and unit-aware type inference for EIL.
//!
//! EIL values are numbers (counts, sizes, seconds — dimensionless scalars),
//! booleans, energies (Joules and abstract units), and records of numbers.
//! The interpreter enforces the distinction dynamically; this module proves
//! it statically so that rule **E001** can reject unit/dimension mismatches
//! (`3 + 5 mJ`, `energy * energy`, branches joining a count with an energy)
//! before an interface is ever evaluated.
//!
//! Inference is demand-based over the lattice `Unknown ⊑ {Num, Bool,
//! Energy}`: parameters start [`Ty::Unknown`] and are refined by use, and a
//! diagnostic fires only when two *known* types collide — so the analysis is
//! deliberately lenient (no false positives on polymorphic helpers) while
//! still catching every concrete mismatch. Functions are processed
//! callees-first so call sites check arguments against inferred callee
//! signatures; members of recursive cycles get unconstrained signatures
//! (rule E004 flags the cycle itself).

use std::collections::BTreeMap;

use crate::ast::{BinOp, Builtin, Expr, Stmt, UnOp};
use crate::ecv::DistSpec;
use crate::interface::Interface;
use crate::sema::diag::{Diagnostic, Diagnostics, Severity};
use crate::span::{ExprSpans, Span, StmtSpans};

/// The abstract type of an EIL expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Not yet constrained (bottom of the lattice).
    Unknown,
    /// A dimensionless number: count, size, ratio, seconds.
    Num,
    /// A boolean.
    Bool,
    /// An energy (Joules and/or abstract units).
    Energy,
}

impl Ty {
    /// Human-readable name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Ty::Unknown => "unknown",
            Ty::Num => "number",
            Ty::Bool => "boolean",
            Ty::Energy => "energy",
        }
    }

    /// True for `Num`, `Bool`, `Energy`.
    pub fn is_known(self) -> bool {
        self != Ty::Unknown
    }
}

/// Inferred signature of one interface function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSig {
    /// Per-parameter types, as refined by the function's own body.
    pub params: Vec<Ty>,
    /// Return type (join of all `return` statements).
    pub ret: Ty,
}

/// Infers signatures for every function and reports E001 conflicts.
///
/// Returns the signature table alongside the diagnostics; callers that only
/// need signatures (rule W003 typing a provider) can ignore the latter.
pub fn infer_interface(iface: &Interface) -> (BTreeMap<String, FnSig>, Diagnostics) {
    let mut sigs: BTreeMap<String, FnSig> = BTreeMap::new();
    let mut diags = Diagnostics::new();
    for name in topo_order(iface) {
        let f = &iface.fns[&name];
        let spans = iface.spans.fn_spans(&name);
        let mut inf = Inferencer {
            iface,
            sigs: &sigs,
            env: f.params.iter().map(|p| (p.clone(), Ty::Unknown)).collect(),
            fn_name: &name,
            diags: &mut diags,
            ret: Ty::Unknown,
        };
        inf.block(&f.body, &spans.body);
        let sig = FnSig {
            params: f
                .params
                .iter()
                .map(|p| inf.env.get(p).copied().unwrap_or(Ty::Unknown))
                .collect(),
            ret: inf.ret,
        };
        sigs.insert(name, sig);
    }
    (sigs, diags)
}

/// Function names in callees-first order (cycle members in DFS post-order,
/// so their call sites see no signature and stay unconstrained).
fn topo_order(iface: &Interface) -> Vec<String> {
    let graph = iface.call_graph();
    let mut order = Vec::new();
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    for name in graph.keys() {
        visit(name, &graph, &mut state, &mut order);
    }
    order
}

fn visit<'a>(
    name: &'a str,
    graph: &'a BTreeMap<String, Vec<String>>,
    state: &mut BTreeMap<&'a str, u8>,
    order: &mut Vec<String>,
) {
    if state.contains_key(name) {
        return;
    }
    state.insert(name, 1);
    if let Some(callees) = graph.get(name) {
        for c in callees {
            visit(c, graph, state, order);
        }
    }
    state.insert(name, 2);
    order.push(name.to_string());
}

/// Function names that participate in a call cycle (including direct
/// self-recursion), for rule E004.
pub fn recursive_fns(iface: &Interface) -> Vec<String> {
    let graph = iface.call_graph();
    let mut cyclic = Vec::new();
    // The graph is small (tens of functions); test each node for a path
    // back to itself.
    for start in graph.keys() {
        let mut stack: Vec<&str> = graph[start].iter().map(String::as_str).collect();
        let mut seen: Vec<&str> = Vec::new();
        let mut found = false;
        while let Some(n) = stack.pop() {
            if n == start {
                found = true;
                break;
            }
            if seen.contains(&n) {
                continue;
            }
            seen.push(n);
            if let Some(cs) = graph.get(n) {
                stack.extend(cs.iter().map(String::as_str));
            }
        }
        if found {
            cyclic.push(start.clone());
        }
    }
    cyclic
}

struct Inferencer<'a> {
    iface: &'a Interface,
    sigs: &'a BTreeMap<String, FnSig>,
    env: BTreeMap<String, Ty>,
    fn_name: &'a str,
    diags: &'a mut Diagnostics,
    ret: Ty,
}

impl<'a> Inferencer<'a> {
    fn report(&mut self, span: Span, message: String, hint: Option<String>) {
        self.diags.push(Diagnostic {
            rule: "E001",
            severity: Severity::Error,
            interface: self.iface.name.clone(),
            function: Some(self.fn_name.to_string()),
            span,
            message,
            hint,
        });
    }

    /// Records that a variable reference must have type `ty`, when the
    /// binding is still unconstrained.
    fn refine(&mut self, e: &Expr, ty: Ty) {
        if let Expr::Var(name) = e {
            if let Some(slot) = self.env.get_mut(name) {
                if *slot == Ty::Unknown {
                    *slot = ty;
                }
            }
        }
    }

    /// Infers `e` and requires it to be `what`-typed as `want`.
    fn demand(&mut self, e: &Expr, sp: &ExprSpans, want: Ty, what: &str) {
        let t = self.expr(e, sp);
        if t.is_known() && t != want {
            self.report(
                sp.span,
                format!("{what} must be {}, found {}", want.name(), t.name()),
                None,
            );
        } else if t == Ty::Unknown {
            self.refine(e, want);
        }
    }

    fn block(&mut self, stmts: &[Stmt], spans: &[StmtSpans]) {
        for (i, s) in stmts.iter().enumerate() {
            let sp = spans.get(i).unwrap_or(StmtSpans::none());
            self.stmt(s, sp);
        }
    }

    fn stmt(&mut self, s: &Stmt, sp: &StmtSpans) {
        match s {
            Stmt::Let(name, e) => {
                let t = self.expr(e, sp.expr(0));
                self.env.insert(name.clone(), t);
            }
            Stmt::Assign(name, e) => {
                let t = self.expr(e, sp.expr(0));
                let old = self.env.get(name).copied().unwrap_or(Ty::Unknown);
                if old.is_known() && t.is_known() && old != t {
                    self.report(
                        sp.span,
                        format!(
                            "reassignment changes `{name}` from {} to {}",
                            old.name(),
                            t.name()
                        ),
                        None,
                    );
                } else if old == Ty::Unknown {
                    self.env.insert(name.clone(), t);
                }
            }
            Stmt::If(c, then_b, else_b) => {
                self.demand(c, sp.expr(0), Ty::Bool, "if condition");
                self.block(then_b, sp.block(0));
                self.block(else_b, sp.block(1));
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                self.demand(from, sp.expr(0), Ty::Num, "loop start");
                self.demand(to, sp.expr(1), Ty::Num, "loop end");
                self.env.insert(var.clone(), Ty::Num);
                self.block(body, sp.block(0));
            }
            Stmt::While { cond, body, .. } => {
                self.demand(cond, sp.expr(0), Ty::Bool, "while condition");
                self.block(body, sp.block(0));
            }
            Stmt::Return(e) => {
                let t = self.expr(e, sp.expr(0));
                if self.ret.is_known() && t.is_known() && self.ret != t {
                    self.report(
                        sp.span,
                        format!("function returns both {} and {}", self.ret.name(), t.name()),
                        Some("all return statements must yield the same type".into()),
                    );
                } else if t.is_known() {
                    self.ret = t;
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr, sp: &ExprSpans) -> Ty {
        match e {
            Expr::Num(_) => Ty::Num,
            Expr::Bool(_) => Ty::Bool,
            Expr::Joules(_) | Expr::Unit(_, _) => Ty::Energy,
            Expr::Var(name) => self.env.get(name).copied().unwrap_or(Ty::Unknown),
            Expr::Ecv(name) => match self.iface.ecvs.get(name).map(|d| &d.dist) {
                Some(DistSpec::Bernoulli { .. }) => Ty::Bool,
                Some(_) => Ty::Num,
                None => Ty::Unknown,
            },
            Expr::Field(base, field) => {
                let bt = self.expr(base, sp.child(0));
                if bt.is_known() {
                    self.report(
                        sp.span,
                        format!("field `.{field}` accessed on {}, not a record", bt.name()),
                        None,
                    );
                }
                Ty::Num
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let t = self.expr(inner, sp.child(0));
                if t == Ty::Bool {
                    self.report(sp.span, "cannot negate a boolean".into(), None);
                    return Ty::Unknown;
                }
                t
            }
            Expr::Unary(UnOp::Not, inner) => {
                self.demand(inner, sp.child(0), Ty::Bool, "operand of `!`");
                Ty::Bool
            }
            Expr::Binary(op, a, b) => self.binary(*op, a, b, sp),
            Expr::Call(name, args) => self.call(name, args, sp),
            Expr::BuiltinCall(b, args) => self.builtin(*b, args, sp),
            Expr::IfExpr(c, t, f) => {
                self.demand(c, sp.child(0), Ty::Bool, "if condition");
                let tt = self.expr(t, sp.child(1));
                let ft = self.expr(f, sp.child(2));
                if tt.is_known() && ft.is_known() && tt != ft {
                    self.report(
                        sp.span,
                        format!(
                            "if-expression branches join {} with {}",
                            tt.name(),
                            ft.name()
                        ),
                        Some("both branches must yield the same type".into()),
                    );
                    return Ty::Unknown;
                }
                if tt.is_known() {
                    self.refine(f, tt);
                    tt
                } else {
                    self.refine(t, ft);
                    ft
                }
            }
        }
    }

    fn binary(&mut self, op: BinOp, a: &Expr, b: &Expr, sp: &ExprSpans) -> Ty {
        let sym = op.symbol();
        match op {
            BinOp::Add | BinOp::Sub => {
                let (at, bt) = (self.expr(a, sp.child(0)), self.expr(b, sp.child(1)));
                if at == Ty::Bool || bt == Ty::Bool {
                    self.report(sp.span, format!("cannot apply `{sym}` to booleans"), None);
                    return Ty::Unknown;
                }
                match (at, bt) {
                    (Ty::Unknown, Ty::Unknown) => Ty::Unknown,
                    (Ty::Unknown, t) => {
                        self.refine(a, t);
                        t
                    }
                    (t, Ty::Unknown) => {
                        self.refine(b, t);
                        t
                    }
                    (x, y) if x == y => x,
                    (x, y) => {
                        self.report(
                            sp.span,
                            format!("cannot apply `{sym}` to {} and {}", x.name(), y.name()),
                            Some("multiply the count by a per-item energy to convert it".into()),
                        );
                        Ty::Unknown
                    }
                }
            }
            BinOp::Mul => {
                let (at, bt) = (self.expr(a, sp.child(0)), self.expr(b, sp.child(1)));
                if at == Ty::Bool || bt == Ty::Bool {
                    self.report(sp.span, "cannot multiply booleans".into(), None);
                    return Ty::Unknown;
                }
                match (at, bt) {
                    (Ty::Energy, Ty::Energy) => {
                        self.report(
                            sp.span,
                            "cannot multiply energy by energy".into(),
                            Some("one operand must be a dimensionless number".into()),
                        );
                        Ty::Unknown
                    }
                    (Ty::Energy, _) => {
                        self.refine(b, Ty::Num);
                        Ty::Energy
                    }
                    (_, Ty::Energy) => {
                        self.refine(a, Ty::Num);
                        Ty::Energy
                    }
                    (Ty::Num, Ty::Num) => Ty::Num,
                    _ => Ty::Unknown,
                }
            }
            BinOp::Div => {
                let (at, bt) = (self.expr(a, sp.child(0)), self.expr(b, sp.child(1)));
                if at == Ty::Bool || bt == Ty::Bool {
                    self.report(sp.span, "cannot divide booleans".into(), None);
                    return Ty::Unknown;
                }
                match (at, bt) {
                    (Ty::Num, Ty::Energy) => {
                        self.report(sp.span, "cannot divide a number by an energy".into(), None);
                        Ty::Unknown
                    }
                    (Ty::Energy, Ty::Energy) => Ty::Num,
                    (Ty::Energy, Ty::Num) => Ty::Energy,
                    (Ty::Num, Ty::Num) => Ty::Num,
                    (Ty::Num, Ty::Unknown) => {
                        self.refine(b, Ty::Num);
                        Ty::Num
                    }
                    (Ty::Unknown, Ty::Energy) => {
                        // num/energy is ill-typed, so the dividend is energy.
                        self.refine(a, Ty::Energy);
                        Ty::Num
                    }
                    _ => Ty::Unknown,
                }
            }
            BinOp::Mod => {
                self.demand(a, sp.child(0), Ty::Num, "operand of `%`");
                self.demand(b, sp.child(1), Ty::Num, "operand of `%`");
                Ty::Num
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let (at, bt) = (self.expr(a, sp.child(0)), self.expr(b, sp.child(1)));
                let ordered = matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge);
                if ordered && (at == Ty::Bool || bt == Ty::Bool) {
                    self.report(sp.span, "cannot order booleans".into(), None);
                } else if at.is_known() && bt.is_known() && at != bt {
                    self.report(
                        sp.span,
                        format!("cannot compare {} with {}", at.name(), bt.name()),
                        None,
                    );
                } else if at.is_known() {
                    self.refine(b, at);
                } else if bt.is_known() {
                    self.refine(a, bt);
                }
                Ty::Bool
            }
            BinOp::And | BinOp::Or => {
                self.demand(a, sp.child(0), Ty::Bool, &format!("operand of `{sym}`"));
                self.demand(b, sp.child(1), Ty::Bool, &format!("operand of `{sym}`"));
                Ty::Bool
            }
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], sp: &ExprSpans) -> Ty {
        if self.iface.externs.contains_key(name) {
            // Extern interfaces return energy by contract; their parameter
            // types are the provider's business.
            for (i, a) in args.iter().enumerate() {
                self.expr(a, sp.child(i));
            }
            return Ty::Energy;
        }
        let sig = self.sigs.get(name).cloned();
        for (i, a) in args.iter().enumerate() {
            let at = self.expr(a, sp.child(i));
            let want = sig
                .as_ref()
                .and_then(|s| s.params.get(i).copied())
                .unwrap_or(Ty::Unknown);
            if at.is_known() && want.is_known() && at != want {
                self.report(
                    sp.child(i).span,
                    format!(
                        "argument {} of `{name}` is {}, expected {}",
                        i + 1,
                        at.name(),
                        want.name()
                    ),
                    None,
                );
            } else if at == Ty::Unknown && want.is_known() {
                self.refine(a, want);
            }
        }
        sig.map(|s| s.ret).unwrap_or(Ty::Unknown)
    }

    fn builtin(&mut self, b: Builtin, args: &[Expr], sp: &ExprSpans) -> Ty {
        match b {
            Builtin::Min | Builtin::Max => {
                let (at, bt) = (
                    self.expr(&args[0], sp.child(0)),
                    self.expr(&args[1], sp.child(1)),
                );
                if at == Ty::Bool || bt == Ty::Bool {
                    self.report(
                        sp.span,
                        format!("cannot apply `{}` to booleans", b.name()),
                        None,
                    );
                    return Ty::Unknown;
                }
                match (at, bt) {
                    (Ty::Unknown, t) => {
                        self.refine(&args[0], t);
                        t
                    }
                    (t, Ty::Unknown) => {
                        self.refine(&args[1], t);
                        t
                    }
                    (x, y) if x == y => x,
                    (x, y) => {
                        self.report(
                            sp.span,
                            format!(
                                "cannot apply `{}` to {} and {}",
                                b.name(),
                                x.name(),
                                y.name()
                            ),
                            None,
                        );
                        Ty::Unknown
                    }
                }
            }
            Builtin::Joules => {
                self.demand(&args[0], sp.child(0), Ty::Num, "argument of `joules`");
                Ty::Energy
            }
            _ => {
                for (i, a) in args.iter().enumerate() {
                    self.demand(
                        a,
                        sp.child(i),
                        Ty::Num,
                        &format!("argument of `{}`", b.name()),
                    );
                }
                Ty::Num
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diags_for(src: &str) -> Diagnostics {
        let iface = parse(src).unwrap();
        let (_, mut d) = infer_interface(&iface);
        d.finish();
        d
    }

    #[test]
    fn clean_interface_has_no_conflicts() {
        let d = diags_for(
            "interface t { unit relu;
                fn f(n) { return 2 relu * n + 5 mJ; }
                fn g(n) { return f(n) + f(n + 1); } }",
        );
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn adding_count_to_energy_is_e001() {
        // `n + 1` pins `n` to number; adding an energy is then a conflict.
        let d = diags_for("interface t { fn f(n) { return n + 1 + 5 mJ; } }");
        assert_eq!(d.len(), 1);
        let diag = d.iter().next().unwrap();
        assert_eq!(diag.rule, "E001");
        assert!(
            diag.message.contains("number and energy"),
            "{}",
            diag.message
        );
        assert!(!diag.span.is_none());
    }

    #[test]
    fn unconstrained_params_refine_instead_of_erroring() {
        // `n` alone could be an energy passed by a caller, so `n + 5 mJ`
        // refines rather than fires.
        let d = diags_for("interface t { fn f(n) { return n + 5 mJ; } }");
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn energy_times_energy_is_e001() {
        let d = diags_for("interface t { fn f() { return 1 J * 2 J; } }");
        assert_eq!(d.iter().filter(|d| d.rule == "E001").count(), 1);
    }

    #[test]
    fn branch_join_mismatch_is_e001() {
        let d = diags_for("interface t { fn f(c) { return if c { 1 J } else { 2 }; } }");
        assert_eq!(d.len(), 1);
        assert!(d.iter().next().unwrap().message.contains("branches join"));
    }

    #[test]
    fn refinement_flows_through_calls() {
        // `g` refines its parameter to energy; calling it with a count is
        // then a conflict at the call site.
        let d = diags_for(
            "interface t {
                fn g(e) { return e + 1 J; }
                fn f() { return g(3); } }",
        );
        assert_eq!(d.len(), 1);
        assert!(d
            .iter()
            .next()
            .unwrap()
            .message
            .contains("argument 1 of `g`"));
    }

    #[test]
    fn extern_calls_type_as_energy() {
        let d = diags_for(
            "interface t { extern fn hw(x);
                fn f(n) { return hw(n) + 1 J; } }",
        );
        assert!(d.is_empty(), "{}", d.render_text());
        let iface = parse(
            "interface t { extern fn hw(x);
                fn f(n) { return hw(n) + (n + 1); } }",
        )
        .unwrap();
        let (_, d) = infer_interface(&iface);
        assert_eq!(d.len(), 1, "extern result + count must conflict");
    }

    #[test]
    fn signatures_are_inferred() {
        let iface = parse(
            "interface t {
                fn f(n) { return n * 5 mJ; }
                fn g() { return true; } }",
        )
        .unwrap();
        let (sigs, d) = infer_interface(&iface);
        assert!(d.is_empty());
        assert_eq!(sigs["f"].params, vec![Ty::Num]);
        assert_eq!(sigs["f"].ret, Ty::Energy);
        assert_eq!(sigs["g"].ret, Ty::Bool);
    }

    #[test]
    fn recursion_is_detected_not_typed() {
        let iface = parse(
            "interface t {
                fn odd(n) { return if n == 0 { 0 } else { even(n - 1) }; }
                fn even(n) { return if n == 0 { 1 } else { odd(n - 1) }; } }",
        )
        .unwrap();
        let rec = recursive_fns(&iface);
        assert_eq!(rec, vec!["even".to_string(), "odd".to_string()]);
        let (_, d) = infer_interface(&iface);
        assert!(
            d.is_empty(),
            "cycles stay unconstrained: {}",
            d.render_text()
        );
    }

    #[test]
    fn comparisons_and_logic_demand_types() {
        let d = diags_for("interface t { fn f(n) { return 1 J < 2; } }");
        assert_eq!(d.len(), 1);
        let d = diags_for("interface t { fn f(b) { return b && (1 < 2); } }");
        assert!(d.is_empty());
        let d = diags_for("interface t { fn f() { return true < false; } }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn field_access_on_scalar_is_e001() {
        let d = diags_for("interface t { fn f(x) { return (x + 1).size; } }");
        assert_eq!(d.len(), 1);
        assert!(d.iter().next().unwrap().message.contains("field `.size`"));
    }
}
