//! `eil-sema`: static semantic analysis and linting for energy interfaces.
//!
//! §4.1 of the paper argues that energy interfaces, being programs, are
//! amenable to static analysis. The rest of [`analysis`](crate::analysis)
//! assumes a *well-formed* interface; this module is the gatekeeper that
//! decides well-formedness. It runs a pluggable set of [`LintRule`]s —
//! unit/dimension checking over an abstract type lattice ([`types`]),
//! calibration completeness, interval-proved non-negativity, loop
//! boundedness, dead-declaration and determinism hygiene, and composition
//! shape checks — and reports structured [`Diagnostics`] with stable rule
//! ids and real `line:col` positions (when the interface came from the
//! parser).
//!
//! Entry points:
//!
//! - [`check`] — lint one interface with default options (empty
//!   calibration: every abstract unit is reported uncalibrated).
//! - [`check_with`] — lint one interface against a [`Calibration`].
//! - [`check_program`] — lint a multi-interface program; cross-interface
//!   rules (W003) see sibling providers.
//!
//! ```
//! use ei_core::parser::parse;
//! use ei_core::sema;
//!
//! let iface = parse("interface t { fn f(n) { return n + 1 + 5 mJ; } }").unwrap();
//! let diags = sema::check(&iface);
//! assert_eq!(diags.iter().next().unwrap().rule, "E001");
//! ```

pub mod diag;
pub mod rules;
pub mod types;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use rules::{default_rules, rule_table, LintRule, RuleInfo};
pub use types::{FnSig, Ty};

use crate::interface::Interface;
use crate::units::Calibration;

/// Options shared by every rule in one lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Joule costs of abstract units; units absent from here trip E002.
    pub calibration: Calibration,
}

impl LintOptions {
    /// Options with the given calibration.
    pub fn with_calibration(calibration: Calibration) -> Self {
        LintOptions { calibration }
    }
}

/// Everything a rule may look at while checking one interface.
pub struct LintContext<'a> {
    /// The interface under analysis.
    pub iface: &'a Interface,
    /// The whole program (contains `iface`; length 1 for single-interface
    /// runs). Cross-interface rules scan the siblings.
    pub program: &'a [Interface],
    /// Run-wide options.
    pub options: &'a LintOptions,
}

/// Lints one interface with default options.
///
/// The default calibration is empty, so every abstract unit the interface
/// emits is reported as uncalibrated (E002) — appropriate for vetting a
/// bare `.eil` file. Use [`check_with`] when a calibration exists.
pub fn check(iface: &Interface) -> Diagnostics {
    check_with(iface, &LintOptions::default())
}

/// Lints one interface against explicit options.
pub fn check_with(iface: &Interface, options: &LintOptions) -> Diagnostics {
    check_program(std::slice::from_ref(iface), options)
}

/// Lints every interface of a program, with cross-interface rules enabled.
pub fn check_program(program: &[Interface], options: &LintOptions) -> Diagnostics {
    let rules = default_rules();
    let mut out = Diagnostics::new();
    for iface in program {
        let cx = LintContext {
            iface,
            program,
            options,
        };
        for rule in &rules {
            rule.check(&cx, &mut out);
        }
    }
    out.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_all};
    use crate::units::Energy;

    fn cal(pairs: &[(&str, f64)]) -> LintOptions {
        LintOptions::with_calibration(Calibration::from_pairs(
            pairs
                .iter()
                .map(|(u, j)| (u.to_string(), Energy::joules(*j))),
        ))
    }

    #[test]
    fn clean_interface_lints_clean() {
        let iface = parse(
            r#"
            interface cache {
                unit probe;
                ecv hit: bernoulli(0.8);
                fn lookup(len) {
                    return (if hit { 5 mJ } else { 100 mJ }) * len + 1 probe;
                }
            }
            "#,
        )
        .unwrap();
        let d = check_with(&iface, &cal(&[("probe", 1e-6)]));
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn default_check_reports_uncalibrated_units() {
        let iface = parse("interface t { unit relu; fn f() { return 1 relu; } }").unwrap();
        let d = check(&iface);
        assert_eq!(d.iter().filter(|x| x.rule == "E002").count(), 1);
        let d = check_with(&iface, &cal(&[("relu", 2e-3)]));
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn every_rule_fires_on_its_defect() {
        // E001.
        let d = check(&parse("interface t { fn f(n) { return n + 1 + 1 J; } }").unwrap());
        assert!(d.iter().any(|x| x.rule == "E001"));
        // E003: a parameterless function with a proven-negative result.
        let d = check(&parse("interface t { fn f() { return 1 J - 2 J; } }").unwrap());
        assert!(d.iter().any(|x| x.rule == "E003"), "{}", d.render_text());
        // E004: loop bound with no declared range.
        let d = check(
            &parse(
                "interface t { fn f(n) { let e = 0 J; for i in 0..n { e = e + 1 J; } return e; } }",
            )
            .unwrap(),
        );
        assert!(d.iter().any(|x| x.rule == "E004"), "{}", d.render_text());
        // E004: recursion.
        let d = check(&parse("interface t { fn f(n) { return f(n); } }").unwrap());
        assert!(d.iter().any(|x| x.rule == "E004"));
        // W001: dead ECV.
        let d = check(
            &parse("interface t { ecv hit: bernoulli(0.5); fn f() { return 1 J; } }").unwrap(),
        );
        assert!(d.iter().any(|x| x.rule == "W001"));
        // W002: ECV in a loop bound.
        let d = check(
            &parse(
                "interface t { ecv n: discrete(1: 0.5, 4: 0.5);
                   fn f() { let e = 0 J; for i in 0..ecv(n) { e = e + 1 J; } return e; } }",
            )
            .unwrap(),
        );
        assert!(d.iter().any(|x| x.rule == "W002"), "{}", d.render_text());
    }

    #[test]
    fn bounded_loops_do_not_fire_e004() {
        // The bound is declared via input ranges on the caller and flows to
        // the callee through the call site.
        let src = "interface t {
            fn entry(n) { return work(n); }
            fn work(m) { let e = 0 J; for i in 0..m { e = e + 1 mJ; } return e; }
        }";
        let mut iface = parse(src).unwrap();
        iface.set_input_spec(
            "entry",
            crate::interface::InputSpec::new().range("n", 1.0, 64.0),
        );
        let d = check(&iface);
        assert!(!d.iter().any(|x| x.rule == "E004"), "{}", d.render_text());
    }

    #[test]
    fn check_program_flags_composition_mismatches() {
        let ifaces = parse_all(
            r#"
            interface upper {
                extern fn op(a, b);
                fn f(x) { return op(x, x); }
            }
            interface provider {
                fn op(a) { return a * 2; }
            }
            "#,
        )
        .unwrap();
        let d = check_program(&ifaces, &LintOptions::default());
        let w003: Vec<_> = d.iter().filter(|x| x.rule == "W003").collect();
        assert_eq!(w003.len(), 1, "{}", d.render_text());
        assert!(w003[0].message.contains("expects 2 argument(s)"));

        // Matching arity but a count-valued provider is a shape mismatch.
        let ifaces = parse_all(
            r#"
            interface upper {
                extern fn op(a);
                fn f(x) { return op(x); }
            }
            interface provider {
                fn op(a) { return a + 2; }
            }
            "#,
        )
        .unwrap();
        let d = check_program(&ifaces, &LintOptions::default());
        assert!(
            d.iter()
                .any(|x| x.rule == "W003" && x.message.contains("returns number")),
            "{}",
            d.render_text()
        );
    }

    #[test]
    fn diagnostics_point_at_real_positions() {
        let src = "interface t {\n    fn f(n) {\n        return n + 1 + 5 mJ;\n    }\n}\n";
        let iface = parse(src).unwrap();
        let d = check(&iface);
        let e001 = d.iter().find(|x| x.rule == "E001").unwrap();
        assert_eq!(e001.span.line, 3);
        assert_eq!(e001.span.col, 22, "anchored at the second `+` operator");
    }

    #[test]
    fn rule_table_is_complete_and_ordered() {
        let table = rule_table();
        let ids: Vec<&str> = table.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec!["E001", "E002", "E003", "E004", "W001", "W002", "W003"]
        );
        assert!(table
            .iter()
            .all(|r| (r.id.starts_with('E')) == (r.severity == Severity::Error)));
    }
}
