//! `eic` — the energy-interface compiler/runner CLI.
//!
//! ```text
//! eic check  <file.eil>                      parse + validate
//! eic lint   <file.eil> [flags]              semantic analysis + lint rules
//! eic fmt    <file.eil>                      pretty-print to stdout
//! eic eval   <file.eil> <fn> [k=v...]        evaluate (exact or Monte Carlo)
//! eic paths  <file.eil> <fn> [k=v...]        per-path energies and probabilities
//! eic bound  <file.eil> <fn> [k=lo..hi...]   sound worst-case bound
//! eic certify <file.eil> [--fn f k=lo..hi...] sound bound + monotonicity certificate
//! ```
//!
//! Scalar arguments are `name=3.5`; record fields are `req.size=64` (grouped
//! into a record per prefix). `--seed N` and `--samples N` tune Monte Carlo;
//! `--cal unit=joules` calibrates an abstract unit (repeatable).
//!
//! `lint` accepts `--deny warnings` (warnings fail the run), `--format
//! json|text`, and repeatable `--cal unit=joules` entries so rule E002 can
//! see the deployment's calibration. The file may contain several
//! interfaces; cross-interface rules (W003) check them against each other.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ei_core::analysis::cert::certify;
use ei_core::analysis::paths::enumerate_paths;
use ei_core::analysis::worst_case::worst_case;
use ei_core::ecv::EcvEnv;
use ei_core::interface::{InputSpec, Interface};
use ei_core::interp::{enumerate_exact, monte_carlo, EvalConfig};
use ei_core::parser::{parse, parse_all};
use ei_core::pretty::print_interface;
use ei_core::sema;
use ei_core::units::Calibration;
use ei_core::value::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("eic: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "check" => {
            let iface = load(args.get(1).ok_or_else(usage)?)?;
            println!(
                "ok: interface `{}` — {} function(s), {} ECV(s), {} unit(s), {} extern(s)",
                iface.name,
                iface.fns.len(),
                iface.ecvs.len(),
                iface.units.len(),
                iface.externs.len()
            );
            Ok(())
        }
        "lint" => {
            let report = lint(&args[1..])?;
            print!("{report}");
            Ok(())
        }
        "fmt" => {
            let iface = load(args.get(1).ok_or_else(usage)?)?;
            print!("{}", print_interface(&iface));
            Ok(())
        }
        "eval" => {
            let iface = load(args.get(1).ok_or_else(usage)?)?;
            let func = args.get(2).ok_or_else(usage)?;
            let (vals, seed, samples, cal) = parse_args(&iface, func, &args[3..])?;
            let env = EcvEnv::from_decls(&iface.ecvs);
            let cfg = EvalConfig {
                calibration: cal,
                ..EvalConfig::default()
            };
            let dist = match enumerate_exact(&iface, func, &vals, &env, 4096, &cfg) {
                Ok(d) => d,
                Err(ei_core::Error::Analysis { .. }) => {
                    monte_carlo(&iface, func, &vals, &env, samples, seed, &cfg)
                        .map_err(|e| e.to_string())?
                }
                Err(e) => return Err(e.to_string()),
            };
            println!("expected : {}", dist.mean());
            println!("min..max : {} .. {}", dist.min(), dist.max());
            println!(
                "p5..p95  : {} .. {}",
                dist.quantile(0.05),
                dist.quantile(0.95)
            );
            Ok(())
        }
        "paths" => {
            let iface = load(args.get(1).ok_or_else(usage)?)?;
            let func = args.get(2).ok_or_else(usage)?;
            let (vals, _, _, cal) = parse_args(&iface, func, &args[3..])?;
            let env = EcvEnv::from_decls(&iface.ecvs);
            let cfg = EvalConfig {
                calibration: cal,
                ..EvalConfig::default()
            };
            let profile = enumerate_paths(&iface, func, &vals, &env, 4096, &cfg)
                .map_err(|e| e.to_string())?;
            print!("{}", profile.render());
            println!("expected: {}", profile.expected_energy());
            Ok(())
        }
        "bound" => {
            let iface = load(args.get(1).ok_or_else(usage)?)?;
            let func = args.get(2).ok_or_else(usage)?;
            let mut spec = InputSpec::new();
            for a in &args[3..] {
                let (path, range) = a
                    .split_once('=')
                    .ok_or_else(|| format!("expected k=lo..hi, got `{a}`"))?;
                let (lo, hi) = range
                    .split_once("..")
                    .ok_or_else(|| format!("expected lo..hi in `{a}`"))?;
                let lo: f64 = lo.parse().map_err(|_| format!("bad number in `{a}`"))?;
                let hi: f64 = hi.parse().map_err(|_| format!("bad number in `{a}`"))?;
                if lo > hi {
                    return Err(format!("empty range in `{a}`: {lo} > {hi}"));
                }
                spec = spec.range(path, lo, hi);
            }
            let bound = worst_case(&iface, func, &spec, &Calibration::empty())
                .map_err(|e| e.to_string())?;
            println!("worst-case bound: {} .. {}", bound.lower, bound.upper);
            Ok(())
        }
        "certify" => {
            let json = run_certify(&args[1..])?;
            println!("{json}");
            Ok(())
        }
        _ => Err(usage()),
    }
}

/// Runs the semantic analyzer over every interface in the given `.eil`
/// file and renders the diagnostics. Flags and the file path may appear
/// in any order. Returns `Err` (→ exit failure) when any error fires,
/// or — under `--deny warnings` — when any warning fires.
fn lint(raw: &[String]) -> Result<String, String> {
    let mut deny_warnings = false;
    let mut json = false;
    let mut cal = Calibration::empty();
    let mut path: Option<&str> = None;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny expects `warnings`, got `{}`",
                        other.unwrap_or("")
                    ))
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return Err(format!(
                        "--format expects `json` or `text`, got `{}`",
                        other.unwrap_or("")
                    ))
                }
            },
            "--cal" => {
                let spec = it.next().ok_or("--cal needs unit=joules")?;
                let (unit, j) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--cal expects unit=joules, got `{spec}`"))?;
                let j: f64 = j.parse().map_err(|_| format!("bad number in `{spec}`"))?;
                cal.set(unit, ei_core::units::Energy::joules(j));
            }
            other if other.starts_with("--") => {
                return Err(format!("lint: unknown flag `{other}`"))
            }
            other => {
                if let Some(first) = path {
                    return Err(format!("lint: two input files (`{first}` and `{other}`)"));
                }
                path = Some(other);
            }
        }
    }
    let path = path.ok_or_else(usage)?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse_all(&src).map_err(|e| format!("{path}: {e}"))?;
    let opts = sema::LintOptions::with_calibration(cal);
    let diags = sema::check_program(&program, &opts);
    let report = if json {
        diags.render_json()
    } else {
        diags.render_text()
    };
    if diags.error_count() > 0 || (deny_warnings && diags.warning_count() > 0) {
        // Print the report before failing so the diagnostics reach stdout.
        print!("{report}");
        return Err(format!(
            "lint failed: {} error(s), {} warning(s)",
            diags.error_count(),
            diags.warning_count()
        ));
    }
    Ok(report)
}

/// `eic certify <file.eil> [--fn f] [k=lo..hi...] [--cal unit=J]`.
///
/// With `--fn f`, the `k=lo..hi` ranges declare `f`'s input space before
/// certifying (repeat the whole invocation per function to certify
/// several). Without `--fn`, only zero-parameter functions certify —
/// a bound needs a declared domain. The certificate prints as canonical
/// JSON: byte-for-byte reproducible for the same interface and spec.
fn run_certify(raw: &[String]) -> Result<String, String> {
    let mut cal = Calibration::empty();
    let mut func: Option<&str> = None;
    let mut ranges: Vec<(String, f64, f64)> = Vec::new();
    let mut path: Option<&str> = None;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fn" => {
                func = Some(it.next().ok_or("--fn needs a function name")?);
            }
            "--cal" => {
                let spec = it.next().ok_or("--cal needs unit=joules")?;
                let (unit, j) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--cal expects unit=joules, got `{spec}`"))?;
                let j: f64 = j.parse().map_err(|_| format!("bad number in `{spec}`"))?;
                cal.set(unit, ei_core::units::Energy::joules(j));
            }
            other if other.starts_with("--") => {
                return Err(format!("certify: unknown flag `{other}`"))
            }
            other if other.contains("..") => {
                let (key, range) = other
                    .split_once('=')
                    .ok_or_else(|| format!("expected k=lo..hi, got `{other}`"))?;
                let (lo, hi) = range
                    .split_once("..")
                    .ok_or_else(|| format!("expected lo..hi in `{other}`"))?;
                let lo: f64 = lo.parse().map_err(|_| format!("bad number in `{other}`"))?;
                let hi: f64 = hi.parse().map_err(|_| format!("bad number in `{other}`"))?;
                if lo > hi {
                    return Err(format!("empty range in `{other}`: {lo} > {hi}"));
                }
                ranges.push((key.to_string(), lo, hi));
            }
            other => {
                if let Some(first) = path {
                    return Err(format!(
                        "certify: two input files (`{first}` and `{other}`)"
                    ));
                }
                path = Some(other);
            }
        }
    }
    let mut iface = load(path.ok_or_else(usage)?)?;
    match func {
        Some(f) => {
            iface.get_fn(f).map_err(|e| e.to_string())?;
            let mut spec = InputSpec::new();
            for (key, lo, hi) in &ranges {
                spec = spec.range(key.clone(), *lo, *hi);
            }
            iface.set_input_spec(f, spec);
        }
        None if !ranges.is_empty() => {
            return Err("certify: k=lo..hi ranges need --fn <name>".to_string());
        }
        None => {}
    }
    let cert = certify(&iface, &cal).map_err(|e| e.to_string())?;
    if cert.fns.is_empty() {
        return Err(
            "certify: nothing to certify — declare a domain with --fn f k=lo..hi \
             (only zero-parameter functions certify without one)"
                .to_string(),
        );
    }
    Ok(cert.to_canonical_json())
}

fn load(path: &str) -> Result<Interface, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

/// Parses `k=v` / `rec.field=v` argument bindings against `func`'s
/// parameter list, plus the `--seed` / `--samples` flags.
fn parse_args(
    iface: &Interface,
    func: &str,
    raw: &[String],
) -> Result<(Vec<Value>, u64, usize, Calibration), String> {
    let f = iface.get_fn(func).map_err(|e| e.to_string())?;
    let mut scalars: BTreeMap<String, f64> = BTreeMap::new();
    let mut records: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut seed = 0u64;
    let mut samples = 10_000usize;
    let mut cal = Calibration::empty();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            seed = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("--seed needs a number")?;
            continue;
        }
        if a == "--samples" {
            samples = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("--samples needs a number")?;
            continue;
        }
        if a == "--cal" {
            let spec = it.next().ok_or("--cal needs unit=joules")?;
            let (unit, j) = spec
                .split_once('=')
                .ok_or_else(|| format!("--cal expects unit=joules, got `{spec}`"))?;
            let j: f64 = j.parse().map_err(|_| format!("bad number in `{spec}`"))?;
            cal.set(unit, ei_core::units::Energy::joules(j));
            continue;
        }
        let (key, v) = a
            .split_once('=')
            .ok_or_else(|| format!("expected k=v, got `{a}`"))?;
        let v: f64 = v.parse().map_err(|_| format!("bad number in `{a}`"))?;
        match key.split_once('.') {
            Some((rec, field)) => {
                records
                    .entry(rec.to_string())
                    .or_default()
                    .insert(field.to_string(), v);
            }
            None => {
                scalars.insert(key.to_string(), v);
            }
        }
    }
    let mut vals = Vec::new();
    for p in &f.params {
        if let Some(v) = scalars.get(p) {
            vals.push(Value::Num(*v));
        } else if let Some(fields) = records.get(p) {
            vals.push(Value::num_record(
                fields.iter().map(|(k, v)| (k.clone(), *v)),
            ));
        } else {
            return Err(format!("missing argument for parameter `{p}` of `{func}`"));
        }
    }
    Ok((vals, seed, samples, cal))
}

fn usage() -> String {
    "usage: eic <check|lint|fmt|eval|paths|bound|certify> <file.eil> [fn] [args...]\n\
     \x20 lint args:        [--deny warnings] [--format json|text] [--cal unit=J]\n\
     \x20 eval/paths args:  name=3.5  req.size=64  [--seed N] [--samples N] [--cal unit=J]\n\
     \x20 bound args:       name=lo..hi  req.size=lo..hi\n\
     \x20 certify args:     [--fn f name=lo..hi...] [--cal unit=J]"
        .to_string()
}
