//! Error types for the EIL language, interpreter, and analyses.

use std::fmt;

/// Any error produced while parsing, linking, evaluating, or analysing an
/// energy interface.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A lexical error at a source position.
    Lex { line: u32, col: u32, msg: String },
    /// A syntax error at a source position.
    Parse { line: u32, col: u32, msg: String },
    /// A name (function, variable, ECV, unit) could not be resolved.
    Unresolved { kind: NameKind, name: String },
    /// A name was defined more than once.
    Duplicate { kind: NameKind, name: String },
    /// A call had the wrong number of arguments.
    Arity {
        func: String,
        expected: usize,
        got: usize,
    },
    /// A runtime type mismatch (e.g. adding a boolean to an energy value).
    Type { expected: &'static str, got: String },
    /// The interpreter exhausted its fuel budget.
    FuelExhausted { limit: u64 },
    /// Call depth exceeded the interpreter's stack limit.
    StackOverflow { limit: usize },
    /// A `while` loop exceeded its declared bound.
    BoundExceeded { bound: u64 },
    /// Division by zero (or modulo by zero) during evaluation.
    DivisionByZero,
    /// A numeric result was not finite (overflow, NaN).
    NonFinite { context: String },
    /// An abstract unit had no calibration when one was required.
    Uncalibrated { unit: String },
    /// An ECV declaration or distribution parameter was invalid.
    BadDistribution { name: String, msg: String },
    /// An analysis could not proceed (e.g. a loop bound too large to unroll).
    Analysis { msg: String },
    /// A compatibility check failed; carries a human-readable explanation.
    Incompatible { msg: String },
    /// Linking failed (arity mismatch between extern and provider, etc.).
    Link { msg: String },
    /// An interface input did not match the function's input schema.
    BadInput { msg: String },
}

/// The kind of name involved in a resolution or duplication error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    /// A function defined in or linked into an interface.
    Function,
    /// A local variable or parameter.
    Variable,
    /// An energy-critical variable.
    Ecv,
    /// An abstract energy unit.
    Unit,
    /// A record field.
    Field,
    /// An interface registered in a registry or stack.
    Interface,
}

impl fmt::Display for NameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NameKind::Function => "function",
            NameKind::Variable => "variable",
            NameKind::Ecv => "ECV",
            NameKind::Unit => "unit",
            NameKind::Field => "field",
            NameKind::Interface => "interface",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, col, msg } => {
                write!(f, "lex error at {line}:{col}: {msg}")
            }
            Error::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::Unresolved { kind, name } => {
                write!(f, "unresolved {kind} `{name}`")
            }
            Error::Duplicate { kind, name } => {
                write!(f, "duplicate {kind} `{name}`")
            }
            Error::Arity {
                func,
                expected,
                got,
            } => write!(
                f,
                "function `{func}` expects {expected} argument(s), got {got}"
            ),
            Error::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            Error::FuelExhausted { limit } => {
                write!(f, "evaluation exceeded fuel budget of {limit} steps")
            }
            Error::StackOverflow { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            Error::BoundExceeded { bound } => {
                write!(f, "while loop exceeded declared bound {bound}")
            }
            Error::DivisionByZero => f.write_str("division by zero"),
            Error::NonFinite { context } => {
                write!(f, "non-finite numeric result in {context}")
            }
            Error::Uncalibrated { unit } => {
                write!(f, "abstract unit `{unit}` has no Joule calibration")
            }
            Error::BadDistribution { name, msg } => {
                write!(f, "invalid distribution for `{name}`: {msg}")
            }
            Error::Analysis { msg } => write!(f, "analysis error: {msg}"),
            Error::Incompatible { msg } => write!(f, "incompatible: {msg}"),
            Error::Link { msg } => write!(f, "link error: {msg}"),
            Error::BadInput { msg } => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
