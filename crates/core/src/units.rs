//! Physical and abstract energy quantities.
//!
//! The paper (§3) allows an energy interface to return energy "in Joules,
//! Watt-seconds, etc., or in abstract energy units, such as 'energy for a 2D
//! convolution' or 'energy for a rectified linear unit (ReLU)'". We therefore
//! represent an energy value as an [`EnergyVec`]: a Joule component plus a
//! sparse linear combination of named abstract units. A [`Calibration`] maps
//! abstract units to Joules when absolute numbers are needed.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// An amount of energy in Joules.
///
/// A thin newtype over `f64`; negative values are representable (they arise
/// transiently in arithmetic) but interfaces are expected to return
/// non-negative energy.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(pub f64);

impl Energy {
    /// Zero Joules.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from Joules.
    pub fn joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from millijoules.
    pub fn millijoules(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    pub fn microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    pub fn nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    pub fn picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Creates an energy from kilojoules.
    pub fn kilojoules(kj: f64) -> Self {
        Energy(kj * 1e3)
    }

    /// Creates an energy from watt-hours.
    pub fn watt_hours(wh: f64) -> Self {
        Energy(wh * 3600.0)
    }

    /// The value in Joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns true if the value is finite (not NaN or infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the maximum of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Returns the minimum of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Relative difference `|self - other| / |other|`; infinite when `other`
    /// is zero and the values differ.
    pub fn relative_error(self, other: Energy) -> f64 {
        if other.0 == 0.0 {
            if self.0 == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((self.0 - other.0) / other.0).abs()
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Ratio of two energies (dimensionless).
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl std::iter::Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        let a = j.abs();
        if a == 0.0 {
            write!(f, "0 J")
        } else if a >= 1e3 {
            write!(f, "{:.4} kJ", j / 1e3)
        } else if a >= 1.0 {
            write!(f, "{j:.4} J")
        } else if a >= 1e-3 {
            write!(f, "{:.4} mJ", j * 1e3)
        } else if a >= 1e-6 {
            write!(f, "{:.4} uJ", j * 1e6)
        } else if a >= 1e-9 {
            write!(f, "{:.4} nJ", j * 1e9)
        } else {
            write!(f, "{:.4} pJ", j * 1e12)
        }
    }
}

/// Power in Watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(pub f64);

impl Power {
    /// Zero Watts.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from Watts.
    pub fn watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts.
    pub fn milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// The value in Watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Energy consumed by drawing this power for `t`.
    pub fn over(self, t: TimeSpan) -> Energy {
        Energy(self.0 * t.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} W", self.0)
    }
}

/// A duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimeSpan(pub f64);

impl TimeSpan {
    /// Zero seconds.
    pub const ZERO: TimeSpan = TimeSpan(0.0);

    /// Creates a duration from seconds.
    pub fn seconds(s: f64) -> Self {
        TimeSpan(s)
    }

    /// Creates a duration from milliseconds.
    pub fn millis(ms: f64) -> Self {
        TimeSpan(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn micros(us: f64) -> Self {
        TimeSpan(us * 1e-6)
    }

    /// The value in seconds.
    pub fn as_seconds(self) -> f64 {
        self.0
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl AddAssign for TimeSpan {
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s.abs() >= 1.0 {
            write!(f, "{s:.4} s")
        } else if s.abs() >= 1e-3 {
            write!(f, "{:.4} ms", s * 1e3)
        } else {
            write!(f, "{:.4} us", s * 1e6)
        }
    }
}

/// An energy value as a linear combination of Joules and abstract units.
///
/// `3.2 J + 8 conv2d + 16 mlp` is an `EnergyVec` with `joules = 3.2` and
/// `abstracts = {conv2d: 8, mlp: 16}`. Abstract components support relative
/// comparisons ("twice as many ReLUs") without calibration; converting to
/// absolute Joules requires a [`Calibration`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyVec {
    /// The concrete Joule component.
    pub joules: f64,
    /// Sparse abstract-unit components, keyed by unit name.
    pub abstracts: BTreeMap<String, f64>,
}

impl EnergyVec {
    /// The zero energy vector.
    pub fn zero() -> Self {
        EnergyVec::default()
    }

    /// A vector with only a Joule component.
    pub fn from_joules(j: f64) -> Self {
        EnergyVec {
            joules: j,
            abstracts: BTreeMap::new(),
        }
    }

    /// A vector with only a concrete [`Energy`] component.
    pub fn from_energy(e: Energy) -> Self {
        Self::from_joules(e.as_joules())
    }

    /// A vector with a single abstract-unit component.
    pub fn from_unit(unit: impl Into<String>, amount: f64) -> Self {
        let mut abstracts = BTreeMap::new();
        abstracts.insert(unit.into(), amount);
        EnergyVec {
            joules: 0.0,
            abstracts,
        }
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        self.joules == 0.0 && self.abstracts.values().all(|&v| v == 0.0)
    }

    /// True when the vector has no abstract components (pure Joules).
    pub fn is_concrete(&self) -> bool {
        self.abstracts.values().all(|&v| v == 0.0)
    }

    /// True when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.joules.is_finite() && self.abstracts.values().all(|v| v.is_finite())
    }

    /// Adds another vector in place.
    pub fn add_assign(&mut self, other: &EnergyVec) {
        self.joules += other.joules;
        for (k, v) in &other.abstracts {
            *self.abstracts.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    /// Returns the component-wise sum of two vectors.
    pub fn plus(&self, other: &EnergyVec) -> EnergyVec {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns the component-wise difference `self - other`.
    pub fn minus(&self, other: &EnergyVec) -> EnergyVec {
        let mut out = self.clone();
        out.joules -= other.joules;
        for (k, v) in &other.abstracts {
            *out.abstracts.entry(k.clone()).or_insert(0.0) -= v;
        }
        out
    }

    /// Scales every component by `k`.
    pub fn scaled(&self, k: f64) -> EnergyVec {
        EnergyVec {
            joules: self.joules * k,
            abstracts: self
                .abstracts
                .iter()
                .map(|(u, v)| (u.clone(), v * k))
                .collect(),
        }
    }

    /// Converts to absolute Joules using `cal` for every abstract component.
    ///
    /// Fails with [`Error::Uncalibrated`] if any non-zero abstract component
    /// lacks a calibration entry.
    pub fn calibrate(&self, cal: &Calibration) -> Result<Energy> {
        let mut total = self.joules;
        for (unit, amount) in &self.abstracts {
            if *amount == 0.0 {
                continue;
            }
            match cal.get(unit) {
                Some(e) => total += amount * e.as_joules(),
                None => return Err(Error::Uncalibrated { unit: unit.clone() }),
            }
        }
        Ok(Energy(total))
    }

    /// Converts to Joules assuming no calibration is needed.
    ///
    /// Fails if the vector has any non-zero abstract component.
    pub fn to_energy(&self) -> Result<Energy> {
        self.calibrate(&Calibration::empty())
    }

    /// Like [`EnergyVec::calibrate`], but against a pre-interned lookup
    /// table. Hot loops (Monte-Carlo sampling, batch evaluation) intern the
    /// calibration once and skip the per-sample `BTreeMap` traversal.
    pub fn calibrate_interned(&self, cal: &InternedCalibration) -> Result<Energy> {
        let mut total = self.joules;
        for (unit, amount) in &self.abstracts {
            if *amount == 0.0 {
                continue;
            }
            match cal.get(unit) {
                Some(e) => total += amount * e.as_joules(),
                None => return Err(Error::Uncalibrated { unit: unit.clone() }),
            }
        }
        Ok(Energy(total))
    }
}

impl From<Energy> for EnergyVec {
    fn from(e: Energy) -> Self {
        EnergyVec::from_energy(e)
    }
}

impl fmt::Display for EnergyVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if self.joules != 0.0 || self.abstracts.values().all(|&v| v == 0.0) {
            write!(f, "{}", Energy(self.joules))?;
            wrote = true;
        }
        for (u, v) in &self.abstracts {
            if *v == 0.0 {
                continue;
            }
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{v} {u}")?;
            wrote = true;
        }
        Ok(())
    }
}

/// A mapping from abstract energy-unit names to concrete Joule values.
///
/// Hardware layers (or microbenchmark fits, see `ei-extract`) provide
/// calibrations; upper layers stay abstract until absolute numbers are needed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    entries: BTreeMap<String, Energy>,
}

impl Calibration {
    /// An empty calibration (only pure-Joule vectors convert).
    pub fn empty() -> Self {
        Calibration::default()
    }

    /// Builds a calibration from `(unit, energy)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Energy)>,
        S: Into<String>,
    {
        Calibration {
            entries: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Adds or replaces one unit's calibration.
    pub fn set(&mut self, unit: impl Into<String>, energy: Energy) {
        self.entries.insert(unit.into(), energy);
    }

    /// Looks up one unit's Joule value.
    pub fn get(&self, unit: &str) -> Option<Energy> {
        self.entries.get(unit).copied()
    }

    /// Iterates over all `(unit, energy)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Energy)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another calibration into this one; `other` wins on conflicts.
    pub fn merge(&mut self, other: &Calibration) {
        for (k, v) in &other.entries {
            self.entries.insert(k.clone(), *v);
        }
    }

    /// Number of calibrated units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no units are calibrated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Interns the calibration into a flat sorted table for repeated
    /// lookups; see [`InternedCalibration`].
    pub fn intern(&self) -> InternedCalibration {
        InternedCalibration {
            entries: self.entries.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }
}

/// A [`Calibration`] flattened into a sorted `Vec` for cache-friendly
/// binary-search lookups.
///
/// `Calibration::get` walks a `BTreeMap` — fine for one-off conversions, but
/// Monte-Carlo evaluation calibrates every sample, so the interpreter interns
/// the calibration once per call and uses
/// [`EnergyVec::calibrate_interned`] in the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct InternedCalibration {
    /// `(unit, energy)` pairs sorted by unit name.
    entries: Vec<(String, Energy)>,
}

impl InternedCalibration {
    /// Looks up one unit's Joule value.
    pub fn get(&self, unit: &str) -> Option<Energy> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(unit))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of calibrated units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no units are calibrated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_constructors_scale_correctly() {
        let close = |a: f64, b: f64| (a - b).abs() <= b.abs() * 1e-12;
        assert!(close(Energy::millijoules(5.0).as_joules(), 5e-3));
        assert!(close(Energy::microjoules(2.0).as_joules(), 2e-6));
        assert!(close(Energy::nanojoules(3.0).as_joules(), 3e-9));
        assert!(close(Energy::picojoules(7.0).as_joules(), 7e-12));
        assert!(close(Energy::kilojoules(1.5).as_joules(), 1500.0));
        assert!(close(Energy::watt_hours(1.0).as_joules(), 3600.0));
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::joules(2.0);
        let b = Energy::joules(0.5);
        assert_eq!((a + b).as_joules(), 2.5);
        assert_eq!((a - b).as_joules(), 1.5);
        assert_eq!((a * 3.0).as_joules(), 6.0);
        assert_eq!((a / 4.0).as_joules(), 0.5);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).as_joules(), -2.0);
        let total: Energy = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_joules(), 3.0);
    }

    #[test]
    fn relative_error_handles_zero_baseline() {
        assert_eq!(Energy::ZERO.relative_error(Energy::ZERO), 0.0);
        assert!(Energy::joules(1.0)
            .relative_error(Energy::ZERO)
            .is_infinite());
        let e = Energy::joules(11.0).relative_error(Energy::joules(10.0));
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn power_over_time_is_energy() {
        let e = Power::watts(450.0).over(TimeSpan::millis(2.0));
        assert!((e.as_joules() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_scale() {
        assert_eq!(format!("{}", Energy::joules(0.0)), "0 J");
        assert_eq!(format!("{}", Energy::joules(2500.0)), "2.5000 kJ");
        assert_eq!(format!("{}", Energy::joules(2.5)), "2.5000 J");
        assert_eq!(format!("{}", Energy::joules(2.5e-3)), "2.5000 mJ");
        assert_eq!(format!("{}", Energy::joules(2.5e-6)), "2.5000 uJ");
        assert_eq!(format!("{}", Energy::joules(2.5e-9)), "2.5000 nJ");
        assert_eq!(format!("{}", Energy::joules(2.5e-12)), "2.5000 pJ");
    }

    #[test]
    fn energy_vec_linear_algebra() {
        let a = EnergyVec::from_unit("relu", 2.0);
        let b = EnergyVec::from_joules(1.0);
        let s = a.plus(&b).scaled(3.0);
        assert_eq!(s.joules, 3.0);
        assert_eq!(s.abstracts["relu"], 6.0);
        let d = s.minus(&a);
        assert_eq!(d.abstracts["relu"], 4.0);
        assert!(!s.is_concrete());
        assert!(b.is_concrete());
        assert!(EnergyVec::zero().is_zero());
    }

    #[test]
    fn calibration_converts_abstract_units() {
        let mut v = EnergyVec::from_unit("relu", 4.0);
        v.add_assign(&EnergyVec::from_joules(0.5));
        let cal = Calibration::from_pairs([("relu", Energy::millijoules(2.0))]);
        let e = v.calibrate(&cal).unwrap();
        assert!((e.as_joules() - (0.5 + 4.0 * 2e-3)).abs() < 1e-12);
    }

    #[test]
    fn calibration_missing_unit_errors() {
        let v = EnergyVec::from_unit("conv2d", 1.0);
        let err = v.to_energy().unwrap_err();
        assert_eq!(
            err,
            Error::Uncalibrated {
                unit: "conv2d".into()
            }
        );
    }

    #[test]
    fn zero_abstract_component_needs_no_calibration() {
        let v = EnergyVec::from_unit("conv2d", 0.0);
        assert_eq!(v.to_energy().unwrap(), Energy::ZERO);
    }

    #[test]
    fn calibration_merge_prefers_other() {
        let mut a = Calibration::from_pairs([("relu", Energy::joules(1.0))]);
        let b = Calibration::from_pairs([("relu", Energy::joules(2.0))]);
        a.merge(&b);
        assert_eq!(a.get("relu").unwrap().as_joules(), 2.0);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn energy_vec_display() {
        let mut v = EnergyVec::from_joules(1.0);
        v.add_assign(&EnergyVec::from_unit("relu", 2.0));
        assert_eq!(format!("{v}"), "1.0000 J + 2 relu");
        assert_eq!(format!("{}", EnergyVec::zero()), "0 J");
        assert_eq!(format!("{}", EnergyVec::from_unit("mlp", 3.0)), "3 mlp");
    }
}
