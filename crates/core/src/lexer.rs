//! Lexer for the EIL surface syntax.
//!
//! The surface language is deliberately small and programmer-friendly (§2:
//! the representation "must be both natural for programmers and
//! machine-interpretable"): C-style tokens, `//` line comments, string
//! literals for documentation, and plain floating-point numbers.

use crate::error::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// A numeric literal.
    Num(f64),
    /// A string literal (documentation).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Tokenizes EIL source text.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let mut push = |tok: Tok| {
            out.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            })
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                push(Tok::LBrace);
                i += 1;
                col += 1;
            }
            '}' => {
                push(Tok::RBrace);
                i += 1;
                col += 1;
            }
            '(' => {
                push(Tok::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push(Tok::RParen);
                i += 1;
                col += 1;
            }
            ',' => {
                push(Tok::Comma);
                i += 1;
                col += 1;
            }
            ';' => {
                push(Tok::Semi);
                i += 1;
                col += 1;
            }
            ':' => {
                push(Tok::Colon);
                i += 1;
                col += 1;
            }
            '.' => {
                if i + 1 < n && chars[i + 1] == '.' {
                    push(Tok::DotDot);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Dot);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Eq);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Assign);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Ne);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Bang);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Le);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Lt);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Ge);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Gt);
                    i += 1;
                    col += 1;
                }
            }
            '+' => {
                push(Tok::Plus);
                i += 1;
                col += 1;
            }
            '-' => {
                push(Tok::Minus);
                i += 1;
                col += 1;
            }
            '*' => {
                push(Tok::Star);
                i += 1;
                col += 1;
            }
            '/' => {
                push(Tok::Slash);
                i += 1;
                col += 1;
            }
            '%' => {
                push(Tok::Percent);
                i += 1;
                col += 1;
            }
            '&' => {
                if i + 1 < n && chars[i + 1] == '&' {
                    push(Tok::AndAnd);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        line,
                        col,
                        msg: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                if i + 1 < n && chars[i + 1] == '|' {
                    push(Tok::OrOr);
                    i += 2;
                    col += 2;
                } else {
                    return Err(Error::Lex {
                        line,
                        col,
                        msg: "expected `||`".into(),
                    });
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut ccol = col + 1;
                let mut closed = false;
                while j < n {
                    match chars[j] {
                        '"' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        '\\' if j + 1 < n => {
                            let esc = chars[j + 1];
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '"' => '"',
                                '\\' => '\\',
                                other => {
                                    return Err(Error::Lex {
                                        line,
                                        col: ccol,
                                        msg: format!("unknown escape `\\{other}`"),
                                    })
                                }
                            });
                            j += 2;
                            ccol += 2;
                        }
                        '\n' => {
                            return Err(Error::Lex {
                                line,
                                col: ccol,
                                msg: "unterminated string".into(),
                            })
                        }
                        other => {
                            s.push(other);
                            j += 1;
                            ccol += 1;
                        }
                    }
                }
                if !closed {
                    return Err(Error::Lex {
                        line,
                        col,
                        msg: "unterminated string".into(),
                    });
                }
                push(Tok::Str(s));
                col += (j - i) as u32;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < n && chars[j].is_ascii_digit() {
                    j += 1;
                }
                // Fractional part — but `1..5` must lex as 1, .., 5.
                if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < n && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                // Exponent.
                if j < n && (chars[j] == 'e' || chars[j] == 'E') {
                    let mut k = j + 1;
                    if k < n && (chars[k] == '+' || chars[k] == '-') {
                        k += 1;
                    }
                    if k < n && chars[k].is_ascii_digit() {
                        j = k;
                        while j < n && chars[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text: String = chars[start..j].iter().collect();
                let value = text.parse::<f64>().map_err(|_| Error::Lex {
                    line,
                    col,
                    msg: format!("bad number `{text}`"),
                })?;
                push(Tok::Num(value));
                col += (j - i) as u32;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                push(Tok::Ident(text));
                col += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(Error::Lex {
                    line,
                    col,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_tokens() {
        assert_eq!(
            toks("let x = 1.5;"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(1.5),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != <= >= < > && || ! + - * / % .."),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::DotDot
            ]
        );
    }

    #[test]
    fn range_vs_float() {
        assert_eq!(
            toks("0..10"),
            vec![Tok::Num(0.0), Tok::DotDot, Tok::Num(10.0)]
        );
        assert_eq!(toks("0.5"), vec![Tok::Num(0.5)]);
        assert_eq!(toks("1e3"), vec![Tok::Num(1000.0)]);
        assert_eq!(toks("1.5e-3"), vec![Tok::Num(0.0015)]);
        assert_eq!(toks("2E+2"), vec![Tok::Num(200.0)]);
    }

    #[test]
    fn field_access() {
        assert_eq!(
            toks("request.image_size"),
            vec![
                Tok::Ident("request".into()),
                Tok::Dot,
                Tok::Ident("image_size".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment here\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""hello \"world\"\n""#),
            vec![Tok::Str("hello \"world\"\n".into())]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex("\"bad\\qescape\"").is_err());
        assert!(lex("\"newline\nin string\"").is_err());
    }

    #[test]
    fn positions_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn unicode_in_strings_ok_but_not_idents() {
        assert_eq!(toks("\"héllo\""), vec![Tok::Str("héllo".into())]);
        assert!(lex("héllo").is_err());
    }
}
