//! Evaluation cache: memoized linking and energy queries.
//!
//! Resource managers re-ask the same questions constantly — the EAS planner
//! re-links the same stack for every task, the cluster scheduler evaluates
//! the same `(app shape, node type)` pair for every pod, Table 1 sweeps a
//! grid over one fitted interface. [`EvalCache`] memoizes both layers:
//!
//! - **Linking** ([`EvalCache::link_cached`], [`EvalCache::link_closure_cached`]):
//!   composed interfaces are cached behind [`Arc`] so repeated composition of
//!   the same upper/provider set returns the already-linked interface.
//! - **Energy queries** ([`EvalCache::evaluate_energy_cached`],
//!   [`EvalCache::expected_energy_cached`]): concrete Joule answers are
//!   cached per `(interface, function, arguments, environment, config)` key.
//!
//! # Keying and invalidation
//!
//! Keys are 64-bit FNV-1a fingerprints of the *content* of every input: the
//! interface's full serialized tree (functions, ECV declarations, units,
//! externs), the argument values (floats hashed by bit pattern), the ECV
//! environment (declarations and pins), and the evaluation config (fuel,
//! depth, calibration entries). Mutating any of these — editing a function,
//! pinning an ECV, changing a calibration — changes the fingerprint, so
//! stale entries are never returned; they simply stop being reachable.
//! There is no explicit invalidation API beyond [`EvalCache::clear`].
//!
//! Only successful results are cached: errors are returned but recomputed on
//! the next call, so a transient failure cannot poison the cache.
//!
//! All methods take `&self`; the cache is internally synchronized
//! ([`parking_lot::Mutex`], which does not poison — a worker thread that
//! panics leaves the cache usable for its peers) and can be shared across
//! the worker threads of [`monte_carlo_par`](crate::interp::monte_carlo_par)
//! callers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ei_telemetry as telemetry;
use serde::Serialize;
use telemetry::SpanKind;

use crate::compose::{link, link_closure, Registry};
use crate::ecv::EcvEnv;
use crate::error::Result;
use crate::interface::Interface;
use crate::interp::{evaluate_energy, expected_energy, EvalConfig};
use crate::units::Energy;
use crate::value::Value;
use crate::vm;

/// 64-bit FNV-1a running hash.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }
}

/// Hashes a serialized tree. Object fields arrive in a deterministic order
/// (the serializer emits them in declaration order), so equal trees hash
/// equal.
fn hash_tree(h: &mut Fnv, v: &serde::Value) {
    use serde::Value as V;
    match v {
        V::Null => h.write_u64(0),
        V::Bool(b) => {
            h.write_u64(1);
            h.write_u64(*b as u64);
        }
        V::I64(n) => {
            h.write_u64(2);
            h.write_u64(*n as u64);
        }
        V::U64(n) => {
            h.write_u64(3);
            h.write_u64(*n);
        }
        V::F64(n) => {
            h.write_u64(4);
            h.write_f64(*n);
        }
        V::Str(s) => {
            h.write_u64(5);
            h.write_str(s);
        }
        V::Array(items) => {
            h.write_u64(6);
            h.write_u64(items.len() as u64);
            for item in items {
                hash_tree(h, item);
            }
        }
        V::Object(fields) => {
            h.write_u64(7);
            h.write_u64(fields.len() as u64);
            for (k, item) in fields {
                h.write_str(k);
                hash_tree(h, item);
            }
        }
    }
}

/// Content fingerprint of an interface: a hash of its complete serialized
/// form. Two interfaces fingerprint equal iff they serialize identically;
/// any mutation (added function, edited body, changed ECV) changes it.
pub fn fingerprint_interface(iface: &Interface) -> u64 {
    let mut h = Fnv::new();
    hash_tree(&mut h, &iface.to_value());
    h.0
}

/// Hashes a runtime [`Value`] (not `Serialize`, so hashed structurally).
fn hash_value(h: &mut Fnv, v: &Value) {
    match v {
        Value::Num(n) => {
            h.write_u64(10);
            h.write_f64(*n);
        }
        Value::Bool(b) => {
            h.write_u64(11);
            h.write_u64(*b as u64);
        }
        Value::Energy(ev) => {
            h.write_u64(12);
            h.write_f64(ev.joules);
            h.write_u64(ev.abstracts.len() as u64);
            for (unit, amount) in &ev.abstracts {
                h.write_str(unit);
                h.write_f64(*amount);
            }
        }
        Value::Record(fields) => {
            h.write_u64(13);
            h.write_u64(fields.len() as u64);
            for (k, item) in fields {
                h.write_str(k);
                hash_value(h, item);
            }
        }
    }
}

/// Hashes an ECV environment: every declaration plus every pin.
fn hash_env(h: &mut Fnv, env: &EcvEnv) {
    let names: Vec<&str> = env.names().collect();
    h.write_u64(names.len() as u64);
    for name in names {
        h.write_str(name);
        if let Some(decl) = env.decl(name) {
            hash_tree(h, &decl.to_value());
        }
        match env.pinned(name) {
            Some(v) => hash_tree(h, &v.to_value()),
            None => h.write_u64(0),
        }
    }
}

/// Hashes the evaluation config: fuel, depth, and all calibration entries.
///
/// Deliberately does **not** hash [`EvalConfig::mode`]: the engines are
/// result-identical by contract (enforced by the VM differential suites),
/// so a result computed by one engine is a valid cache answer for the
/// other.
fn hash_config(h: &mut Fnv, config: &EvalConfig) {
    h.write_u64(config.fuel);
    h.write_u64(config.max_depth as u64);
    h.write_u64(config.calibration.len() as u64);
    for (unit, e) in config.calibration.iter() {
        h.write_str(unit);
        h.write_f64(e.as_joules());
    }
}

/// Hit/miss counters, for benches and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
}

/// Memoizes interface linking and concrete energy queries.
///
/// See the [module docs](self) for the keying scheme. Cheap to create;
/// typically one cache lives as long as the interfaces it memoizes are in
/// use (e.g. per planner run, or per process).
#[derive(Debug, Default)]
pub struct EvalCache {
    links: Mutex<HashMap<u64, Arc<Interface>>>,
    energies: Mutex<HashMap<u64, Energy>>,
    programs: Mutex<HashMap<u64, Arc<vm::Program>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("core.cache.hits", 1);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("core.cache.misses", 1);
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.links.lock().clear();
        self.energies.lock().clear();
        self.programs.lock().clear();
    }

    /// Memoized [`vm::compile`]: the compiled bytecode for an interface,
    /// keyed by its content fingerprint.
    ///
    /// The sampling drivers compile internally per call; this entry point
    /// is for callers that hold one program across many queries — serving
    /// recompute paths, candidate ranking, benches. The returned
    /// [`vm::Program::fingerprint`] identifies the compiled artifact
    /// itself, so recompiles of an unchanged interface can be
    /// cross-checked for determinism.
    pub fn program_cached(&self, iface: &Interface) -> Result<Arc<vm::Program>> {
        let mut h = Fnv::new();
        h.write_u64(40);
        h.write_u64(fingerprint_interface(iface));
        let key = h.0;

        if let Some(found) = self.programs.lock().get(&key) {
            self.hit();
            return Ok(Arc::clone(found));
        }
        self.miss();
        let program = Arc::new(vm::compile(iface)?);
        self.programs.lock().insert(key, Arc::clone(&program));
        Ok(program)
    }

    /// Memoized [`link`]: returns the cached composition when the same
    /// `upper` has been linked against the same `providers` before.
    pub fn link_cached(
        &self,
        upper: &Interface,
        providers: &[&Interface],
    ) -> Result<Arc<Interface>> {
        let mut h = Fnv::new();
        h.write_u64(20);
        h.write_u64(fingerprint_interface(upper));
        h.write_u64(providers.len() as u64);
        for p in providers {
            h.write_u64(fingerprint_interface(p));
        }
        let key = h.0;

        if let Some(found) = self.links.lock().get(&key) {
            self.hit();
            return Ok(Arc::clone(found));
        }
        self.miss();
        let linked = Arc::new(link(upper, providers)?);
        self.links.lock().insert(key, Arc::clone(&linked));
        Ok(linked)
    }

    /// Memoized [`link_closure`]: like [`EvalCache::link_cached`] but
    /// resolving transitively against a [`Registry`].
    pub fn link_closure_cached(
        &self,
        upper: &Interface,
        registry: &Registry,
    ) -> Result<Arc<Interface>> {
        let mut h = Fnv::new();
        h.write_u64(21);
        h.write_u64(fingerprint_interface(upper));
        h.write_u64(registry.len() as u64);
        for p in registry.iter() {
            h.write_u64(fingerprint_interface(p));
        }
        let key = h.0;

        if let Some(found) = self.links.lock().get(&key) {
            self.hit();
            return Ok(Arc::clone(found));
        }
        self.miss();
        let linked = Arc::new(link_closure(upper, registry)?);
        self.links.lock().insert(key, Arc::clone(&linked));
        Ok(linked)
    }

    /// Memoized [`evaluate_energy`]: one sampled evaluation, keyed on every
    /// input including the `seed`.
    pub fn evaluate_energy_cached(
        &self,
        iface: &Interface,
        func: &str,
        args: &[Value],
        env: &EcvEnv,
        seed: u64,
        config: &EvalConfig,
    ) -> Result<Energy> {
        let mut h = Fnv::new();
        h.write_u64(30);
        h.write_u64(fingerprint_interface(iface));
        h.write_str(func);
        h.write_u64(args.len() as u64);
        for a in args {
            hash_value(&mut h, a);
        }
        hash_env(&mut h, env);
        h.write_u64(seed);
        hash_config(&mut h, config);
        let key = h.0;

        let mut sp = telemetry::span(SpanKind::CacheLookup, func);
        if let Some(found) = self.energies.lock().get(&key) {
            self.hit();
            sp.record_energy(found.as_joules());
            return Ok(*found);
        }
        self.miss();
        let e = evaluate_energy(iface, func, args, env, seed, config)?;
        sp.record_energy(e.as_joules());
        self.energies.lock().insert(key, e);
        Ok(e)
    }

    /// Memoized [`expected_energy`]: the mean over the interface's own ECV
    /// space (which the interface fingerprint already covers).
    pub fn expected_energy_cached(
        &self,
        iface: &Interface,
        func: &str,
        args: &[Value],
        config: &EvalConfig,
    ) -> Result<Energy> {
        let mut h = Fnv::new();
        h.write_u64(31);
        h.write_u64(fingerprint_interface(iface));
        h.write_str(func);
        h.write_u64(args.len() as u64);
        for a in args {
            hash_value(&mut h, a);
        }
        hash_config(&mut h, config);
        let key = h.0;

        let mut sp = telemetry::span(SpanKind::CacheLookup, func);
        if let Some(found) = self.energies.lock().get(&key) {
            self.hit();
            sp.record_energy(found.as_joules());
            return Ok(*found);
        }
        self.miss();
        let e = expected_energy(iface, func, args, config)?;
        sp.record_energy(e.as_joules());
        self.energies.lock().insert(key, e);
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn toy() -> Interface {
        parse(
            r#"
            interface toy "toy" {
                fn cost(n) { return 2 mJ * n; }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_mutation_sensitive() {
        let a = toy();
        let b = toy();
        assert_eq!(fingerprint_interface(&a), fingerprint_interface(&b));

        let c = parse(
            r#"
            interface toy "toy" {
                fn cost(n) { return 3 mJ * n; }
            }
            "#,
        )
        .unwrap();
        assert_ne!(fingerprint_interface(&a), fingerprint_interface(&c));
    }

    #[test]
    fn energy_cache_hits_and_matches_uncached() {
        let iface = toy();
        let cache = EvalCache::new();
        let cfg = EvalConfig::default();
        let args = [Value::Num(8.0)];

        let cold = cache
            .expected_energy_cached(&iface, "cost", &args, &cfg)
            .unwrap();
        let warm = cache
            .expected_energy_cached(&iface, "cost", &args, &cfg)
            .unwrap();
        let direct = expected_energy(&iface, "cost", &args, &cfg).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, direct);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn panicking_worker_does_not_poison_the_cache() {
        // Regression: with std::sync::Mutex + .lock().unwrap(), a worker
        // thread dying while it held (or after having taken) the lock
        // poisoned the cache and every later query panicked. parking_lot
        // mutexes do not poison.
        let cache = Arc::new(EvalCache::new());
        let cfg = EvalConfig::default();

        let c = Arc::clone(&cache);
        let worker = std::thread::spawn(move || {
            let iface = toy();
            c.expected_energy_cached(&iface, "cost", &[Value::Num(2.0)], &EvalConfig::default())
                .unwrap();
            panic!("worker dies mid-campaign");
        });
        assert!(worker.join().is_err(), "worker must have panicked");

        // Survivors keep hitting the shared cache.
        let iface = toy();
        let warm = cache
            .expected_energy_cached(&iface, "cost", &[Value::Num(2.0)], &cfg)
            .unwrap();
        let direct = expected_energy(&iface, "cost", &[Value::Num(2.0)], &cfg).unwrap();
        assert_eq!(warm, direct);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn program_cache_hits_and_is_mutation_sensitive() {
        let cache = EvalCache::new();
        let cold = cache.program_cached(&toy()).unwrap();
        let warm = cache.program_cached(&toy()).unwrap();
        assert_eq!(cold.fingerprint(), warm.fingerprint());
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });

        // A recompile outside the cache reproduces the same artifact.
        assert_eq!(
            vm::compile(&toy()).unwrap().fingerprint(),
            cold.fingerprint()
        );

        let edited = parse(
            r#"
            interface toy "toy" {
                fn cost(n) { return 3 mJ * n; }
            }
            "#,
        )
        .unwrap();
        let other = cache.program_cached(&edited).unwrap();
        assert_ne!(other.fingerprint(), cold.fingerprint());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_energy_serves_both_engines() {
        use crate::interp::ExecMode;
        let iface = toy();
        let cache = EvalCache::new();
        let walk = EvalConfig {
            mode: ExecMode::TreeWalk,
            ..EvalConfig::default()
        };
        let compiled = EvalConfig {
            mode: ExecMode::Compiled,
            ..EvalConfig::default()
        };
        let env = EcvEnv::from_decls(&iface.ecvs);
        let args = [Value::Num(8.0)];
        let a = cache
            .evaluate_energy_cached(&iface, "cost", &args, &env, 9, &walk)
            .unwrap();
        // Same key despite the different mode: engines are
        // result-identical, so the tree-walk answer is served.
        let b = cache
            .evaluate_energy_cached(&iface, "cost", &args, &env, 9, &compiled)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn errors_are_not_cached() {
        let iface = toy();
        let cache = EvalCache::new();
        let cfg = EvalConfig::default();
        assert!(cache
            .expected_energy_cached(&iface, "missing", &[], &cfg)
            .is_err());
        assert!(cache
            .expected_energy_cached(&iface, "missing", &[], &cfg)
            .is_err());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }
}
