//! Source-position side tables for parsed interfaces.
//!
//! The AST in [`ast`](crate::ast) is deliberately position-free: interfaces
//! are compared structurally, fingerprinted for the evaluation cache, and
//! built programmatically by every crate in the workspace, so line/column
//! data does not belong inside the nodes themselves. Diagnostics still need
//! real source coordinates, so the parser records a *mirror tree* of spans —
//! one [`ExprSpans`]/[`StmtSpans`] per AST node, in the same child order —
//! in a [`SpanTable`] carried alongside the [`Interface`]
//! (crate::interface::Interface::spans).
//!
//! The table is metadata, not identity: its `PartialEq` is always true and
//! it is skipped during serialization, so span-carrying (parsed) and
//! span-free (programmatically built) interfaces compare and fingerprint
//! identically.

use std::collections::BTreeMap;
use std::fmt;

/// A 1-based `line:col` source position (the start of a construct).
///
/// `Span::NONE` (0:0) marks nodes with no source position — anything built
/// via the AST constructors rather than the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based source line; 0 when unknown.
    pub line: u32,
    /// 1-based source column; 0 when unknown.
    pub col: u32,
}

impl Span {
    /// The unknown position.
    pub const NONE: Span = Span { line: 0, col: 0 };

    /// A known position.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// True when this span carries no real position.
    pub fn is_none(&self) -> bool {
        self.line == 0 && self.col == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Span mirror of one [`Expr`](crate::ast::Expr): the node's own position
/// plus one child per sub-expression, in the same order the AST stores them
/// (`Binary` → `[lhs, rhs]`, `Call`/`BuiltinCall` → args, `IfExpr` →
/// `[cond, then, else]`, `Field`/`Unary` → `[base]`, leaves → `[]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExprSpans {
    /// Position of the node (the operator token for binary nodes).
    pub span: Span,
    /// Mirrors of the node's sub-expressions.
    pub children: Vec<ExprSpans>,
}

impl ExprSpans {
    /// A leaf with a known position.
    pub fn leaf(span: Span) -> ExprSpans {
        ExprSpans {
            span,
            children: Vec::new(),
        }
    }

    /// An interior node.
    pub fn node(span: Span, children: Vec<ExprSpans>) -> ExprSpans {
        ExprSpans { span, children }
    }

    /// The `i`-th child, or a default (positionless) mirror when the table
    /// is missing or shallower than the AST.
    pub fn child(&self, i: usize) -> &ExprSpans {
        self.children.get(i).unwrap_or(ExprSpans::none())
    }

    /// A shared positionless mirror.
    pub fn none() -> &'static ExprSpans {
        static NONE: ExprSpans = ExprSpans {
            span: Span::NONE,
            children: Vec::new(),
        };
        &NONE
    }
}

/// Span mirror of one [`Stmt`](crate::ast::Stmt).
///
/// `exprs` mirrors the statement's expressions in declaration order
/// (`Let`/`Assign`/`Return` → `[rhs]`, `If` → `[cond]`, `For` →
/// `[from, to]`, `While` → `[cond]`); `blocks` mirrors its nested blocks
/// (`If` → `[then, else]`, `For`/`While` → `[body]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StmtSpans {
    /// Position of the statement keyword (or assignment target).
    pub span: Span,
    /// Mirrors of the statement's expressions.
    pub exprs: Vec<ExprSpans>,
    /// Mirrors of the statement's nested blocks.
    pub blocks: Vec<Vec<StmtSpans>>,
}

impl StmtSpans {
    /// The `i`-th expression mirror, defaulting to positionless.
    pub fn expr(&self, i: usize) -> &ExprSpans {
        self.exprs.get(i).unwrap_or(ExprSpans::none())
    }

    /// The `i`-th block mirror, defaulting to empty.
    pub fn block(&self, i: usize) -> &[StmtSpans] {
        self.blocks.get(i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A shared positionless mirror.
    pub fn none() -> &'static StmtSpans {
        static NONE: StmtSpans = StmtSpans {
            span: Span::NONE,
            exprs: Vec::new(),
            blocks: Vec::new(),
        };
        &NONE
    }
}

/// Span mirror of one function definition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnSpans {
    /// Position of the function's name in its declaration.
    pub decl: Span,
    /// One mirror per body statement.
    pub body: Vec<StmtSpans>,
}

impl FnSpans {
    /// The `i`-th body statement mirror, defaulting to positionless.
    pub fn stmt(&self, i: usize) -> &StmtSpans {
        self.body.get(i).unwrap_or(StmtSpans::none())
    }
}

/// All source positions recorded while parsing one interface.
///
/// Compares equal to every other table (spans are metadata, not identity)
/// and serializes to nothing, so adding it to [`Interface`]
/// (crate::interface::Interface) perturbs neither structural equality nor
/// cache fingerprints.
#[derive(Debug, Clone, Default)]
pub struct SpanTable {
    /// Per-function mirrors, keyed by function name.
    pub fns: BTreeMap<String, FnSpans>,
    /// ECV declaration positions, keyed by ECV name.
    pub ecvs: BTreeMap<String, Span>,
    /// Extern declaration positions, keyed by extern name.
    pub externs: BTreeMap<String, Span>,
    /// Unit declaration positions, keyed by unit name.
    pub units: BTreeMap<String, Span>,
}

impl SpanTable {
    /// The mirror of function `name`, defaulting to a positionless one.
    pub fn fn_spans(&self, name: &str) -> &FnSpans {
        static NONE: FnSpans = FnSpans {
            decl: Span::NONE,
            body: Vec::new(),
        };
        self.fns.get(name).unwrap_or(&NONE)
    }

    /// An ECV's declaration position.
    pub fn ecv(&self, name: &str) -> Span {
        self.ecvs.get(name).copied().unwrap_or(Span::NONE)
    }

    /// An extern's declaration position.
    pub fn extern_decl(&self, name: &str) -> Span {
        self.externs.get(name).copied().unwrap_or(Span::NONE)
    }

    /// A unit's declaration position.
    pub fn unit(&self, name: &str) -> Span {
        self.units.get(name).copied().unwrap_or(Span::NONE)
    }

    /// True when the table records no positions at all.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
            && self.ecvs.is_empty()
            && self.externs.is_empty()
            && self.units.is_empty()
    }
}

// Spans are metadata: two interfaces differing only in recorded positions
// are the same interface. This keeps `parse(pretty(iface)) == iface` and
// programmatic-vs-parsed comparisons true across the workspace.
impl PartialEq for SpanTable {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

// For the same reason the table serializes to nothing (`null`) and
// deserializes to empty from any value, so cache fingerprints and
// round-tripped interfaces are unaffected by recorded positions.
impl serde::Serialize for SpanTable {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for SpanTable {
    fn from_value(_: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(SpanTable::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_and_none() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
        assert!(Span::NONE.is_none());
        assert!(!Span::new(1, 1).is_none());
    }

    #[test]
    fn tables_compare_equal_regardless_of_content() {
        let mut a = SpanTable::default();
        a.ecvs.insert("hit".into(), Span::new(2, 5));
        let b = SpanTable::default();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn missing_lookups_default_to_none() {
        let t = SpanTable::default();
        assert!(t.ecv("nope").is_none());
        assert!(t.unit("nope").is_none());
        assert!(t.extern_decl("nope").is_none());
        assert!(t.fn_spans("nope").decl.is_none());
        assert!(t.fn_spans("nope").stmt(0).span.is_none());
        assert!(t.fn_spans("nope").stmt(0).expr(0).span.is_none());
        assert!(t.fn_spans("nope").stmt(0).block(0).is_empty());
        assert!(ExprSpans::none().child(3).span.is_none());
    }
}
