//! The EIL interpreter.
//!
//! "A resource manager can execute the interface to know a priori the energy
//! that the resource would consume if run with a particular workload" (§2).
//! This module is that execution engine: a deterministic tree-walking
//! evaluator with an explicit fuel budget (so any interface terminates), plus
//! a Monte-Carlo driver and an exact enumerator that turn ECV-reading
//! interfaces into [`EnergyDist`]s.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ei_telemetry as telemetry;
use telemetry::SpanKind;

use crate::ast::{BinOp, Builtin, Expr, FnDef, Stmt, UnOp};
use crate::dist::EnergyDist;
use crate::ecv::{EcvEnv, EcvValue};
use crate::error::{Error, NameKind, Result};
use crate::interface::Interface;
use crate::units::{Calibration, Energy, EnergyVec, InternedCalibration};
use crate::value::Value;
use crate::vm;

/// Default fuel budget: enough for hundreds of thousands of statements.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Default maximum call depth.
///
/// Energy interfaces are shallow by construction (one level per layer of the
/// system stack), and the tree-walking evaluator uses several host stack
/// frames per EIL call, so the default is deliberately conservative.
pub const DEFAULT_MAX_DEPTH: usize = 64;

/// Which evaluation engine runs an interface.
///
/// The tree-walk interpreter is the semantic reference; the bytecode VM
/// ([`crate::vm`]) is a bit-identical compiled engine held to it by
/// differential tests. Every mode produces the same values, errors, fuel
/// boundaries, and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Sampling drivers (`monte_carlo`, `evaluate_batch`,
    /// `enumerate_exact`) compile once and amortize; single-shot
    /// evaluation stays on the tree-walk, where compiling would cost more
    /// than it saves.
    #[default]
    Auto,
    /// Always execute compiled bytecode; compilation errors surface.
    Compiled,
    /// Always walk the AST (the differential oracle).
    TreeWalk,
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Maximum number of evaluation steps before aborting.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Calibration applied when reducing results to Joules.
    pub calibration: Calibration,
    /// Engine selection (not part of the eval-cache key: engines are
    /// result-identical by contract).
    pub mode: ExecMode,
    /// Run the verifier-gated dataflow optimizer ([`vm::optimize`]) over
    /// compiled programs. Observationally irrelevant by the same contract
    /// as `mode` (and likewise outside the eval-cache key); exposed so
    /// differential tests can pin either engine variant.
    pub optimize: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            fuel: DEFAULT_FUEL,
            max_depth: DEFAULT_MAX_DEPTH,
            calibration: Calibration::empty(),
            mode: ExecMode::Auto,
            optimize: true,
        }
    }
}

/// A single deterministic evaluation context.
struct Eval<'a> {
    iface: &'a Interface,
    ecvs: &'a BTreeMap<String, EcvValue>,
    fuel: u64,
    fuel_limit: u64,
    max_depth: usize,
}

/// Result of a statement block: either fall-through or an early return.
enum Flow {
    Normal,
    Return(Value),
}

impl<'a> Eval<'a> {
    fn burn(&mut self) -> Result<()> {
        if self.fuel == 0 {
            return Err(Error::FuelExhausted {
                limit: self.fuel_limit,
            });
        }
        self.fuel -= 1;
        Ok(())
    }

    fn call(&mut self, name: &str, args: Vec<Value>, depth: usize) -> Result<Value> {
        if depth > self.max_depth {
            return Err(Error::StackOverflow {
                limit: self.max_depth,
            });
        }
        if let Some(f) = self.iface.fns.get(name) {
            return self.call_fn(f, args, depth);
        }
        if let Some(b) = Builtin::from_name(name) {
            return eval_builtin(b, &args);
        }
        if self.iface.externs.contains_key(name) {
            return Err(Error::Link {
                msg: format!(
                    "extern `{name}` is not linked; compose this interface with a provider first"
                ),
            });
        }
        Err(Error::Unresolved {
            kind: NameKind::Function,
            name: name.to_string(),
        })
    }

    fn call_fn(&mut self, f: &'a FnDef, args: Vec<Value>, depth: usize) -> Result<Value> {
        if f.params.len() != args.len() {
            return Err(Error::Arity {
                func: f.name.clone(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let mut locals: BTreeMap<String, Value> = f.params.iter().cloned().zip(args).collect();
        match self.block(&f.body, &mut locals, depth)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Err(Error::Type {
                expected: "a return value",
                got: format!("function `{}` fell off the end", f.name),
            }),
        }
    }

    fn block(
        &mut self,
        stmts: &'a [Stmt],
        locals: &mut BTreeMap<String, Value>,
        depth: usize,
    ) -> Result<Flow> {
        for s in stmts {
            self.burn()?;
            match s {
                Stmt::Let(name, e) => {
                    let v = self.expr(e, locals, depth)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::Assign(name, e) => {
                    if !locals.contains_key(name) {
                        return Err(Error::Unresolved {
                            kind: NameKind::Variable,
                            name: name.clone(),
                        });
                    }
                    let v = self.expr(e, locals, depth)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::If(cond, then_b, else_b) => {
                    let c = self.expr(cond, locals, depth)?.as_bool()?;
                    let branch = if c { then_b } else { else_b };
                    if let Flow::Return(v) = self.block(branch, locals, depth)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let from = self.expr(from, locals, depth)?.as_num()?;
                    let to = self.expr(to, locals, depth)?.as_num()?;
                    if !from.is_finite() || !to.is_finite() {
                        return Err(Error::NonFinite {
                            context: "for-loop bounds".into(),
                        });
                    }
                    let mut i = from.floor();
                    while i < to {
                        self.burn()?;
                        locals.insert(var.clone(), Value::Num(i));
                        if let Flow::Return(v) = self.block(body, locals, depth)? {
                            return Ok(Flow::Return(v));
                        }
                        i += 1.0;
                    }
                }
                Stmt::While { cond, bound, body } => {
                    let mut trips: u64 = 0;
                    while self.expr(cond, locals, depth)?.as_bool()? {
                        if trips >= *bound {
                            return Err(Error::BoundExceeded { bound: *bound });
                        }
                        trips += 1;
                        self.burn()?;
                        if let Flow::Return(v) = self.block(body, locals, depth)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                Stmt::Return(e) => {
                    let v = self.expr(e, locals, depth)?;
                    return Ok(Flow::Return(v));
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn expr(
        &mut self,
        e: &'a Expr,
        locals: &BTreeMap<String, Value>,
        depth: usize,
    ) -> Result<Value> {
        self.burn()?;
        match e {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Joules(j) => Ok(Value::joules(*j)),
            Expr::Unit(u, k) => Ok(Value::Energy(EnergyVec::from_unit(u.clone(), *k))),
            Expr::Var(name) => locals.get(name).cloned().ok_or_else(|| Error::Unresolved {
                kind: NameKind::Variable,
                name: name.clone(),
            }),
            Expr::Field(base, name) => {
                let b = self.expr(base, locals, depth)?;
                Ok(b.field(name)?.clone())
            }
            Expr::Ecv(name) => {
                let v = self.ecvs.get(name).ok_or_else(|| Error::Unresolved {
                    kind: NameKind::Ecv,
                    name: name.clone(),
                })?;
                Ok(match v {
                    EcvValue::Bool(b) => Value::Bool(*b),
                    EcvValue::Num(n) => Value::Num(*n),
                })
            }
            Expr::Unary(op, inner) => {
                let v = self.expr(inner, locals, depth)?;
                eval_unary(*op, v)
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logical operators before evaluating `b`.
                match op {
                    BinOp::And => {
                        let av = self.expr(a, locals, depth)?.as_bool()?;
                        if !av {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(self.expr(b, locals, depth)?.as_bool()?));
                    }
                    BinOp::Or => {
                        let av = self.expr(a, locals, depth)?.as_bool()?;
                        if av {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(self.expr(b, locals, depth)?.as_bool()?));
                    }
                    _ => {}
                }
                let av = self.expr(a, locals, depth)?;
                let bv = self.expr(b, locals, depth)?;
                eval_binary(*op, av, bv)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals, depth)?);
                }
                self.call(name, vals, depth + 1)
            }
            Expr::BuiltinCall(b, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals, depth)?);
                }
                eval_builtin(*b, &vals)
            }
            Expr::IfExpr(c, t, f) => {
                let cv = self.expr(c, locals, depth)?.as_bool()?;
                if cv {
                    self.expr(t, locals, depth)
                } else {
                    self.expr(f, locals, depth)
                }
            }
        }
    }
}

/// Evaluates a unary operation.
pub(crate) fn eval_unary(op: UnOp, v: Value) -> Result<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Num(n) => Ok(Value::Num(-n)),
            Value::Energy(e) => Ok(Value::Energy(e.scaled(-1.0))),
            other => Err(Error::Type {
                expected: "number or energy",
                got: other.type_name().into(),
            }),
        },
        UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
    }
}

/// Evaluates a (non-short-circuit) binary operation with unit discipline:
/// energy+energy, energy*number, energy/number, energy/energy→number, and
/// plain numeric arithmetic; comparisons work on numbers, energies (concrete
/// Joule parts compared after requiring concreteness), and booleans for
/// equality.
pub(crate) fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub => match (a, b) {
            (Value::Num(x), Value::Num(y)) => Ok(Value::Num(if op == Add { x + y } else { x - y })),
            (Value::Energy(x), Value::Energy(y)) => Ok(Value::Energy(if op == Add {
                x.plus(&y)
            } else {
                x.minus(&y)
            })),
            (a, b) => Err(Error::Type {
                expected: "matching operand types for +/-",
                got: format!("{} and {}", a.type_name(), b.type_name()),
            }),
        },
        Mul => match (a, b) {
            (Value::Num(x), Value::Num(y)) => Ok(Value::Num(x * y)),
            (Value::Energy(e), Value::Num(k)) | (Value::Num(k), Value::Energy(e)) => {
                Ok(Value::Energy(e.scaled(k)))
            }
            (a, b) => Err(Error::Type {
                expected: "number*number or energy*number",
                got: format!("{} and {}", a.type_name(), b.type_name()),
            }),
        },
        Div => match (a, b) {
            (Value::Num(x), Value::Num(y)) => {
                if y == 0.0 {
                    Err(Error::DivisionByZero)
                } else {
                    Ok(Value::Num(x / y))
                }
            }
            (Value::Energy(e), Value::Num(k)) => {
                if k == 0.0 {
                    Err(Error::DivisionByZero)
                } else {
                    Ok(Value::Energy(e.scaled(1.0 / k)))
                }
            }
            (Value::Energy(x), Value::Energy(y)) => {
                let xj = x.to_energy().map_err(|_| Error::Type {
                    expected: "concrete energies for energy/energy",
                    got: "abstract energy".into(),
                })?;
                let yj = y.to_energy().map_err(|_| Error::Type {
                    expected: "concrete energies for energy/energy",
                    got: "abstract energy".into(),
                })?;
                if yj.as_joules() == 0.0 {
                    Err(Error::DivisionByZero)
                } else {
                    Ok(Value::Num(xj / yj))
                }
            }
            (a, b) => Err(Error::Type {
                expected: "number/number, energy/number, or energy/energy",
                got: format!("{} and {}", a.type_name(), b.type_name()),
            }),
        },
        Mod => {
            let x = a.as_num()?;
            let y = b.as_num()?;
            if y == 0.0 {
                Err(Error::DivisionByZero)
            } else {
                Ok(Value::Num(x.rem_euclid(y)))
            }
        }
        Eq | Ne => {
            let eq = values_equal(&a, &b)?;
            Ok(Value::Bool(if op == Eq { eq } else { !eq }))
        }
        Lt | Le | Gt | Ge => {
            let (x, y) = comparable_pair(a, b)?;
            let r = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!("comparison op"),
            };
            Ok(Value::Bool(r))
        }
        And | Or => unreachable!("logical ops are short-circuited in Eval::expr"),
    }
}

fn values_equal(a: &Value, b: &Value) -> Result<bool> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Ok(x == y),
        (Value::Bool(x), Value::Bool(y)) => Ok(x == y),
        (Value::Energy(x), Value::Energy(y)) => Ok(x == y),
        _ => Err(Error::Type {
            expected: "matching operand types for ==",
            got: format!("{} and {}", a.type_name(), b.type_name()),
        }),
    }
}

fn comparable_pair(a: Value, b: Value) -> Result<(f64, f64)> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Ok((x, y)),
        (Value::Energy(x), Value::Energy(y)) => {
            let xe = x.to_energy().map_err(|_| Error::Type {
                expected: "concrete energies for comparison",
                got: "abstract energy".into(),
            })?;
            let ye = y.to_energy().map_err(|_| Error::Type {
                expected: "concrete energies for comparison",
                got: "abstract energy".into(),
            })?;
            Ok((xe.as_joules(), ye.as_joules()))
        }
        (a, b) => Err(Error::Type {
            expected: "numbers or energies for comparison",
            got: format!("{} and {}", a.type_name(), b.type_name()),
        }),
    }
}

/// Evaluates a builtin on already-evaluated arguments.
pub fn eval_builtin(b: Builtin, args: &[Value]) -> Result<Value> {
    if args.len() != b.arity() {
        return Err(Error::Arity {
            func: b.name().to_string(),
            expected: b.arity(),
            got: args.len(),
        });
    }
    let num = |i: usize| args[i].as_num();
    match b {
        Builtin::Min | Builtin::Max => match (&args[0], &args[1]) {
            (Value::Num(x), Value::Num(y)) => Ok(Value::Num(if b == Builtin::Min {
                x.min(*y)
            } else {
                x.max(*y)
            })),
            (Value::Energy(x), Value::Energy(y)) => {
                let xe = x.to_energy()?;
                let ye = y.to_energy()?;
                let r = if b == Builtin::Min {
                    xe.min(ye)
                } else {
                    xe.max(ye)
                };
                Ok(Value::Energy(EnergyVec::from_energy(r)))
            }
            (a, c) => Err(Error::Type {
                expected: "two numbers or two concrete energies",
                got: format!("{} and {}", a.type_name(), c.type_name()),
            }),
        },
        Builtin::Abs => Ok(Value::Num(num(0)?.abs())),
        Builtin::Ceil => Ok(Value::Num(num(0)?.ceil())),
        Builtin::Floor => Ok(Value::Num(num(0)?.floor())),
        Builtin::Round => Ok(Value::Num(num(0)?.round())),
        Builtin::Sqrt => {
            let x = num(0)?;
            if x < 0.0 {
                Err(Error::NonFinite {
                    context: "sqrt of negative".into(),
                })
            } else {
                Ok(Value::Num(x.sqrt()))
            }
        }
        Builtin::Log2 => {
            let x = num(0)?;
            if x <= 0.0 {
                Err(Error::NonFinite {
                    context: "log2 of non-positive".into(),
                })
            } else {
                Ok(Value::Num(x.log2()))
            }
        }
        Builtin::Ln => {
            let x = num(0)?;
            if x <= 0.0 {
                Err(Error::NonFinite {
                    context: "ln of non-positive".into(),
                })
            } else {
                Ok(Value::Num(x.ln()))
            }
        }
        Builtin::Exp => {
            let r = num(0)?.exp();
            if r.is_finite() {
                Ok(Value::Num(r))
            } else {
                Err(Error::NonFinite {
                    context: "exp overflow".into(),
                })
            }
        }
        Builtin::Pow => {
            let r = num(0)?.powf(num(1)?);
            if r.is_finite() {
                Ok(Value::Num(r))
            } else {
                Err(Error::NonFinite {
                    context: "pow overflow or domain error".into(),
                })
            }
        }
        Builtin::Joules => Ok(Value::joules(num(0)?)),
        Builtin::Clamp => {
            let x = num(0)?;
            let lo = num(1)?;
            let hi = num(2)?;
            // `f64::clamp` panics on an inverted or NaN range; surface it
            // as an evaluation error instead (NaN bounds are rejected
            // explicitly since `lo > hi` is false for them).
            if lo > hi || lo.is_nan() || hi.is_nan() {
                return Err(Error::Type {
                    expected: "clamp bounds with lo <= hi",
                    got: format!("lo {lo:?}, hi {hi:?}"),
                });
            }
            Ok(Value::Num(x.clamp(lo, hi)))
        }
    }
}

/// Evaluates `iface.func(args)` under one concrete ECV assignment.
///
/// This is the deterministic core: every ECV must appear in `ecvs`.
pub fn eval_with_assignment(
    iface: &Interface,
    func: &str,
    args: &[Value],
    ecvs: &BTreeMap<String, EcvValue>,
    config: &EvalConfig,
) -> Result<Value> {
    if config.mode == ExecMode::Compiled {
        // One-shot compiled evaluation; callers that evaluate repeatedly
        // should go through a sampling driver or the eval cache, which
        // amortize the compile.
        let mut program = vm::compile(iface)?;
        if config.optimize {
            program = vm::optimize(&program);
        }
        let mut machine = vm::Vm::new(&program);
        return vm_eval(&mut machine, func, args, ecvs, config);
    }
    let mut ev = Eval {
        iface,
        ecvs,
        fuel: config.fuel,
        fuel_limit: config.fuel,
        max_depth: config.max_depth,
    };
    let result = ev.call(func, args.to_vec(), 0);
    if telemetry::enabled() {
        telemetry::counter_add("core.interp.evals", 1);
        telemetry::observe_ticks(
            "core.interp.fuel_per_eval",
            &telemetry::FUEL,
            config.fuel.saturating_sub(ev.fuel),
        );
    }
    result
}

/// Runs one compiled evaluation with the same telemetry as the
/// tree-walk's [`eval_with_assignment`] — the trace must not reveal which
/// engine ran.
fn vm_eval(
    machine: &mut vm::Vm<'_>,
    func: &str,
    args: &[Value],
    ecvs: &BTreeMap<String, EcvValue>,
    config: &EvalConfig,
) -> Result<Value> {
    let result = machine.run(func, args, ecvs, config);
    if telemetry::enabled() {
        telemetry::counter_add("core.interp.evals", 1);
        telemetry::observe_ticks(
            "core.interp.fuel_per_eval",
            &telemetry::FUEL,
            machine.fuel_used(),
        );
    }
    result
}

/// Resolves the engine for a sampling driver: compile once up front (and
/// under [`ExecMode::Auto`], fall back to the tree-walk if compilation
/// declines), or `None` to walk the tree per sample.
fn prepare_engine(iface: &Interface, config: &EvalConfig) -> Result<Option<vm::Program>> {
    let program = match config.mode {
        ExecMode::TreeWalk => return Ok(None),
        ExecMode::Compiled => Some(vm::compile(iface)?),
        ExecMode::Auto => vm::compile(iface).ok(),
    };
    Ok(program.map(|p| if config.optimize { vm::optimize(&p) } else { p }))
}

/// Evaluates `iface.func(args)` once, sampling unpinned ECVs with `seed`.
///
/// Returns the raw [`Value`]; use [`evaluate_energy`] when the result must be
/// a concrete energy.
pub fn evaluate(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    seed: u64,
    config: &EvalConfig,
) -> Result<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment = env.sample_assignment(&mut rng);
    eval_with_assignment(iface, func, args, &assignment, config)
}

/// Like [`evaluate`] but reduces the result to Joules via the configured
/// calibration.
pub fn evaluate_energy(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    seed: u64,
    config: &EvalConfig,
) -> Result<Energy> {
    let v = evaluate(iface, func, args, env, seed, config)?;
    let e = v.into_energy()?.calibrate(&config.calibration)?;
    telemetry::observe("core.interp.energy_j", &telemetry::ENERGY_J, e.as_joules());
    Ok(e)
}

/// Monte-Carlo sample-chunk size.
///
/// Samples are drawn in fixed-size chunks; chunk `k` gets its own `StdRng`
/// seeded from [`mc_chunk_seed`]`(seed, k)`. Because each chunk's stream is
/// independent of every other chunk's, chunks can be evaluated in any order
/// — or on any number of threads — and still produce the same sample
/// vector. Serial [`monte_carlo`] and parallel [`monte_carlo_par`] are
/// byte-identical by construction.
pub const MC_CHUNK: usize = 64;

/// Derives the RNG seed for Monte-Carlo chunk `chunk_index` from the
/// caller's `seed` with a SplitMix64-style finalizer, so nearby
/// `(seed, chunk)` pairs map to well-separated streams.
#[inline]
pub fn mc_chunk_seed(seed: u64, chunk_index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(chunk_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates one Monte-Carlo chunk: `len` samples drawn from the chunk's own
/// deterministic stream.
#[allow(clippy::too_many_arguments)]
fn mc_chunk(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    len: usize,
    seed: u64,
    chunk_index: u64,
    config: &EvalConfig,
    program: Option<&vm::Program>,
    cal: &InternedCalibration,
    parent: &str,
) -> Result<Vec<Energy>> {
    // Indexed span: keyed by the deterministic chunk index and rooted at
    // the driver's path, so the trace is identical whether this chunk ran
    // inline or on a worker thread.
    let mut sp = telemetry::span_indexed(parent, SpanKind::McChunk, func, chunk_index);
    telemetry::counter_add("core.interp.mc_chunks", 1);
    // One VM per chunk, reused across its samples: frame and scratch
    // allocations are paid once, which is most of the compiled speedup.
    let mut machine = program.map(vm::Vm::new);
    // Sampling-aware reuse: evaluation is deterministic per ECV
    // assignment, so the compiled loop replays the result of a
    // previously seen assignment instead of re-executing (Bernoulli and
    // discrete ECVs — and the no-ECV case — collapse to a handful of
    // distinct assignments per chunk; continuous ECVs never repeat and
    // pay only a hash probe). The replay re-emits the run's telemetry,
    // so the trace cannot reveal the reuse. Keys are the assignment's
    // raw bits in BTreeMap order; each ECV's value kind is fixed by its
    // distribution, so bool/num encodings cannot collide positionally.
    let mut seen: std::collections::HashMap<Vec<u64>, (Value, u64)> =
        std::collections::HashMap::new();
    let mut rng = StdRng::seed_from_u64(mc_chunk_seed(seed, chunk_index));
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let assignment = env.sample_assignment(&mut rng);
        let v = match machine.as_mut() {
            Some(m) => {
                let key: Vec<u64> = assignment
                    .values()
                    .map(|ev| match ev {
                        EcvValue::Bool(b) => *b as u64,
                        EcvValue::Num(x) => x.to_bits(),
                    })
                    .collect();
                match seen.get(&key) {
                    Some((v, fuel_used)) => {
                        if telemetry::enabled() {
                            telemetry::counter_add("core.interp.evals", 1);
                            telemetry::observe_ticks(
                                "core.interp.fuel_per_eval",
                                &telemetry::FUEL,
                                *fuel_used,
                            );
                        }
                        v.clone()
                    }
                    None => {
                        let v = vm_eval(m, func, args, &assignment, config)?;
                        seen.insert(key, (v.clone(), m.fuel_used()));
                        v
                    }
                }
            }
            None => eval_with_assignment(iface, func, args, &assignment, config)?,
        };
        let e = v.into_energy()?.calibrate_interned(cal)?;
        telemetry::observe(
            "core.interp.sample_energy_j",
            &telemetry::ENERGY_J,
            e.as_joules(),
        );
        sp.record_energy(e.as_joules());
        out.push(e);
    }
    sp.add_items(len as u64);
    Ok(out)
}

/// Monte-Carlo evaluation: `n` independent ECV samples → empirical
/// [`EnergyDist`].
///
/// This is the serial reference for [`monte_carlo_par`]: it evaluates the
/// same [`MC_CHUNK`]-sized chunks in order on the calling thread, so the two
/// produce identical sample vectors for any thread count.
pub fn monte_carlo(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    n: usize,
    seed: u64,
    config: &EvalConfig,
) -> Result<EnergyDist> {
    let program = prepare_engine(iface, config)?;
    let mut sp = telemetry::span(SpanKind::Mc, func);
    sp.add_items(n as u64);
    telemetry::counter_add("core.interp.mc_samples", n as u64);
    let parent = telemetry::current_path();
    let cal = config.calibration.intern();
    let mut samples = Vec::with_capacity(n);
    for (chunk_index, start) in (0..n).step_by(MC_CHUNK.max(1)).enumerate() {
        let len = MC_CHUNK.min(n - start);
        samples.extend(mc_chunk(
            iface,
            func,
            args,
            env,
            len,
            seed,
            chunk_index as u64,
            config,
            program.as_ref(),
            &cal,
            &parent,
        )?);
    }
    Ok(EnergyDist::empirical(samples))
}

/// Parallel Monte-Carlo evaluation over a scoped `std::thread` pool.
///
/// Shards the `n` samples into [`MC_CHUNK`]-sized chunks, hands chunks to
/// `n_threads` workers through a shared cursor, and reassembles results in
/// chunk order. Each chunk re-derives its RNG from `(seed, chunk_index)`, so
/// **the output is byte-identical to serial [`monte_carlo`] regardless of
/// thread count or scheduling**. Errors are also deterministic: the error
/// from the lowest-numbered failing chunk is returned, which is the same
/// error the serial loop would have hit first.
///
/// `n_threads = 0` uses the machine's available parallelism.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_par(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    n: usize,
    seed: u64,
    n_threads: usize,
    config: &EvalConfig,
) -> Result<EnergyDist> {
    let n_threads = if n_threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        n_threads
    };
    let n_chunks = n.div_ceil(MC_CHUNK);
    if n_threads <= 1 || n_chunks <= 1 {
        return monte_carlo(iface, func, args, env, n, seed, config);
    }

    let program = prepare_engine(iface, config)?;
    let mut sp = telemetry::span(SpanKind::Mc, func);
    sp.add_items(n as u64);
    telemetry::counter_add("core.interp.mc_samples", n as u64);
    let parent = telemetry::current_path();
    let cal = config.calibration.intern();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<Vec<Energy>>>>> =
        (0..n_chunks).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let (cursor, slots, cal, parent) = (&cursor, &slots, &cal, parent.as_str());
        let program = program.as_ref();
        for _ in 0..n_threads.min(n_chunks) {
            scope.spawn(move || {
                loop {
                    let chunk_index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if chunk_index >= n_chunks {
                        break;
                    }
                    let start = chunk_index * MC_CHUNK;
                    let len = MC_CHUNK.min(n - start);
                    let result = mc_chunk(
                        iface,
                        func,
                        args,
                        env,
                        len,
                        seed,
                        chunk_index as u64,
                        config,
                        program,
                        cal,
                        parent,
                    );
                    *slots[chunk_index].lock().unwrap() = Some(result);
                }
                // Drain telemetry before the closure returns: the scope
                // unblocks the spawner at closure return, which can be
                // before this thread's TLS destructors (the automatic
                // flush) have run.
                telemetry::flush();
            });
        }
    });

    let mut samples = Vec::with_capacity(n);
    for slot in slots {
        let chunk = slot
            .into_inner()
            .unwrap()
            .expect("every chunk index below n_chunks is claimed by a worker");
        samples.extend(chunk?);
    }
    Ok(EnergyDist::empirical(samples))
}

/// Batch evaluation: `iface.func(args)` for every argument set in `argsets`,
/// reduced to Joules.
///
/// Equivalent to calling [`evaluate_energy`] once per argument set with the
/// same `seed`, but amortizes the per-call setup across the whole batch: the
/// ECV assignment is sampled once (it depends only on `seed`, not on the
/// arguments) and the calibration is interned once. Hot callers that sweep a
/// parameter — candidate ranking in `ei-sched`, the Table 1 grid in
/// `ei-bench`, microbenchmark fitting in `ei-extract` — should prefer this
/// over per-argset [`evaluate_energy`] calls.
pub fn evaluate_batch(
    iface: &Interface,
    func: &str,
    argsets: &[Vec<Value>],
    env: &EcvEnv,
    seed: u64,
    config: &EvalConfig,
) -> Result<Vec<Energy>> {
    let program = prepare_engine(iface, config)?;
    let mut machine = program.as_ref().map(vm::Vm::new);
    let mut sp = telemetry::span(SpanKind::EnergyQuery, func);
    sp.add_items(argsets.len() as u64);
    telemetry::counter_add("core.interp.batch_evals", argsets.len() as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment = env.sample_assignment(&mut rng);
    let cal = config.calibration.intern();
    let mut out = Vec::with_capacity(argsets.len());
    for args in argsets {
        let v = match machine.as_mut() {
            Some(m) => vm_eval(m, func, args, &assignment, config)?,
            None => eval_with_assignment(iface, func, args, &assignment, config)?,
        };
        let e = v.into_energy()?.calibrate_interned(&cal)?;
        sp.record_energy(e.as_joules());
        out.push(e);
    }
    Ok(out)
}

/// Exact evaluation: enumerates the finite ECV space (≤ `limit` assignments)
/// and returns the exact mixture distribution.
pub fn enumerate_exact(
    iface: &Interface,
    func: &str,
    args: &[Value],
    env: &EcvEnv,
    limit: usize,
    config: &EvalConfig,
) -> Result<EnergyDist> {
    let assignments = env.enumerate_assignments(limit)?;
    let program = prepare_engine(iface, config)?;
    let mut machine = program.as_ref().map(vm::Vm::new);
    let mut sp = telemetry::span(SpanKind::EnergyQuery, func);
    sp.add_items(assignments.len() as u64);
    telemetry::counter_add("core.interp.exact_enumerations", 1);
    let mut outcomes = Vec::with_capacity(assignments.len());
    for (assignment, p) in assignments {
        let v = match machine.as_mut() {
            Some(m) => vm_eval(m, func, args, &assignment, config)?,
            None => eval_with_assignment(iface, func, args, &assignment, config)?,
        };
        outcomes.push((v.into_energy()?.calibrate(&config.calibration)?, p));
    }
    Ok(EnergyDist::mixture(outcomes))
}

/// The expected (mean) energy of `iface.func(args)`.
///
/// Uses exact enumeration when the ECV space is small, falling back to
/// Monte Carlo with 4096 samples otherwise.
pub fn expected_energy(
    iface: &Interface,
    func: &str,
    args: &[Value],
    config: &EvalConfig,
) -> Result<Energy> {
    let env = iface.ecv_env();
    match enumerate_exact(iface, func, args, &env, 4096, config) {
        Ok(d) => Ok(d.mean()),
        Err(Error::Analysis { .. }) => {
            Ok(monte_carlo(iface, func, args, &env, 4096, 0xE1, config)?.mean())
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ExternDecl;
    use crate::ecv::{DistSpec, EcvDecl};

    fn cfg() -> EvalConfig {
        EvalConfig::default()
    }

    /// Builds Fig. 1's interface programmatically (also exercised by the
    /// parser tests with the same semantics).
    fn fig1() -> Interface {
        let mut i = Interface::new("ml_webservice");
        i.add_unit("conv2d");
        i.add_unit("relu");
        i.add_unit("mlp");
        i.add_ecv(
            "request_hit",
            EcvDecl {
                dist: DistSpec::Bernoulli { p: 0.25 },
                doc: "request found in cache".into(),
            },
        )
        .unwrap();
        i.add_ecv(
            "local_cache_hit",
            EcvDecl {
                dist: DistSpec::Bernoulli { p: 0.8 },
                doc: "cache hit in current node".into(),
            },
        )
        .unwrap();

        // fn handle(request): mirrors Fig. 1 line by line.
        i.add_fn(FnDef::new(
            "handle",
            vec!["request".into()],
            vec![
                Stmt::Let("max_response_len".into(), Expr::Num(1024.0)),
                Stmt::If(
                    Expr::Ecv("request_hit".into()),
                    vec![Stmt::Return(Expr::Call(
                        "cache_lookup".into(),
                        vec![
                            Expr::input_field("request", "image_id"),
                            Expr::var("max_response_len"),
                        ],
                    ))],
                    vec![Stmt::Return(Expr::Call(
                        "cnn_forward".into(),
                        vec![Expr::var("request")],
                    ))],
                ),
            ],
        ))
        .unwrap();
        i.add_fn(FnDef::new(
            "cache_lookup",
            vec!["key".into(), "response_len".into()],
            vec![Stmt::Return(Expr::bin(
                BinOp::Mul,
                Expr::IfExpr(
                    Box::new(Expr::Ecv("local_cache_hit".into())),
                    Box::new(Expr::Joules(5e-3)),
                    Box::new(Expr::Joules(100e-3)),
                ),
                Expr::var("response_len"),
            ))],
        ))
        .unwrap();
        i.add_fn(FnDef::new(
            "cnn_forward",
            vec!["request".into()],
            vec![
                Stmt::Let("n_embedding".into(), Expr::Num(256.0)),
                Stmt::Let(
                    "nonzero".into(),
                    Expr::bin(
                        BinOp::Sub,
                        Expr::input_field("request", "image_size"),
                        Expr::input_field("request", "image_zeros"),
                    ),
                ),
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::Num(8.0),
                            Expr::Call("conv2d".into(), vec![Expr::var("nonzero")]),
                        ),
                        Expr::bin(
                            BinOp::Mul,
                            Expr::Num(8.0),
                            Expr::Call("relu_e".into(), vec![Expr::var("n_embedding")]),
                        ),
                    ),
                    Expr::bin(
                        BinOp::Mul,
                        Expr::Num(16.0),
                        Expr::Call("mlp_e".into(), vec![Expr::var("n_embedding")]),
                    ),
                )),
            ],
        ))
        .unwrap();
        // Leaf interfaces in abstract units.
        i.add_fn(FnDef::new(
            "conv2d",
            vec!["n".into()],
            vec![Stmt::Return(Expr::bin(
                BinOp::Mul,
                Expr::Unit("conv2d".into(), 1.0),
                Expr::bin(BinOp::Div, Expr::var("n"), Expr::Num(1024.0)),
            ))],
        ))
        .unwrap();
        i.add_fn(FnDef::new(
            "relu_e",
            vec!["n".into()],
            vec![Stmt::Return(Expr::bin(
                BinOp::Mul,
                Expr::Unit("relu".into(), 1.0),
                Expr::bin(BinOp::Div, Expr::var("n"), Expr::Num(256.0)),
            ))],
        ))
        .unwrap();
        i.add_fn(FnDef::new(
            "mlp_e",
            vec!["n".into()],
            vec![Stmt::Return(Expr::bin(
                BinOp::Mul,
                Expr::Unit("mlp".into(), 1.0),
                Expr::bin(BinOp::Div, Expr::var("n"), Expr::Num(256.0)),
            ))],
        ))
        .unwrap();
        i.validate().unwrap();
        i
    }

    fn request(size: f64, zeros: f64) -> Value {
        Value::num_record([
            ("image_id", 7.0),
            ("image_size", size),
            ("image_zeros", zeros),
        ])
    }

    fn fig1_calibration() -> Calibration {
        Calibration::from_pairs([
            ("conv2d", Energy::millijoules(40.0)),
            ("relu", Energy::millijoules(1.0)),
            ("mlp", Energy::millijoules(10.0)),
        ])
    }

    #[test]
    fn cache_hit_paths() {
        let i = fig1();
        let mut env = i.ecv_env();
        env.pin_bool("request_hit", true);
        env.pin_bool("local_cache_hit", true);
        let cfg = cfg();
        let e = evaluate_energy(&i, "handle", &[request(4096.0, 0.0)], &env, 1, &cfg).unwrap();
        // 5 mJ * 1024.
        assert!((e.as_joules() - 5e-3 * 1024.0).abs() < 1e-9);

        env.pin_bool("local_cache_hit", false);
        let e = evaluate_energy(&i, "handle", &[request(4096.0, 0.0)], &env, 1, &cfg).unwrap();
        assert!((e.as_joules() - 100e-3 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn miss_path_uses_abstract_units_and_zero_skipping() {
        let i = fig1();
        let mut env = i.ecv_env();
        env.pin_bool("request_hit", false);
        let mut cfg = cfg();
        cfg.calibration = fig1_calibration();
        let dense = evaluate_energy(&i, "handle", &[request(2048.0, 0.0)], &env, 1, &cfg).unwrap();
        let sparse =
            evaluate_energy(&i, "handle", &[request(2048.0, 1024.0)], &env, 1, &cfg).unwrap();
        // Zero-skipping: the sparse image consumes strictly less energy.
        assert!(sparse < dense);
        // Exact: 8 * (2048/1024) * 40mJ + 8 * 1mJ + 16 * 10mJ.
        let expect = 8.0 * 2.0 * 40e-3 + 8.0 * 1e-3 + 16.0 * 10e-3;
        assert!((dense.as_joules() - expect).abs() < 1e-9);
    }

    #[test]
    fn uncalibrated_abstract_result_errors() {
        let i = fig1();
        let mut env = i.ecv_env();
        env.pin_bool("request_hit", false);
        let err =
            evaluate_energy(&i, "handle", &[request(1024.0, 0.0)], &env, 1, &cfg()).unwrap_err();
        assert!(matches!(err, Error::Uncalibrated { .. }));
    }

    #[test]
    fn exact_enumeration_matches_hand_computation() {
        let i = fig1();
        let mut cfg = cfg();
        cfg.calibration = fig1_calibration();
        let env = i.ecv_env();
        let d = enumerate_exact(&i, "handle", &[request(1024.0, 0.0)], &env, 100, &cfg).unwrap();
        // Three distinct outcomes: hit-local, hit-remote, miss.
        assert_eq!(d.len(), 3);
        let hit_local = 5e-3 * 1024.0;
        let hit_remote = 100e-3 * 1024.0;
        let miss = 8.0 * 40e-3 + 8.0 * 1e-3 + 16.0 * 10e-3;
        let expected_mean = 0.25 * (0.8 * hit_local + 0.2 * hit_remote) + 0.75 * miss;
        assert!((d.mean().as_joules() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let i = fig1();
        let mut cfg = cfg();
        cfg.calibration = fig1_calibration();
        let env = i.ecv_env();
        let args = [request(1024.0, 0.0)];
        let exact = enumerate_exact(&i, "handle", &args, &env, 100, &cfg).unwrap();
        let mc = monte_carlo(&i, "handle", &args, &env, 20_000, 23, &cfg).unwrap();
        let rel =
            (mc.mean().as_joules() - exact.mean().as_joules()).abs() / exact.mean().as_joules();
        assert!(rel < 0.03, "rel={rel}");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let i = fig1();
        let mut cfg = cfg();
        cfg.calibration = fig1_calibration();
        let env = i.ecv_env();
        let args = [request(512.0, 10.0)];
        let a = monte_carlo(&i, "handle", &args, &env, 100, 99, &cfg).unwrap();
        let b = monte_carlo(&i, "handle", &args, &env, 100, 99, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn loops_and_assignment() {
        let mut i = Interface::new("loops");
        // Sum i for i in [0, n): returns n*(n-1)/2 Joules.
        i.add_fn(FnDef::new(
            "tri",
            vec!["n".into()],
            vec![
                Stmt::Let("acc".into(), Expr::Joules(0.0)),
                Stmt::For {
                    var: "i".into(),
                    from: Expr::Num(0.0),
                    to: Expr::var("n"),
                    body: vec![Stmt::Assign(
                        "acc".into(),
                        Expr::bin(
                            BinOp::Add,
                            Expr::var("acc"),
                            Expr::bin(BinOp::Mul, Expr::Joules(1.0), Expr::var("i")),
                        ),
                    )],
                },
                Stmt::Return(Expr::var("acc")),
            ],
        ))
        .unwrap();
        let env = EcvEnv::new();
        let e = evaluate_energy(&i, "tri", &[Value::Num(10.0)], &env, 0, &cfg()).unwrap();
        assert_eq!(e.as_joules(), 45.0);
    }

    #[test]
    fn while_loop_respects_bound() {
        let mut i = Interface::new("w");
        i.add_fn(FnDef::new(
            "spin",
            vec!["n".into()],
            vec![
                Stmt::Let("i".into(), Expr::Num(0.0)),
                Stmt::While {
                    cond: Expr::bin(BinOp::Lt, Expr::var("i"), Expr::var("n")),
                    bound: 10,
                    body: vec![Stmt::Assign(
                        "i".into(),
                        Expr::bin(BinOp::Add, Expr::var("i"), Expr::Num(1.0)),
                    )],
                },
                Stmt::Return(Expr::Joules(1.0)),
            ],
        ))
        .unwrap();
        let env = EcvEnv::new();
        assert!(evaluate(&i, "spin", &[Value::Num(5.0)], &env, 0, &cfg()).is_ok());
        let err = evaluate(&i, "spin", &[Value::Num(50.0)], &env, 0, &cfg()).unwrap_err();
        assert_eq!(err, Error::BoundExceeded { bound: 10 });
    }

    #[test]
    fn fuel_limits_runaway_interfaces() {
        let mut i = Interface::new("f");
        i.add_fn(FnDef::new(
            "big",
            vec![],
            vec![
                Stmt::Let("acc".into(), Expr::Num(0.0)),
                Stmt::For {
                    var: "i".into(),
                    from: Expr::Num(0.0),
                    to: Expr::Num(1e12),
                    body: vec![Stmt::Assign(
                        "acc".into(),
                        Expr::bin(BinOp::Add, Expr::var("acc"), Expr::Num(1.0)),
                    )],
                },
                Stmt::Return(Expr::Joules(0.0)),
            ],
        ))
        .unwrap();
        let mut c = cfg();
        c.fuel = 10_000;
        let err = evaluate(&i, "big", &[], &EcvEnv::new(), 0, &c).unwrap_err();
        assert!(matches!(err, Error::FuelExhausted { .. }));
    }

    #[test]
    fn recursion_depth_limited() {
        let mut i = Interface::new("r");
        i.add_fn(FnDef::new(
            "rec",
            vec!["n".into()],
            vec![Stmt::Return(Expr::Call(
                "rec".into(),
                vec![Expr::bin(BinOp::Add, Expr::var("n"), Expr::Num(1.0))],
            ))],
        ))
        .unwrap();
        let err = evaluate(&i, "rec", &[Value::Num(0.0)], &EcvEnv::new(), 0, &cfg()).unwrap_err();
        assert!(matches!(
            err,
            Error::StackOverflow { .. } | Error::FuelExhausted { .. }
        ));
    }

    #[test]
    fn bounded_recursion_works() {
        // Recursion is allowed (Turing-complete language): fib-style energy.
        let mut i = Interface::new("r");
        i.add_fn(FnDef::new(
            "e",
            vec!["n".into()],
            vec![Stmt::If(
                Expr::bin(BinOp::Le, Expr::var("n"), Expr::Num(0.0)),
                vec![Stmt::Return(Expr::Joules(1.0))],
                vec![Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::Joules(0.5),
                    Expr::Call(
                        "e".into(),
                        vec![Expr::bin(BinOp::Sub, Expr::var("n"), Expr::Num(1.0))],
                    ),
                ))],
            )],
        ))
        .unwrap();
        let e = evaluate_energy(&i, "e", &[Value::Num(4.0)], &EcvEnv::new(), 0, &cfg()).unwrap();
        assert_eq!(e.as_joules(), 3.0);
    }

    #[test]
    fn calling_unlinked_extern_reports_link_error() {
        let mut i = Interface::new("x");
        i.add_extern(ExternDecl {
            name: "hw".into(),
            arity: 0,
            doc: String::new(),
        })
        .unwrap();
        i.add_fn(FnDef::new(
            "f",
            vec![],
            vec![Stmt::Return(Expr::Call("hw".into(), vec![]))],
        ))
        .unwrap();
        let err = evaluate(&i, "f", &[], &EcvEnv::new(), 0, &cfg()).unwrap_err();
        assert!(matches!(err, Error::Link { .. }));
    }

    #[test]
    fn type_errors_are_reported() {
        let mut i = Interface::new("t");
        i.add_fn(FnDef::new(
            "bad",
            vec![],
            vec![Stmt::Return(Expr::bin(
                BinOp::Add,
                Expr::Num(1.0),
                Expr::Joules(1.0),
            ))],
        ))
        .unwrap();
        assert!(matches!(
            evaluate(&i, "bad", &[], &EcvEnv::new(), 0, &cfg()),
            Err(Error::Type { .. })
        ));
    }

    #[test]
    fn division_rules() {
        assert!(matches!(
            eval_binary(BinOp::Div, Value::Num(1.0), Value::Num(0.0)),
            Err(Error::DivisionByZero)
        ));
        let r = eval_binary(BinOp::Div, Value::joules(6.0), Value::joules(2.0)).unwrap();
        assert_eq!(r, Value::Num(3.0));
        let r = eval_binary(BinOp::Div, Value::joules(6.0), Value::Num(2.0)).unwrap();
        assert_eq!(r, Value::joules(3.0));
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        let mut i = Interface::new("sc");
        // false && (1/0 < 1) must not evaluate the division.
        i.add_fn(FnDef::new(
            "f",
            vec![],
            vec![Stmt::If(
                Expr::bin(
                    BinOp::And,
                    Expr::Bool(false),
                    Expr::bin(
                        BinOp::Lt,
                        Expr::bin(BinOp::Div, Expr::Num(1.0), Expr::Num(0.0)),
                        Expr::Num(1.0),
                    ),
                ),
                vec![Stmt::Return(Expr::Joules(1.0))],
                vec![Stmt::Return(Expr::Joules(2.0))],
            )],
        ))
        .unwrap();
        let e = evaluate_energy(&i, "f", &[], &EcvEnv::new(), 0, &cfg()).unwrap();
        assert_eq!(e.as_joules(), 2.0);
    }

    #[test]
    fn builtins_behave() {
        use Builtin::*;
        let n = |x: f64| Value::Num(x);
        assert_eq!(eval_builtin(Min, &[n(1.0), n(2.0)]).unwrap(), n(1.0));
        assert_eq!(eval_builtin(Max, &[n(1.0), n(2.0)]).unwrap(), n(2.0));
        assert_eq!(eval_builtin(Abs, &[n(-3.0)]).unwrap(), n(3.0));
        assert_eq!(eval_builtin(Ceil, &[n(1.2)]).unwrap(), n(2.0));
        assert_eq!(eval_builtin(Floor, &[n(1.8)]).unwrap(), n(1.0));
        assert_eq!(eval_builtin(Round, &[n(1.5)]).unwrap(), n(2.0));
        assert_eq!(eval_builtin(Sqrt, &[n(9.0)]).unwrap(), n(3.0));
        assert_eq!(eval_builtin(Log2, &[n(8.0)]).unwrap(), n(3.0));
        assert_eq!(eval_builtin(Exp, &[n(0.0)]).unwrap(), n(1.0));
        assert_eq!(eval_builtin(Pow, &[n(2.0), n(10.0)]).unwrap(), n(1024.0));
        assert_eq!(eval_builtin(Joules, &[n(2.0)]).unwrap(), Value::joules(2.0));
        assert_eq!(
            eval_builtin(Clamp, &[n(5.0), n(0.0), n(3.0)]).unwrap(),
            n(3.0)
        );
        assert!(eval_builtin(Sqrt, &[n(-1.0)]).is_err());
        assert!(eval_builtin(Log2, &[n(0.0)]).is_err());
        assert!(eval_builtin(Ln, &[n(-1.0)]).is_err());
        assert!(eval_builtin(Min, &[n(1.0)]).is_err());
        let e = |x: f64| Value::joules(x);
        assert_eq!(eval_builtin(Min, &[e(1.0), e(2.0)]).unwrap(), e(1.0));
    }

    #[test]
    fn expected_energy_helper() {
        let i = fig1();
        let mut c = cfg();
        c.calibration = fig1_calibration();
        let e = expected_energy(&i, "handle", &[request(1024.0, 0.0)], &c).unwrap();
        assert!(e.as_joules() > 0.0);
    }
}
