//! Abstract syntax of the Energy Interface Language (EIL).
//!
//! An energy interface is "a little program that 'computes' energy usage by
//! 'calling into' the energy interfaces of resources used by this resource"
//! (§2). EIL is that little language: expressions and statements over
//! numbers, booleans, records (abstracted inputs), and energy vectors, plus
//! reads of [ECVs](crate::ecv) and calls into other interfaces.

use serde::{Deserialize, Serialize};

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (numbers or energies).
    Add,
    /// Subtraction (numbers or energies).
    Sub,
    /// Multiplication (number×number, number×energy, energy×number).
    Mul,
    /// Division (number/number, energy/number, energy/energy → number).
    Div,
    /// Remainder (numbers only).
    Mod,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical conjunction (short-circuiting).
    And,
    /// Logical disjunction (short-circuiting).
    Or,
}

impl BinOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding strength for the pretty-printer/parser (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// A built-in pure function usable in any interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Builtin {
    /// `min(a, b)` — smaller of two numbers or energies.
    Min,
    /// `max(a, b)` — larger of two numbers or energies.
    Max,
    /// `abs(x)` — absolute value of a number.
    Abs,
    /// `ceil(x)` — smallest integer ≥ x.
    Ceil,
    /// `floor(x)` — largest integer ≤ x.
    Floor,
    /// `round(x)` — nearest integer.
    Round,
    /// `sqrt(x)` — square root.
    Sqrt,
    /// `log2(x)` — base-2 logarithm.
    Log2,
    /// `ln(x)` — natural logarithm.
    Ln,
    /// `exp(x)` — e^x.
    Exp,
    /// `pow(x, y)` — x^y.
    Pow,
    /// `joules(x)` — converts a number into an energy of `x` Joules.
    Joules,
    /// `clamp(x, lo, hi)` — clamps a number to a range.
    Clamp,
}

impl Builtin {
    /// Resolves a builtin by its surface name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "abs" => Builtin::Abs,
            "ceil" => Builtin::Ceil,
            "floor" => Builtin::Floor,
            "round" => Builtin::Round,
            "sqrt" => Builtin::Sqrt,
            "log2" => Builtin::Log2,
            "ln" => Builtin::Ln,
            "exp" => Builtin::Exp,
            "pow" => Builtin::Pow,
            "joules" => Builtin::Joules,
            "clamp" => Builtin::Clamp,
            _ => return None,
        })
    }

    /// The builtin's surface name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Abs => "abs",
            Builtin::Ceil => "ceil",
            Builtin::Floor => "floor",
            Builtin::Round => "round",
            Builtin::Sqrt => "sqrt",
            Builtin::Log2 => "log2",
            Builtin::Ln => "ln",
            Builtin::Exp => "exp",
            Builtin::Pow => "pow",
            Builtin::Joules => "joules",
            Builtin::Clamp => "clamp",
        }
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Min | Builtin::Max | Builtin::Pow => 2,
            Builtin::Clamp => 3,
            _ => 1,
        }
    }

    /// Every builtin, for iteration in tests and docs.
    pub const ALL: [Builtin; 13] = [
        Builtin::Min,
        Builtin::Max,
        Builtin::Abs,
        Builtin::Ceil,
        Builtin::Floor,
        Builtin::Round,
        Builtin::Sqrt,
        Builtin::Log2,
        Builtin::Ln,
        Builtin::Exp,
        Builtin::Pow,
        Builtin::Joules,
        Builtin::Clamp,
    ];
}

/// An EIL expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// A boolean literal.
    Bool(bool),
    /// A concrete energy literal, stored in Joules (`2.5 mJ` → `0.0025`).
    Joules(f64),
    /// An abstract-unit energy literal: `3 relu` → `Unit("relu", 3.0)`.
    Unit(String, f64),
    /// A variable or parameter reference.
    Var(String),
    /// A record field access, e.g. `request.image_size`.
    Field(Box<Expr>, String),
    /// A read of an energy-critical variable.
    Ecv(String),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A call to an interface function (local, linked, or extern).
    Call(String, Vec<Expr>),
    /// A call to a built-in pure function.
    BuiltinCall(Builtin, Vec<Expr>),
    /// A conditional expression `if c { a } else { b }`.
    IfExpr(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor: `a <op> b`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor: field access `base.name`.
    pub fn field(base: Expr, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(base), name.into())
    }

    /// Convenience constructor: variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor: `input.field` (the common case).
    pub fn input_field(input: &str, field: &str) -> Expr {
        Expr::field(Expr::var(input), field)
    }

    /// Walks the expression tree, invoking `f` on every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Num(_)
            | Expr::Bool(_)
            | Expr::Joules(_)
            | Expr::Unit(_, _)
            | Expr::Var(_)
            | Expr::Ecv(_) => {}
            Expr::Field(b, _) | Expr::Unary(_, b) => b.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call(_, args) | Expr::BuiltinCall(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::IfExpr(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
        }
    }
}

/// An EIL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `let name = expr;` — introduces a local binding.
    Let(String, Expr),
    /// `name = expr;` — reassigns an existing local.
    Assign(String, Expr),
    /// `if cond { then } else { els }` — the `else` block may be empty.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for var in from..to { body }` — iterates `var` over `[from, to)`.
    For {
        /// Loop variable name.
        var: String,
        /// Inclusive start expression.
        from: Expr,
        /// Exclusive end expression.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while cond bound N { body }` — a while loop with a declared trip
    /// bound, required so that worst-case analysis stays decidable.
    While {
        /// Loop condition.
        cond: Expr,
        /// Declared maximum trip count; exceeding it is a runtime error.
        bound: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;` — ends the enclosing function with a value.
    Return(Expr),
}

impl Stmt {
    /// Walks every expression appearing in this statement (recursively).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) => e.visit(f),
            Stmt::If(c, t, els) => {
                c.visit(f);
                for s in t {
                    s.visit_exprs(f);
                }
                for s in els {
                    s.visit_exprs(f);
                }
            }
            Stmt::For { from, to, body, .. } => {
                from.visit(f);
                to.visit(f);
                for s in body {
                    s.visit_exprs(f);
                }
            }
            Stmt::While { cond, body, .. } => {
                cond.visit(f);
                for s in body {
                    s.visit_exprs(f);
                }
            }
        }
    }
}

/// A function definition inside an energy interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnDef {
    /// Function name (unique within an interface after linking).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements; evaluation ends at the first `return`.
    pub body: Vec<Stmt>,
    /// Documentation string shown by the pretty-printer.
    pub doc: String,
}

impl FnDef {
    /// Creates a function with no documentation.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> Self {
        FnDef {
            name: name.into(),
            params,
            body,
            doc: String::new(),
        }
    }

    /// Collects the names of all functions this one calls (excluding
    /// builtins).
    pub fn callees(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.body {
            s.visit_exprs(&mut |e| {
                if let Expr::Call(name, _) = e {
                    if !out.contains(name) {
                        out.push(name.clone());
                    }
                }
            });
        }
        out
    }

    /// Collects the names of all ECVs this function reads.
    pub fn ecvs_read(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.body {
            s.visit_exprs(&mut |e| {
                if let Expr::Ecv(name) = e {
                    if !out.contains(name) {
                        out.push(name.clone());
                    }
                }
            });
        }
        out
    }
}

/// An extern function declaration: called here, provided by a lower layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternDecl {
    /// Extern function name.
    pub name: String,
    /// Expected arity.
    pub arity: usize,
    /// Documentation string.
    pub doc: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_symbols_and_precedence() {
        assert_eq!(BinOp::Add.symbol(), "+");
        assert_eq!(BinOp::And.symbol(), "&&");
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn builtin_roundtrip_names() {
        for b in Builtin::ALL {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
            assert!(b.arity() >= 1 && b.arity() <= 3);
        }
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn fn_callees_and_ecvs() {
        let f = FnDef::new(
            "handle",
            vec!["request".into()],
            vec![Stmt::If(
                Expr::Ecv("request_hit".into()),
                vec![Stmt::Return(Expr::Call(
                    "cache_lookup".into(),
                    vec![Expr::input_field("request", "image_id")],
                ))],
                vec![Stmt::Return(Expr::Call(
                    "cnn_forward".into(),
                    vec![Expr::var("request")],
                ))],
            )],
        );
        assert_eq!(f.callees(), vec!["cache_lookup", "cnn_forward"]);
        assert_eq!(f.ecvs_read(), vec!["request_hit"]);
    }

    #[test]
    fn visit_covers_all_nodes() {
        let e = Expr::IfExpr(
            Box::new(Expr::bin(
                BinOp::Lt,
                Expr::Unary(UnOp::Neg, Box::new(Expr::Num(1.0))),
                Expr::BuiltinCall(Builtin::Max, vec![Expr::Num(2.0), Expr::Joules(3.0)]),
            )),
            Box::new(Expr::Unit("relu".into(), 2.0)),
            Box::new(Expr::field(Expr::var("x"), "f")),
        );
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn loop_statement_expr_visit() {
        let s = Stmt::For {
            var: "i".into(),
            from: Expr::Num(0.0),
            to: Expr::var("n"),
            body: vec![Stmt::Assign(
                "acc".into(),
                Expr::bin(BinOp::Add, Expr::var("acc"), Expr::Ecv("noise".into())),
            )],
        };
        let mut ecvs = 0;
        s.visit_exprs(&mut |e| {
            if matches!(e, Expr::Ecv(_)) {
                ecvs += 1;
            }
        });
        assert_eq!(ecvs, 1);
    }
}
