//! Energy distributions.
//!
//! Because interfaces read ECVs, "the return value of the energy interface
//! then is to be treated as a probability distribution" (§3). An
//! [`EnergyDist`] is that return value: either an exact finite mixture
//! (from enumerating discrete ECV spaces) or an empirical sample set (from
//! Monte Carlo over continuous ECVs).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Energy;

/// A probability distribution over energy values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnergyDist {
    /// An exact finite mixture of `(energy, probability)` outcomes.
    Mixture(Vec<(Energy, f64)>),
    /// An empirical distribution of equally weighted samples.
    Empirical(Vec<Energy>),
}

impl EnergyDist {
    /// A distribution that is always exactly `e`.
    pub fn point(e: Energy) -> Self {
        EnergyDist::Mixture(vec![(e, 1.0)])
    }

    /// Builds an exact mixture, merging outcomes with equal energy.
    ///
    /// Outcomes with zero probability are dropped; the rest are sorted by
    /// energy so mixtures compare structurally.
    pub fn mixture(outcomes: impl IntoIterator<Item = (Energy, f64)>) -> Self {
        let mut v: Vec<(Energy, f64)> = outcomes.into_iter().filter(|(_, p)| *p > 0.0).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut merged: Vec<(Energy, f64)> = Vec::with_capacity(v.len());
        for (e, p) in v {
            match merged.last_mut() {
                Some((le, lp)) if (le.as_joules() - e.as_joules()).abs() < f64::EPSILON => {
                    *lp += p;
                }
                _ => merged.push((e, p)),
            }
        }
        EnergyDist::Mixture(merged)
    }

    /// Builds an empirical distribution from samples.
    pub fn empirical(samples: Vec<Energy>) -> Self {
        EnergyDist::Empirical(samples)
    }

    /// Number of distinct outcomes / samples backing the distribution.
    pub fn len(&self) -> usize {
        match self {
            EnergyDist::Mixture(v) => v.len(),
            EnergyDist::Empirical(v) => v.len(),
        }
    }

    /// True when the distribution has no outcomes (degenerate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mean (expected) energy.
    pub fn mean(&self) -> Energy {
        match self {
            EnergyDist::Mixture(v) => {
                let total_p: f64 = v.iter().map(|(_, p)| p).sum();
                if total_p == 0.0 {
                    return Energy::ZERO;
                }
                Energy(v.iter().map(|(e, p)| e.as_joules() * p).sum::<f64>() / total_p)
            }
            EnergyDist::Empirical(v) => {
                if v.is_empty() {
                    return Energy::ZERO;
                }
                Energy(v.iter().map(|e| e.as_joules()).sum::<f64>() / v.len() as f64)
            }
        }
    }

    /// The variance of the energy, in Joules squared.
    pub fn variance(&self) -> f64 {
        let m = self.mean().as_joules();
        match self {
            EnergyDist::Mixture(v) => {
                let total_p: f64 = v.iter().map(|(_, p)| p).sum();
                if total_p == 0.0 {
                    return 0.0;
                }
                v.iter()
                    .map(|(e, p)| p * (e.as_joules() - m).powi(2))
                    .sum::<f64>()
                    / total_p
            }
            EnergyDist::Empirical(v) => {
                if v.is_empty() {
                    return 0.0;
                }
                v.iter().map(|e| (e.as_joules() - m).powi(2)).sum::<f64>() / v.len() as f64
            }
        }
    }

    /// The standard deviation of the energy, in Joules.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The smallest possible energy (minimum of support / samples).
    pub fn min(&self) -> Energy {
        self.fold_energy(f64::INFINITY, f64::min)
    }

    /// The largest possible energy (maximum of support / samples).
    pub fn max(&self) -> Energy {
        self.fold_energy(f64::NEG_INFINITY, f64::max)
    }

    fn fold_energy(&self, init: f64, f: fn(f64, f64) -> f64) -> Energy {
        let folded = match self {
            EnergyDist::Mixture(v) => v.iter().map(|(e, _)| e.as_joules()).fold(init, f),
            EnergyDist::Empirical(v) => v.iter().map(|e| e.as_joules()).fold(init, f),
        };
        if folded.is_finite() {
            Energy(folded)
        } else {
            Energy::ZERO
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by linear search over the CDF.
    pub fn quantile(&self, q: f64) -> Energy {
        let q = q.clamp(0.0, 1.0);
        match self {
            EnergyDist::Mixture(v) => {
                if v.is_empty() {
                    return Energy::ZERO;
                }
                let total_p: f64 = v.iter().map(|(_, p)| p).sum();
                let mut acc = 0.0;
                for (e, p) in v {
                    acc += p / total_p;
                    if acc >= q {
                        return *e;
                    }
                }
                v.last().map(|(e, _)| *e).unwrap_or(Energy::ZERO)
            }
            EnergyDist::Empirical(v) => {
                if v.is_empty() {
                    return Energy::ZERO;
                }
                let mut sorted: Vec<f64> = v.iter().map(|e| e.as_joules()).collect();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
                Energy(sorted[idx])
            }
        }
    }

    /// True when all outcomes are (numerically) a single energy value.
    pub fn is_deterministic(&self, tolerance: Energy) -> bool {
        (self.max() - self.min()).as_joules().abs() <= tolerance.as_joules()
    }

    /// The probability that the energy exceeds `threshold`.
    pub fn prob_exceeds(&self, threshold: Energy) -> f64 {
        match self {
            EnergyDist::Mixture(v) => {
                let total_p: f64 = v.iter().map(|(_, p)| p).sum();
                if total_p == 0.0 {
                    return 0.0;
                }
                v.iter()
                    .filter(|(e, _)| *e > threshold)
                    .map(|(_, p)| p)
                    .sum::<f64>()
                    / total_p
            }
            EnergyDist::Empirical(v) => {
                if v.is_empty() {
                    return 0.0;
                }
                v.iter().filter(|e| **e > threshold).count() as f64 / v.len() as f64
            }
        }
    }

    /// Scales every outcome by `k` (e.g. per-request → per-batch energy).
    pub fn scaled(&self, k: f64) -> EnergyDist {
        match self {
            EnergyDist::Mixture(v) => {
                EnergyDist::Mixture(v.iter().map(|(e, p)| (*e * k, *p)).collect())
            }
            EnergyDist::Empirical(v) => EnergyDist::Empirical(v.iter().map(|e| *e * k).collect()),
        }
    }

    /// Shifts every outcome by `offset` (e.g. adding idle energy).
    pub fn shifted(&self, offset: Energy) -> EnergyDist {
        match self {
            EnergyDist::Mixture(v) => {
                EnergyDist::Mixture(v.iter().map(|(e, p)| (*e + offset, *p)).collect())
            }
            EnergyDist::Empirical(v) => {
                EnergyDist::Empirical(v.iter().map(|e| *e + offset).collect())
            }
        }
    }

    /// The distribution of the sum of independent draws from `self` and
    /// `other` (convolution).
    ///
    /// Mixtures convolve exactly (size = product, so keep supports small);
    /// anything involving an empirical side pairs samples cyclically.
    pub fn convolve(&self, other: &EnergyDist) -> EnergyDist {
        match (self, other) {
            (EnergyDist::Mixture(a), EnergyDist::Mixture(b)) => {
                let mut out = Vec::with_capacity(a.len() * b.len());
                for (ea, pa) in a {
                    for (eb, pb) in b {
                        out.push((*ea + *eb, pa * pb));
                    }
                }
                EnergyDist::mixture(out)
            }
            _ => {
                let xs = self.to_samples();
                let ys = other.to_samples();
                if xs.is_empty() {
                    return other.clone();
                }
                if ys.is_empty() {
                    return self.clone();
                }
                let n = xs.len().max(ys.len());
                let samples = (0..n)
                    .map(|i| xs[i % xs.len()] + ys[i % ys.len()])
                    .collect();
                EnergyDist::Empirical(samples)
            }
        }
    }

    /// Flattens the distribution into a vector of representative samples.
    ///
    /// Mixtures are expanded proportionally into ~1000 samples.
    pub fn to_samples(&self) -> Vec<Energy> {
        match self {
            EnergyDist::Empirical(v) => v.clone(),
            EnergyDist::Mixture(v) => {
                let total_p: f64 = v.iter().map(|(_, p)| p).sum();
                if total_p == 0.0 {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for (e, p) in v {
                    let count = ((p / total_p) * 1000.0).round().max(1.0) as usize;
                    out.resize(out.len() + count, *e);
                }
                out
            }
        }
    }
}

impl fmt::Display for EnergyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyDist::Mixture(v) if v.len() == 1 => write!(f, "{}", v[0].0),
            _ => write!(
                f,
                "{} (sd {}, p5 {}, p95 {})",
                self.mean(),
                Energy(self.std_dev()),
                self.quantile(0.05),
                self.quantile(0.95)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(pairs: &[(f64, f64)]) -> EnergyDist {
        EnergyDist::mixture(pairs.iter().map(|(e, p)| (Energy::joules(*e), *p)))
    }

    #[test]
    fn point_distribution_stats() {
        let d = EnergyDist::point(Energy::joules(3.0));
        assert_eq!(d.mean().as_joules(), 3.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.min().as_joules(), 3.0);
        assert_eq!(d.max().as_joules(), 3.0);
        assert!(d.is_deterministic(Energy::ZERO));
        assert_eq!(format!("{d}"), "3.0000 J");
    }

    #[test]
    fn mixture_mean_variance_quantiles() {
        let d = mix(&[(1.0, 0.5), (3.0, 0.5)]);
        assert_eq!(d.mean().as_joules(), 2.0);
        assert_eq!(d.variance(), 1.0);
        assert_eq!(d.std_dev(), 1.0);
        assert_eq!(d.quantile(0.25).as_joules(), 1.0);
        assert_eq!(d.quantile(0.75).as_joules(), 3.0);
        assert_eq!(d.quantile(1.0).as_joules(), 3.0);
        assert_eq!(d.min().as_joules(), 1.0);
        assert_eq!(d.max().as_joules(), 3.0);
    }

    #[test]
    fn mixture_merges_equal_outcomes_and_drops_zero() {
        let d = mix(&[(2.0, 0.3), (2.0, 0.2), (5.0, 0.5), (9.0, 0.0)]);
        match &d {
            EnergyDist::Mixture(v) => {
                assert_eq!(v.len(), 2);
                assert!((v[0].1 - 0.5).abs() < 1e-12);
            }
            _ => panic!("expected mixture"),
        }
    }

    #[test]
    fn empirical_stats() {
        let d = EnergyDist::empirical((1..=100).map(|i| Energy::joules(i as f64)).collect());
        assert!((d.mean().as_joules() - 50.5).abs() < 1e-9);
        assert_eq!(d.min().as_joules(), 1.0);
        assert_eq!(d.max().as_joules(), 100.0);
        assert_eq!(d.quantile(0.0).as_joules(), 1.0);
        let med = d.quantile(0.5).as_joules();
        assert!((med - 50.0).abs() <= 1.0);
    }

    #[test]
    fn prob_exceeds() {
        let d = mix(&[(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]);
        assert!((d.prob_exceeds(Energy::joules(1.5)) - 0.75).abs() < 1e-12);
        assert_eq!(d.prob_exceeds(Energy::joules(5.0)), 0.0);
        let e = EnergyDist::empirical(vec![Energy::joules(1.0), Energy::joules(4.0)]);
        assert_eq!(e.prob_exceeds(Energy::joules(2.0)), 0.5);
    }

    #[test]
    fn scale_and_shift() {
        let d = mix(&[(1.0, 0.5), (3.0, 0.5)]);
        let s = d.scaled(2.0).shifted(Energy::joules(1.0));
        assert_eq!(s.min().as_joules(), 3.0);
        assert_eq!(s.max().as_joules(), 7.0);
        assert_eq!(s.mean().as_joules(), 5.0);
    }

    #[test]
    fn convolution_exact() {
        let a = mix(&[(1.0, 0.5), (2.0, 0.5)]);
        let b = mix(&[(10.0, 0.5), (20.0, 0.5)]);
        let c = a.convolve(&b);
        assert!((c.mean().as_joules() - 16.5).abs() < 1e-12);
        assert_eq!(c.min().as_joules(), 11.0);
        assert_eq!(c.max().as_joules(), 22.0);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn convolution_mixed_representations() {
        let a = EnergyDist::empirical(vec![Energy::joules(1.0); 10]);
        let b = mix(&[(5.0, 1.0)]);
        let c = a.convolve(&b);
        assert!((c.mean().as_joules() - 6.0).abs() < 1e-9);
        let empty = EnergyDist::empirical(vec![]);
        assert_eq!(empty.convolve(&a).mean().as_joules(), 1.0);
        assert_eq!(a.convolve(&empty).mean().as_joules(), 1.0);
    }

    #[test]
    fn empty_distributions_are_safe() {
        let d = EnergyDist::empirical(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.mean(), Energy::ZERO);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.quantile(0.5), Energy::ZERO);
        assert_eq!(d.min(), Energy::ZERO);
        assert_eq!(d.prob_exceeds(Energy::ZERO), 0.0);
    }

    #[test]
    fn to_samples_respects_weights() {
        let d = mix(&[(1.0, 0.9), (100.0, 0.1)]);
        let samples = d.to_samples();
        let heavy = samples.iter().filter(|e| e.as_joules() == 1.0).count();
        assert!((850..=950).contains(&heavy), "heavy={heavy}");
    }

    #[test]
    fn deterministic_with_tolerance() {
        let d = mix(&[(1.0, 0.5), (1.0000001, 0.5)]);
        assert!(d.is_deterministic(Energy::joules(1e-6)));
        assert!(!d.is_deterministic(Energy::joules(1e-9)));
    }
}
