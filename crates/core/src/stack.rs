//! The layered system-stack model of Fig. 2.
//!
//! "The system stack consists of layers, and each layer consists of
//! resources that perform energy-consuming work. ... Each layer in the
//! system stack has at least one resource manager that provisions and
//! manages resources in that layer. Since resource managers handle resource
//! allocation and maintain bindings between components at the different
//! layers, they are the ones that can combine the energy interfaces of the
//! underlying resources and expose the resulting energy interfaces of the
//! resources to the upper layer." (§3)
//!
//! A [`Stack`] is an ordered list of [`Layer`]s, bottom (hardware) first.
//! Each layer's [`ManagerPolicy`] decides how the layer's resources are
//! composed against everything exported from below — the default policy is
//! plain linking, but policies can rewrite interfaces (inject ECVs that
//! describe the manager's own state, add idle-energy amortization, etc.).

use std::collections::BTreeMap;

use crate::compose::{link_closure, Registry};
use crate::error::{Error, NameKind, Result};
use crate::interface::Interface;
use crate::units::Calibration;

/// A resource: a named component with an energy interface (Fig. 2's boxes).
#[derive(Debug, Clone)]
pub struct Resource {
    /// Resource name (unique within its layer).
    pub name: String,
    /// Human-readable description of the functional role.
    pub doc: String,
    /// The resource's energy interface (may have externs to lower layers).
    pub interface: Interface,
}

impl Resource {
    /// Creates a resource from a name and interface.
    pub fn new(name: impl Into<String>, interface: Interface) -> Self {
        Resource {
            name: name.into(),
            doc: String::new(),
            interface,
        }
    }

    /// Attaches documentation.
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = doc.into();
        self
    }
}

/// How a layer's resource manager composes its resources' interfaces.
///
/// The policy sees each resource's interface together with the registry of
/// everything exported by lower layers, and returns the interface that this
/// layer exports upward for that resource.
pub trait ManagerPolicy {
    /// The manager's name (systemd, Python runtime, Docker, ...).
    fn name(&self) -> &str;

    /// Composes one resource's interface against the lower-layer exports.
    ///
    /// The default links the resource against everything below it.
    fn compose(&self, resource: &Resource, below: &Registry) -> Result<Interface> {
        link_closure(&resource.interface, below)
    }

    /// Calibration contributed by this layer (hardware layers calibrate the
    /// abstract units they define). Defaults to empty.
    fn calibration(&self) -> Calibration {
        Calibration::empty()
    }
}

/// The default pass-through manager: pure linking, no rewriting.
#[derive(Debug, Clone)]
pub struct LinkingManager {
    name: String,
}

impl LinkingManager {
    /// Creates a manager with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        LinkingManager { name: name.into() }
    }
}

impl ManagerPolicy for LinkingManager {
    fn name(&self) -> &str {
        &self.name
    }
}

/// One layer: a resource manager plus the resources it administers.
pub struct Layer {
    /// Layer name (e.g. "hardware", "os", "runtime", "application").
    pub name: String,
    /// The layer's resource manager.
    pub manager: Box<dyn ManagerPolicy>,
    /// Resources in this layer.
    pub resources: Vec<Resource>,
}

impl Layer {
    /// Creates a layer with the default linking manager.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Layer {
            manager: Box::new(LinkingManager::new(format!("{name}-manager"))),
            name,
            resources: Vec::new(),
        }
    }

    /// Creates a layer with a custom manager policy.
    pub fn with_manager(name: impl Into<String>, manager: Box<dyn ManagerPolicy>) -> Self {
        Layer {
            name: name.into(),
            manager,
            resources: Vec::new(),
        }
    }

    /// Adds a resource to the layer.
    pub fn resource(mut self, r: Resource) -> Self {
        self.resources.push(r);
        self
    }
}

impl std::fmt::Debug for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Layer")
            .field("name", &self.name)
            .field("manager", &self.manager.name())
            .field(
                "resources",
                &self.resources.iter().map(|r| &r.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A full system stack, bottom layer first.
#[derive(Debug, Default)]
pub struct Stack {
    layers: Vec<Layer>,
}

/// The result of composing a stack: every resource's exported end-to-end
/// interface, plus the merged calibration from all layers.
#[derive(Debug, Clone)]
pub struct ComposedStack {
    /// Exported interface per `(layer, resource)` pair, keyed by resource
    /// name (resource names must be unique across the stack for export).
    pub exports: BTreeMap<String, Interface>,
    /// Union of all layers' calibrations (upper layers win conflicts).
    pub calibration: Calibration,
}

impl ComposedStack {
    /// The exported interface of one resource.
    pub fn export(&self, resource: &str) -> Result<&Interface> {
        self.exports.get(resource).ok_or_else(|| Error::Unresolved {
            kind: NameKind::Interface,
            name: resource.to_string(),
        })
    }
}

impl Stack {
    /// An empty stack.
    pub fn new() -> Self {
        Stack::default()
    }

    /// Pushes the next layer up (call in bottom-to-top order).
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Composes the stack bottom-up (Fig. 2's ①→②→③ flow).
    ///
    /// Layer by layer, each manager composes its resources against the
    /// registry of everything exported below, and the composed interfaces
    /// join the registry for the next layer up.
    pub fn compose(&self) -> Result<ComposedStack> {
        let mut below = Registry::new();
        let mut exports = BTreeMap::new();
        let mut calibration = Calibration::empty();
        for layer in &self.layers {
            calibration.merge(&layer.manager.calibration());
            let mut this_layer: Vec<Interface> = Vec::new();
            for r in &layer.resources {
                let composed = layer.manager.compose(r, &below)?;
                if exports.contains_key(&r.name) {
                    return Err(Error::Duplicate {
                        kind: NameKind::Interface,
                        name: r.name.clone(),
                    });
                }
                exports.insert(r.name.clone(), composed.clone());
                this_layer.push(composed);
            }
            for iface in this_layer {
                below.register(iface)?;
            }
        }
        Ok(ComposedStack {
            exports,
            calibration,
        })
    }

    /// Replaces the bottom layer (e.g. to re-derive the stack for different
    /// hardware, §3's first advantage of layering).
    pub fn with_bottom(mut self, layer: Layer) -> Self {
        if self.layers.is_empty() {
            self.layers.push(layer);
        } else {
            self.layers[0] = layer;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecv::EcvEnv;
    use crate::interp::{evaluate_energy, EvalConfig};
    use crate::parser::parse;
    use crate::units::Energy;
    use crate::value::Value;

    fn hw_layer(pj_per_flop: f64) -> Layer {
        let gpu = parse(&format!(
            "interface gpu {{ fn gpu_flops(n) {{ return {pj_per_flop} pJ * n; }} }}"
        ))
        .unwrap();
        Layer::new("hardware").resource(Resource::new("gpu", gpu))
    }

    fn runtime_layer() -> Layer {
        let runtime = parse(
            r#"interface runtime {
                extern fn gpu_flops(n);
                fn run_kernel(n) { return gpu_flops(n) + 1 uJ; }
            }"#,
        )
        .unwrap();
        Layer::new("runtime").resource(Resource::new("runtime", runtime))
    }

    fn app_layer() -> Layer {
        let app = parse(
            r#"interface app {
                extern fn run_kernel(n);
                fn infer(tokens) { return run_kernel(tokens * 1000); }
            }"#,
        )
        .unwrap();
        Layer::new("application").resource(Resource::new("app", app))
    }

    #[test]
    fn three_layer_stack_composes_end_to_end() {
        let stack = Stack::new()
            .layer(hw_layer(0.5))
            .layer(runtime_layer())
            .layer(app_layer());
        assert_eq!(stack.depth(), 3);
        let composed = stack.compose().unwrap();
        let app = composed.export("app").unwrap();
        assert!(app.is_closed());
        let e = evaluate_energy(
            app,
            "infer",
            &[Value::Num(10.0)],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        // 10 * 1000 flops * 0.5 pJ + 1 uJ.
        let expect = 10_000.0 * 0.5e-12 + 1e-6;
        assert!((e.as_joules() - expect).abs() < 1e-15);
    }

    #[test]
    fn swapping_bottom_layer_rederives_interface() {
        let build = |pj: f64| {
            Stack::new()
                .layer(hw_layer(pj))
                .layer(runtime_layer())
                .layer(app_layer())
        };
        let fast = build(0.5).compose().unwrap();
        let slow = build(2.0).compose().unwrap();
        let env = EcvEnv::new();
        let cfg = EvalConfig::default();
        let args = [Value::Num(100.0)];
        let ef =
            evaluate_energy(fast.export("app").unwrap(), "infer", &args, &env, 0, &cfg).unwrap();
        let es =
            evaluate_energy(slow.export("app").unwrap(), "infer", &args, &env, 0, &cfg).unwrap();
        assert!(es > ef);
    }

    #[test]
    fn with_bottom_replaces_only_layer_zero() {
        let stack = Stack::new()
            .layer(hw_layer(0.5))
            .layer(runtime_layer())
            .layer(app_layer())
            .with_bottom(hw_layer(4.0));
        let composed = stack.compose().unwrap();
        let e = evaluate_energy(
            composed.export("app").unwrap(),
            "infer",
            &[Value::Num(1.0)],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        let expect = 1000.0 * 4e-12 + 1e-6;
        assert!((e.as_joules() - expect).abs() < 1e-15);
    }

    #[test]
    fn duplicate_resource_names_rejected() {
        let stack = Stack::new()
            .layer(hw_layer(0.5))
            .layer(Layer::new("dup").resource(Resource::new(
                "gpu",
                parse("interface gpu2 { fn other(n) { return 1 J * n; } }").unwrap(),
            )));
        assert!(matches!(stack.compose(), Err(Error::Duplicate { .. })));
    }

    #[test]
    fn manager_calibration_merges() {
        struct CalManager;
        impl ManagerPolicy for CalManager {
            fn name(&self) -> &str {
                "cal"
            }
            fn calibration(&self) -> Calibration {
                Calibration::from_pairs([("relu", Energy::millijoules(2.0))])
            }
        }
        let leaf = parse("interface leaf { unit relu; fn f() { return 3 relu; } }").unwrap();
        let stack = Stack::new().layer(
            Layer::with_manager("hw", Box::new(CalManager)).resource(Resource::new("leaf", leaf)),
        );
        let composed = stack.compose().unwrap();
        assert_eq!(
            composed.calibration.get("relu"),
            Some(Energy::millijoules(2.0))
        );
        let cfg = EvalConfig {
            calibration: composed.calibration.clone(),
            ..EvalConfig::default()
        };
        let e = evaluate_energy(
            composed.export("leaf").unwrap(),
            "f",
            &[],
            &EcvEnv::new(),
            0,
            &cfg,
        )
        .unwrap();
        assert!((e.as_joules() - 6e-3).abs() < 1e-12);
    }

    #[test]
    fn resource_doc_and_debug() {
        let r = Resource::new("x", Interface::new("x")).with_doc("a thing");
        assert_eq!(r.doc, "a thing");
        let layer = Layer::new("l").resource(r);
        let dbg = format!("{layer:?}");
        assert!(dbg.contains("l-manager"));
        assert!(dbg.contains("\"x\""));
    }
}
