//! Energy-critical variables (ECVs).
//!
//! §3 of the paper: ECVs "are random variables that capture factors about the
//! module or subsystem that influence energy but are not directly related to
//! the input of the interface" — e.g. whether a request is already cached.
//! Because interfaces read ECVs, the return value of an interface is a
//! probability distribution rather than a single number.
//!
//! An ECV is declared with a [`DistSpec`]; at evaluation time an
//! [`EcvEnv`] supplies either the declared distribution (to be sampled) or a
//! pinned observation (for conditioning, path analysis, and testing).

use std::collections::BTreeMap;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// The distribution an ECV is drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistSpec {
    /// A boolean that is `true` with probability `p`.
    Bernoulli {
        /// Probability of `true`, in `[0, 1]`.
        p: f64,
    },
    /// A finite discrete distribution over numeric values.
    Discrete {
        /// `(value, probability)` pairs; probabilities must sum to ~1.
        outcomes: Vec<(f64, f64)>,
    },
    /// A continuous uniform distribution on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// A normal distribution (sampled via Box–Muller).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be non-negative).
        std_dev: f64,
    },
    /// A degenerate distribution that always yields `value`.
    Point {
        /// The constant value.
        value: f64,
    },
}

impl DistSpec {
    /// Validates the distribution's parameters.
    pub fn validate(&self, name: &str) -> Result<()> {
        let bad = |msg: &str| {
            Err(Error::BadDistribution {
                name: name.to_string(),
                msg: msg.to_string(),
            })
        };
        match self {
            DistSpec::Bernoulli { p } => {
                if !(0.0..=1.0).contains(p) {
                    return bad("Bernoulli p must be in [0, 1]");
                }
            }
            DistSpec::Discrete { outcomes } => {
                if outcomes.is_empty() {
                    return bad("discrete distribution needs at least one outcome");
                }
                let total: f64 = outcomes.iter().map(|(_, p)| p).sum();
                if outcomes.iter().any(|(_, p)| *p < 0.0) {
                    return bad("discrete probabilities must be non-negative");
                }
                if (total - 1.0).abs() > 1e-6 {
                    return bad("discrete probabilities must sum to 1");
                }
            }
            DistSpec::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite()) || lo > hi {
                    return bad("uniform bounds must be finite with lo <= hi");
                }
            }
            DistSpec::Normal { mean, std_dev } => {
                if !mean.is_finite() || !std_dev.is_finite() || *std_dev < 0.0 {
                    return bad("normal needs finite mean and non-negative std dev");
                }
            }
            DistSpec::Point { value } => {
                if !value.is_finite() {
                    return bad("point value must be finite");
                }
            }
        }
        Ok(())
    }

    /// Draws one sample from the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> EcvValue {
        match self {
            DistSpec::Bernoulli { p } => EcvValue::Bool(rng.random::<f64>() < *p),
            DistSpec::Discrete { outcomes } => {
                let mut u: f64 = rng.random();
                for (v, p) in outcomes {
                    if u < *p {
                        return EcvValue::Num(*v);
                    }
                    u -= p;
                }
                // Numeric slack: fall back to the final outcome.
                EcvValue::Num(outcomes.last().map(|(v, _)| *v).unwrap_or(0.0))
            }
            DistSpec::Uniform { lo, hi } => EcvValue::Num(lo + (hi - lo) * rng.random::<f64>()),
            DistSpec::Normal { mean, std_dev } => {
                // Box–Muller transform; `u1` kept away from 0 for a finite log.
                let u1: f64 = rng.random::<f64>().max(1e-300);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                EcvValue::Num(mean + std_dev * z)
            }
            DistSpec::Point { value } => EcvValue::Num(*value),
        }
    }

    /// The finite support of the distribution, if it has one.
    ///
    /// Used by exact enumeration and path analysis: Bernoulli and Discrete
    /// ECVs can be enumerated; Uniform/Normal cannot (returns `None`).
    /// Point distributions have a single-element support.
    pub fn support(&self) -> Option<Vec<(EcvValue, f64)>> {
        match self {
            DistSpec::Bernoulli { p } => Some(vec![
                (EcvValue::Bool(true), *p),
                (EcvValue::Bool(false), 1.0 - p),
            ]),
            DistSpec::Discrete { outcomes } => Some(
                outcomes
                    .iter()
                    .map(|(v, p)| (EcvValue::Num(*v), *p))
                    .collect(),
            ),
            DistSpec::Point { value } => Some(vec![(EcvValue::Num(*value), 1.0)]),
            DistSpec::Uniform { .. } | DistSpec::Normal { .. } => None,
        }
    }

    /// The mean of the distribution (`true` counts as 1 for Bernoulli).
    pub fn mean(&self) -> f64 {
        match self {
            DistSpec::Bernoulli { p } => *p,
            DistSpec::Discrete { outcomes } => outcomes.iter().map(|(v, p)| v * p).sum(),
            DistSpec::Uniform { lo, hi } => 0.5 * (lo + hi),
            DistSpec::Normal { mean, .. } => *mean,
            DistSpec::Point { value } => *value,
        }
    }

    /// A worst-case (maximal) observation, used by upper-bound analysis.
    ///
    /// For unbounded distributions (Normal) this takes mean + 6 sigma.
    pub fn upper_bound(&self) -> EcvValue {
        match self {
            DistSpec::Bernoulli { .. } => EcvValue::Bool(true),
            DistSpec::Discrete { outcomes } => EcvValue::Num(
                outcomes
                    .iter()
                    .map(|(v, _)| *v)
                    .fold(f64::NEG_INFINITY, f64::max),
            ),
            DistSpec::Uniform { hi, .. } => EcvValue::Num(*hi),
            DistSpec::Normal { mean, std_dev } => EcvValue::Num(mean + 6.0 * std_dev),
            DistSpec::Point { value } => EcvValue::Num(*value),
        }
    }
}

impl fmt::Display for DistSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistSpec::Bernoulli { p } => write!(f, "bernoulli({p})"),
            DistSpec::Discrete { outcomes } => {
                write!(f, "discrete(")?;
                for (i, (v, p)) in outcomes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}: {p}")?;
                }
                write!(f, ")")
            }
            DistSpec::Uniform { lo, hi } => write!(f, "uniform({lo}, {hi})"),
            DistSpec::Normal { mean, std_dev } => write!(f, "normal({mean}, {std_dev})"),
            DistSpec::Point { value } => write!(f, "point({value})"),
        }
    }
}

/// A sampled or pinned ECV observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EcvValue {
    /// A boolean observation (from a Bernoulli ECV).
    Bool(bool),
    /// A numeric observation.
    Num(f64),
}

impl EcvValue {
    /// The observation as a number (`true` = 1, `false` = 0).
    pub fn as_num(self) -> f64 {
        match self {
            EcvValue::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            EcvValue::Num(n) => n,
        }
    }
}

impl fmt::Display for EcvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcvValue::Bool(b) => write!(f, "{b}"),
            EcvValue::Num(n) => write!(f, "{n}"),
        }
    }
}

/// Declaration of one ECV: its distribution plus a human-readable note.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcvDecl {
    /// The declared distribution.
    pub dist: DistSpec,
    /// Documentation string, e.g. "request found in cache".
    pub doc: String,
}

/// Binding of ECV names to distributions or pinned observations.
///
/// Evaluation samples unpinned ECVs once per top-level invocation, so every
/// read of the same ECV within one invocation sees the same value (they model
/// *state*, not repeated coin flips).
#[derive(Debug, Clone, Default)]
pub struct EcvEnv {
    decls: BTreeMap<String, EcvDecl>,
    pinned: BTreeMap<String, EcvValue>,
}

impl EcvEnv {
    /// An environment with no declarations.
    pub fn new() -> Self {
        EcvEnv::default()
    }

    /// Builds an environment from an interface's declarations.
    pub fn from_decls(decls: &BTreeMap<String, EcvDecl>) -> Self {
        EcvEnv {
            decls: decls.clone(),
            pinned: BTreeMap::new(),
        }
    }

    /// Declares (or replaces) one ECV.
    pub fn declare(&mut self, name: impl Into<String>, decl: EcvDecl) {
        self.decls.insert(name.into(), decl);
    }

    /// Pins an ECV to a concrete observation, overriding its distribution.
    pub fn pin(&mut self, name: impl Into<String>, value: EcvValue) {
        self.pinned.insert(name.into(), value);
    }

    /// Pins a boolean ECV.
    pub fn pin_bool(&mut self, name: impl Into<String>, value: bool) {
        self.pin(name, EcvValue::Bool(value));
    }

    /// Pins a numeric ECV.
    pub fn pin_num(&mut self, name: impl Into<String>, value: f64) {
        self.pin(name, EcvValue::Num(value));
    }

    /// Removes a pin, restoring the declared distribution.
    pub fn unpin(&mut self, name: &str) {
        self.pinned.remove(name);
    }

    /// The declaration for `name`, if any.
    pub fn decl(&self, name: &str) -> Option<&EcvDecl> {
        self.decls.get(name)
    }

    /// The pinned observation for `name`, if any.
    pub fn pinned(&self, name: &str) -> Option<EcvValue> {
        self.pinned.get(name).copied()
    }

    /// Iterates over all declared ECV names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.decls.keys().map(String::as_str)
    }

    /// Draws one complete assignment: pinned values kept, the rest sampled.
    pub fn sample_assignment<R: Rng + ?Sized>(&self, rng: &mut R) -> BTreeMap<String, EcvValue> {
        let mut out = BTreeMap::new();
        for (name, decl) in &self.decls {
            let v = match self.pinned.get(name) {
                Some(v) => *v,
                None => decl.dist.sample(rng),
            };
            out.insert(name.clone(), v);
        }
        out
    }

    /// Enumerates every assignment over the unpinned finite-support ECVs.
    ///
    /// Returns `(assignment, probability)` pairs, or an error if any unpinned
    /// ECV has infinite support or the product space exceeds `limit`.
    pub fn enumerate_assignments(
        &self,
        limit: usize,
    ) -> Result<Vec<(BTreeMap<String, EcvValue>, f64)>> {
        let mut space: Vec<(BTreeMap<String, EcvValue>, f64)> = vec![(BTreeMap::new(), 1.0)];
        for (name, decl) in &self.decls {
            if let Some(v) = self.pinned.get(name) {
                for (a, _) in &mut space {
                    a.insert(name.clone(), *v);
                }
                continue;
            }
            let support = decl.dist.support().ok_or_else(|| Error::Analysis {
                msg: format!(
                    "ECV `{name}` has continuous distribution {}; pin it or use Monte Carlo",
                    decl.dist
                ),
            })?;
            let mut next = Vec::with_capacity(space.len() * support.len());
            for (a, p) in &space {
                for (v, q) in &support {
                    if p * q == 0.0 {
                        continue;
                    }
                    let mut a2 = a.clone();
                    a2.insert(name.clone(), *v);
                    next.push((a2, p * q));
                }
            }
            if next.len() > limit {
                return Err(Error::Analysis {
                    msg: format!("ECV assignment space exceeds limit {limit} (at ECV `{name}`)"),
                });
            }
            space = next;
        }
        Ok(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn bernoulli_sampling_matches_p() {
        let d = DistSpec::Bernoulli { p: 0.3 };
        let mut r = rng();
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| matches!(d.sample(&mut r), EcvValue::Bool(true)))
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn discrete_sampling_matches_probs() {
        let d = DistSpec::Discrete {
            outcomes: vec![(1.0, 0.5), (2.0, 0.25), (4.0, 0.25)],
        };
        let mut r = rng();
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r).as_num()).sum::<f64>() / n as f64;
        // E[X] = 0.5 + 0.5 + 1.0 = 2.0.
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn uniform_sample_in_range() {
        let d = DistSpec::Uniform { lo: 3.0, hi: 7.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r).as_num();
            assert!((3.0..=7.0).contains(&v));
        }
    }

    #[test]
    fn normal_sample_mean_and_spread() {
        let d = DistSpec::Normal {
            mean: 10.0,
            std_dev: 2.0,
        };
        let mut r = rng();
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r).as_num()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DistSpec::Bernoulli { p: 1.5 }.validate("x").is_err());
        assert!(DistSpec::Discrete { outcomes: vec![] }
            .validate("x")
            .is_err());
        assert!(DistSpec::Discrete {
            outcomes: vec![(1.0, 0.4), (2.0, 0.4)]
        }
        .validate("x")
        .is_err());
        assert!(DistSpec::Uniform { lo: 2.0, hi: 1.0 }
            .validate("x")
            .is_err());
        assert!(DistSpec::Normal {
            mean: 0.0,
            std_dev: -1.0
        }
        .validate("x")
        .is_err());
        assert!(DistSpec::Point {
            value: f64::INFINITY
        }
        .validate("x")
        .is_err());
        assert!(DistSpec::Point { value: 3.0 }.validate("x").is_ok());
    }

    #[test]
    fn support_and_bounds() {
        let b = DistSpec::Bernoulli { p: 0.2 };
        let s = b.support().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(b.upper_bound(), EcvValue::Bool(true));
        assert_eq!(
            DistSpec::Uniform { lo: 0.0, hi: 5.0 }.upper_bound(),
            EcvValue::Num(5.0)
        );
        assert!(DistSpec::Normal {
            mean: 0.0,
            std_dev: 1.0
        }
        .support()
        .is_none());
        assert_eq!(DistSpec::Point { value: 2.0 }.mean(), 2.0);
    }

    #[test]
    fn pinning_overrides_distribution() {
        let mut env = EcvEnv::new();
        env.declare(
            "hit",
            EcvDecl {
                dist: DistSpec::Bernoulli { p: 0.0 },
                doc: String::new(),
            },
        );
        env.pin_bool("hit", true);
        let a = env.sample_assignment(&mut rng());
        assert_eq!(a["hit"], EcvValue::Bool(true));
        env.unpin("hit");
        let a = env.sample_assignment(&mut rng());
        assert_eq!(a["hit"], EcvValue::Bool(false));
    }

    #[test]
    fn enumerate_assignments_products() {
        let mut env = EcvEnv::new();
        env.declare(
            "a",
            EcvDecl {
                dist: DistSpec::Bernoulli { p: 0.5 },
                doc: String::new(),
            },
        );
        env.declare(
            "b",
            EcvDecl {
                dist: DistSpec::Discrete {
                    outcomes: vec![(1.0, 0.25), (2.0, 0.75)],
                },
                doc: String::new(),
            },
        );
        let asg = env.enumerate_assignments(100).unwrap();
        assert_eq!(asg.len(), 4);
        let total: f64 = asg.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumerate_respects_limit_and_continuity() {
        let mut env = EcvEnv::new();
        for i in 0..12 {
            env.declare(
                format!("e{i}"),
                EcvDecl {
                    dist: DistSpec::Bernoulli { p: 0.5 },
                    doc: String::new(),
                },
            );
        }
        assert!(env.enumerate_assignments(100).is_err());
        assert_eq!(env.enumerate_assignments(5000).unwrap().len(), 4096);

        let mut env2 = EcvEnv::new();
        env2.declare(
            "u",
            EcvDecl {
                dist: DistSpec::Uniform { lo: 0.0, hi: 1.0 },
                doc: String::new(),
            },
        );
        assert!(env2.enumerate_assignments(100).is_err());
        env2.pin_num("u", 0.5);
        assert_eq!(env2.enumerate_assignments(100).unwrap().len(), 1);
    }

    #[test]
    fn zero_probability_branches_pruned() {
        let mut env = EcvEnv::new();
        env.declare(
            "a",
            EcvDecl {
                dist: DistSpec::Bernoulli { p: 1.0 },
                doc: String::new(),
            },
        );
        let asg = env.enumerate_assignments(10).unwrap();
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].0["a"], EcvValue::Bool(true));
    }
}
