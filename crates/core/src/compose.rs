//! Composition and linking of energy interfaces.
//!
//! "A system's energy interface therefore becomes a nested composition of
//! lower-level interfaces, with the base case being hardware-level energy
//! interfaces" (§2). Linking resolves an interface's `extern` declarations
//! against provider interfaces, merging their functions, ECVs, units, and
//! transitive externs into a single closed (or less-open) interface.
//!
//! Name hygiene: providers' *private* helper functions are namespaced as
//! `provider__helper` during the merge so independent providers never
//! collide; the extern entry points keep their public names.

use std::collections::BTreeMap;

use crate::ast::{Expr, Stmt};
use crate::error::{Error, NameKind, Result};
use crate::interface::Interface;

/// A registry of provider interfaces, keyed by the interface name.
///
/// Resource managers typically hold one registry per layer and link the
/// layer's exports against it.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    providers: BTreeMap<String, Interface>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a provider interface; errors on duplicate names.
    pub fn register(&mut self, iface: Interface) -> Result<()> {
        if self.providers.contains_key(&iface.name) {
            return Err(Error::Duplicate {
                kind: NameKind::Interface,
                name: iface.name.clone(),
            });
        }
        self.providers.insert(iface.name.clone(), iface);
        Ok(())
    }

    /// Looks up a provider by name.
    pub fn get(&self, name: &str) -> Result<&Interface> {
        self.providers.get(name).ok_or_else(|| Error::Unresolved {
            kind: NameKind::Interface,
            name: name.to_string(),
        })
    }

    /// Iterates over registered interfaces.
    pub fn iter(&self) -> impl Iterator<Item = &Interface> {
        self.providers.values()
    }

    /// Number of registered interfaces.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

/// Links `upper` against `providers`, resolving extern calls.
///
/// For every extern `e` of `upper`, a provider defining a function named `e`
/// supplies the implementation. The provider's other functions are pulled in
/// under namespaced names (`<provider>__<fn>`), its ECVs and units are
/// merged (ECVs keep their names — they describe shared state — and
/// conflicting redeclarations must be identical), and its own unresolved
/// externs become externs of the result.
///
/// Providers are consulted in order (first definition wins, like a
/// traditional linker). Errors if an extern's arity disagrees with the
/// provider function, if merged function names collide, or if ECV
/// redeclarations conflict.
pub fn link(upper: &Interface, providers: &[&Interface]) -> Result<Interface> {
    let mut sp = ei_telemetry::span(ei_telemetry::SpanKind::Link, &upper.name);
    sp.add_items(providers.len() as u64);
    ei_telemetry::counter_add("core.compose.links", 1);
    let mut out = upper.clone();

    for provider in providers {
        // Which externs of `out` does this provider satisfy?
        let satisfied: Vec<String> = out
            .externs
            .keys()
            .filter(|e| provider.fns.contains_key(*e))
            .cloned()
            .collect();
        if satisfied.is_empty() {
            continue;
        }

        // Rename map for the provider's non-exported functions.
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        for fname in provider.fns.keys() {
            if satisfied.contains(fname) {
                rename.insert(fname.clone(), fname.clone());
            } else {
                rename.insert(fname.clone(), format!("{}__{}", provider.name, fname));
            }
        }

        for ext in satisfied {
            let decl = out.externs.remove(&ext).expect("extern present");
            let f = provider.fns.get(&ext).expect("provider fn present");
            if f.params.len() != decl.arity {
                return Err(Error::Link {
                    msg: format!(
                        "extern `{ext}` expects arity {}, provider `{}` defines arity {}",
                        decl.arity,
                        provider.name,
                        f.params.len()
                    ),
                });
            }
        }

        // Merge the provider's functions under the rename map.
        for (fname, f) in &provider.fns {
            let new_name = rename[fname].clone();
            if out.fns.contains_key(&new_name) {
                return Err(Error::Link {
                    msg: format!(
                        "function `{new_name}` from provider `{}` collides with an \
                         existing definition",
                        provider.name
                    ),
                });
            }
            let mut nf = f.clone();
            nf.name = new_name.clone();
            rename_calls_block(&mut nf.body, &rename);
            out.fns.insert(new_name, nf);
        }

        // Merge ECVs: identical redeclaration is allowed, conflicts are not.
        for (name, decl) in &provider.ecvs {
            match out.ecvs.get(name) {
                Some(existing) if existing == decl => {}
                Some(_) => {
                    return Err(Error::Link {
                        msg: format!(
                            "ECV `{name}` redeclared with a different distribution by \
                             provider `{}`",
                            provider.name
                        ),
                    })
                }
                None => {
                    out.ecvs.insert(name.clone(), decl.clone());
                }
            }
        }

        // Merge units and the provider's own externs (transitive needs).
        for u in &provider.units {
            out.units.insert(u.clone());
        }
        for (ename, edecl) in &provider.externs {
            if out.fns.contains_key(ename) {
                // Already satisfied by something previously merged.
                continue;
            }
            match out.externs.get(ename) {
                Some(existing) if existing.arity == edecl.arity => {}
                Some(_) => {
                    return Err(Error::Link {
                        msg: format!(
                            "extern `{ename}` declared with conflicting arities during \
                             linking"
                        ),
                    })
                }
                None => {
                    out.externs.insert(ename.clone(), edecl.clone());
                }
            }
        }
    }

    out.validate()?;
    Ok(out)
}

/// Links `upper` against every interface in `registry` that provides one of
/// its externs, repeating until no more externs can be resolved.
pub fn link_closure(upper: &Interface, registry: &Registry) -> Result<Interface> {
    ei_telemetry::counter_add("core.compose.link_closures", 1);
    let mut current = upper.clone();
    loop {
        if current.externs.is_empty() {
            return Ok(current);
        }
        let before: Vec<String> = current.externs.keys().cloned().collect();
        let providers: Vec<&Interface> = registry
            .iter()
            .filter(|p| current.externs.keys().any(|e| p.fns.contains_key(e)))
            .collect();
        if providers.is_empty() {
            return Ok(current);
        }
        current = link(&current, &providers)?;
        let after: Vec<String> = current.externs.keys().cloned().collect();
        if after == before {
            return Ok(current);
        }
    }
}

fn rename_calls_block(stmts: &mut [Stmt], rename: &BTreeMap<String, String>) {
    for s in stmts {
        match s {
            Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) => rename_calls_expr(e, rename),
            Stmt::If(c, t, els) => {
                rename_calls_expr(c, rename);
                rename_calls_block(t, rename);
                rename_calls_block(els, rename);
            }
            Stmt::For { from, to, body, .. } => {
                rename_calls_expr(from, rename);
                rename_calls_expr(to, rename);
                rename_calls_block(body, rename);
            }
            Stmt::While { cond, body, .. } => {
                rename_calls_expr(cond, rename);
                rename_calls_block(body, rename);
            }
        }
    }
}

fn rename_calls_expr(e: &mut Expr, rename: &BTreeMap<String, String>) {
    match e {
        Expr::Call(name, args) => {
            if let Some(new_name) = rename.get(name) {
                *name = new_name.clone();
            }
            for a in args {
                rename_calls_expr(a, rename);
            }
        }
        Expr::BuiltinCall(_, args) => {
            for a in args {
                rename_calls_expr(a, rename);
            }
        }
        Expr::Field(b, _) | Expr::Unary(_, b) => rename_calls_expr(b, rename),
        Expr::Binary(_, a, b) => {
            rename_calls_expr(a, rename);
            rename_calls_expr(b, rename);
        }
        Expr::IfExpr(c, t, f) => {
            rename_calls_expr(c, rename);
            rename_calls_expr(t, rename);
            rename_calls_expr(f, rename);
        }
        Expr::Num(_)
        | Expr::Bool(_)
        | Expr::Joules(_)
        | Expr::Unit(_, _)
        | Expr::Var(_)
        | Expr::Ecv(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecv::EcvEnv;
    use crate::interp::{evaluate_energy, EvalConfig};
    use crate::parser::parse;
    use crate::value::Value;

    fn upper_src() -> &'static str {
        r#"
        interface app {
            extern fn gpu_matmul(flops);
            extern fn gpu_copy(bytes);
            fn run(work) {
                return gpu_matmul(work.flops) + gpu_copy(work.bytes);
            }
        }
        "#
    }

    fn gpu_src() -> &'static str {
        r#"
        interface gpu4090 {
            fn gpu_matmul(flops) { return per_flop() * flops; }
            fn gpu_copy(bytes) { return 20 pJ * bytes; }
            fn per_flop() { return 0.5 pJ; }
        }
        "#
    }

    #[test]
    fn link_resolves_externs() {
        let upper = parse(upper_src()).unwrap();
        let gpu = parse(gpu_src()).unwrap();
        let linked = link(&upper, &[&gpu]).unwrap();
        assert!(linked.is_closed());
        // Private helper namespaced; public entry points keep names.
        assert!(linked.fns.contains_key("gpu_matmul"));
        assert!(linked.fns.contains_key("gpu4090__per_flop"));
        assert!(!linked.fns.contains_key("per_flop"));

        let work = Value::num_record([("flops", 1e6), ("bytes", 1e3)]);
        let e = evaluate_energy(
            &linked,
            "run",
            &[work],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        let expect = 0.5e-12 * 1e6 + 20e-12 * 1e3;
        assert!((e.as_joules() - expect).abs() < 1e-18);
    }

    #[test]
    fn swapping_hardware_layer_changes_energy_only() {
        // §3: "nothing needs to change in the software stack but only some
        // of the energy interfaces in the bottom layer need to be replaced".
        let upper = parse(upper_src()).unwrap();
        let gpu_a = parse(gpu_src()).unwrap();
        let gpu_b = parse(
            r#"
            interface gpu3070 {
                fn gpu_matmul(flops) { return 0.9 pJ * flops; }
                fn gpu_copy(bytes) { return 35 pJ * bytes; }
            }
            "#,
        )
        .unwrap();
        let la = link(&upper, &[&gpu_a]).unwrap();
        let lb = link(&upper, &[&gpu_b]).unwrap();
        let work = Value::num_record([("flops", 1e6), ("bytes", 0.0)]);
        let cfg = EvalConfig::default();
        let env = EcvEnv::new();
        let ea = evaluate_energy(&la, "run", std::slice::from_ref(&work), &env, 0, &cfg).unwrap();
        let eb = evaluate_energy(&lb, "run", &[work], &env, 0, &cfg).unwrap();
        assert!(eb > ea);
        assert!((eb.as_joules() / ea.as_joules() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let upper =
            parse("interface u { extern fn op(a, b); fn f() { return op(1, 2); } }").unwrap();
        let bad = parse("interface p { fn op(a) { return 1 J * a; } }").unwrap();
        assert!(matches!(link(&upper, &[&bad]), Err(Error::Link { .. })));
    }

    #[test]
    fn transitive_externs_propagate() {
        let upper = parse("interface u { extern fn mid(x); fn f(x) { return mid(x); } }").unwrap();
        let mid =
            parse("interface m { extern fn low(x); fn mid(x) { return low(x) * 2; } }").unwrap();
        let linked = link(&upper, &[&mid]).unwrap();
        assert!(!linked.is_closed());
        assert!(linked.externs.contains_key("low"));

        let low = parse("interface l { fn low(x) { return 1 mJ * x; } }").unwrap();
        let closed = link(&linked, &[&low]).unwrap();
        assert!(closed.is_closed());
        let e = evaluate_energy(
            &closed,
            "f",
            &[Value::Num(3.0)],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!((e.as_joules() - 6e-3).abs() < 1e-12);
    }

    #[test]
    fn link_closure_resolves_chains() {
        let upper = parse("interface u { extern fn mid(x); fn f(x) { return mid(x); } }").unwrap();
        let mid =
            parse("interface m { extern fn low(x); fn mid(x) { return low(x) * 2; } }").unwrap();
        let low = parse("interface l { fn low(x) { return 1 mJ * x; } }").unwrap();
        let mut reg = Registry::new();
        reg.register(mid).unwrap();
        reg.register(low).unwrap();
        let closed = link_closure(&upper, &reg).unwrap();
        assert!(closed.is_closed());
    }

    #[test]
    fn ecv_merge_rules() {
        let upper = parse(
            r#"interface u {
                ecv hit: bernoulli(0.5) "shared";
                extern fn op(x);
                fn f(x) { return op(x); }
            }"#,
        )
        .unwrap();
        let same = parse(
            r#"interface p {
                ecv hit: bernoulli(0.5) "shared";
                fn op(x) { return if ecv(hit) { 1 mJ } else { 2 mJ } * x; }
            }"#,
        )
        .unwrap();
        assert!(link(&upper, &[&same]).is_ok());

        let conflicting = parse(
            r#"interface p {
                ecv hit: bernoulli(0.9) "different";
                fn op(x) { return if ecv(hit) { 1 mJ } else { 2 mJ } * x; }
            }"#,
        )
        .unwrap();
        assert!(matches!(
            link(&upper, &[&conflicting]),
            Err(Error::Link { .. })
        ));
    }

    #[test]
    fn provider_order_decides_extern_resolution() {
        // Like a traditional linker, providers are consulted in order; once
        // an extern is satisfied, later providers are not merged for it.
        let upper = parse("interface u { extern fn op(x); fn f(x) { return op(x); } }").unwrap();
        let p1 = parse("interface p1 { fn op(x) { return 1 mJ * x; } }").unwrap();
        let p2 = parse("interface p2 { fn op(x) { return 2 mJ * x; } }").unwrap();
        let linked = link(&upper, &[&p1, &p2]).unwrap();
        let e = evaluate_energy(
            &linked,
            "f",
            &[Value::Num(1.0)],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!((e.as_joules() - 1e-3).abs() < 1e-12);
        let linked_rev = link(&upper, &[&p2, &p1]).unwrap();
        let e2 = evaluate_energy(
            &linked_rev,
            "f",
            &[Value::Num(1.0)],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!((e2.as_joules() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn registry_basics() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.register(Interface::new("a")).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.get("a").is_ok());
        assert!(reg.get("b").is_err());
        assert!(reg.register(Interface::new("a")).is_err());
    }

    #[test]
    fn units_merge_through_link() {
        let upper = parse("interface u { extern fn op(x); fn f(x) { return op(x); } }").unwrap();
        let p = parse("interface p { unit relu; fn op(x) { return 1 relu * x; } }").unwrap();
        let linked = link(&upper, &[&p]).unwrap();
        assert!(linked.units.contains("relu"));
    }
}
