//! # ei-core: energy interfaces, made executable
//!
//! A Rust realization of the HotOS '25 vision paper *The Case for Energy
//! Clarity* (Chung, Kuo, Candea — EPFL). The paper proposes **energy
//! interfaces**: little programs that compute the energy a resource would
//! consume for a given workload, composed layer by layer exactly like
//! functional interfaces compose semantics.
//!
//! This crate provides:
//!
//! - **EIL**, the Energy Interface Language: an [`ast`], a [`parser`] for a
//!   readable surface syntax, and a [`pretty`]-printer that round-trips.
//! - An [`interp`]reter: deterministic evaluation, Monte Carlo, and exact
//!   enumeration over [ECVs](ecv) — returning energy
//!   [distributions](dist), in Joules or [abstract units](units).
//! - [Composition](compose) (linking interfaces against providers) and the
//!   Fig. 2 [stack] model of layers, resources, and resource managers.
//! - The [analysis] toolchain: worst-case bounds, path enumeration,
//!   constant-energy (side-channel) checking, and compatibility checking.
//!
//! # Examples
//!
//! ```
//! use ei_core::parser::parse;
//! use ei_core::interp::{enumerate_exact, EvalConfig};
//! use ei_core::value::Value;
//!
//! let iface = parse(r#"
//!     interface cache "request cache"  {
//!         ecv hit: bernoulli(0.8) "entry already cached";
//!         fn lookup(len) {
//!             return (if ecv(hit) { 5 mJ } else { 100 mJ }) * len;
//!         }
//!     }
//! "#).unwrap();
//!
//! let dist = enumerate_exact(
//!     &iface, "lookup", &[Value::Num(8.0)],
//!     &iface.ecv_env(), 64, &EvalConfig::default(),
//! ).unwrap();
//! // E = 0.8 * 40 mJ + 0.2 * 800 mJ = 192 mJ.
//! assert!((dist.mean().as_joules() - 0.192).abs() < 1e-12);
//! ```

pub mod analysis;
pub mod ast;
pub mod cache;
pub mod compose;
pub mod dist;
pub mod ecv;
pub mod error;
pub mod interface;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod registry;
pub mod sema;
pub mod span;
pub mod stack;
pub mod units;
pub mod value;
pub mod vm;

pub use cache::EvalCache;
pub use dist::EnergyDist;
pub use error::{Error, Result};
pub use interface::{InputSpec, Interface};
pub use registry::{InterfaceRegistry, InterfaceVersion};
pub use units::{Calibration, Energy, EnergyVec, Power, TimeSpan};
pub use value::Value;
