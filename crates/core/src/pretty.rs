//! Pretty-printer: renders an [`Interface`] back into EIL surface syntax.
//!
//! "A developer can read this program to understand and reason about the
//! energy behavior of the resource" (§2) — so every interface, whether
//! hand-written, built via the builder API, or machine-derived by
//! `ei-extract`, can be rendered as a readable program. The printer's output
//! re-parses to a structurally identical interface (property-tested).

use std::fmt::Write as _;

use crate::ast::{Expr, FnDef, Stmt, UnOp};
use crate::interface::Interface;

/// Renders an interface as EIL source text.
pub fn print_interface(iface: &Interface) -> String {
    let mut out = String::new();
    let _ = write!(out, "interface {}", iface.name);
    if !iface.doc.is_empty() {
        let _ = write!(out, " {}", quote(&iface.doc));
    }
    out.push_str(" {\n");
    for u in &iface.units {
        let _ = writeln!(out, "    unit {u};");
    }
    for (name, decl) in &iface.ecvs {
        let _ = write!(out, "    ecv {name}: {}", dist_src(&decl.dist));
        if !decl.doc.is_empty() {
            let _ = write!(out, " {}", quote(&decl.doc));
        }
        out.push_str(";\n");
    }
    for decl in iface.externs.values() {
        let params: Vec<String> = (0..decl.arity).map(|i| format!("a{i}")).collect();
        let _ = write!(out, "    extern fn {}({})", decl.name, params.join(", "));
        if !decl.doc.is_empty() {
            let _ = write!(out, " {}", quote(&decl.doc));
        }
        out.push_str(";\n");
    }
    for f in iface.fns.values() {
        out.push('\n');
        print_fn(&mut out, f, 1);
    }
    out.push_str("}\n");
    out
}

/// Renders a single function definition (used standalone by diagnostics).
pub fn print_fn_def(f: &FnDef) -> String {
    let mut out = String::new();
    print_fn(&mut out, f, 0);
    out
}

fn print_fn(out: &mut String, f: &FnDef, indent: usize) {
    let pad = "    ".repeat(indent);
    let _ = write!(out, "{pad}fn {}({})", f.name, f.params.join(", "));
    if !f.doc.is_empty() {
        let _ = write!(out, " {}", quote(&f.doc));
    }
    out.push_str(" {\n");
    for s in &f.body {
        print_stmt(out, s, indent + 1);
    }
    let _ = writeln!(out, "{pad}}}");
}

fn print_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Let(name, e) => {
            let _ = writeln!(out, "{pad}let {name} = {};", expr_src(e));
        }
        Stmt::Assign(name, e) => {
            let _ = writeln!(out, "{pad}{name} = {};", expr_src(e));
        }
        Stmt::If(c, t, els) => {
            let _ = writeln!(out, "{pad}if {} {{", expr_src(c));
            for s in t {
                print_stmt(out, s, indent + 1);
            }
            if els.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in els {
                    print_stmt(out, s, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::For {
            var,
            from,
            to,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for {var} in {}..{} {{",
                range_operand(from),
                range_operand(to)
            );
            for s in body {
                print_stmt(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, bound, body } => {
            let _ = writeln!(out, "{pad}while {} bound {bound} {{", expr_src(cond));
            for s in body {
                print_stmt(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Return(e) => {
            let _ = writeln!(out, "{pad}return {};", expr_src(e));
        }
    }
}

/// `for` range operands: parenthesize anything that could swallow the `..`.
fn range_operand(e: &Expr) -> String {
    match e {
        Expr::Num(_) | Expr::Var(_) | Expr::Field(_, _) => expr_src(e),
        _ => format!("({})", expr_src(e)),
    }
}

/// Renders an expression with minimal parentheses.
pub fn expr_src(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Num(n) => fmt_num(*n),
        Expr::Bool(b) => b.to_string(),
        Expr::Joules(j) => format!("{} J", fmt_num(*j)),
        Expr::Unit(u, k) => {
            let lit = format!("{} {u}", fmt_num(*k));
            // `2 relu` is a primary; no parens needed at any precedence.
            lit
        }
        Expr::Var(name) => name.clone(),
        Expr::Field(base, name) => format!("{}.{name}", expr_prec(base, 6)),
        Expr::Ecv(name) => format!("ecv({name})"),
        Expr::Unary(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            let s = format!("{sym}{}", expr_prec(inner, 6));
            if parent > 5 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Binary(op, a, b) => {
            let p = op.precedence();
            // Left-associative: right child needs one more level.
            let s = format!(
                "{} {} {}",
                expr_prec(a, p),
                op.symbol(),
                expr_prec(b, p + 1)
            );
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call(name, args) => {
            let args: Vec<String> = args.iter().map(|a| expr_prec(a, 0)).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::BuiltinCall(b, args) => {
            let args: Vec<String> = args.iter().map(|a| expr_prec(a, 0)).collect();
            format!("{}({})", b.name(), args.join(", "))
        }
        Expr::IfExpr(c, t, f) => {
            let s = format!(
                "if {} {{ {} }} else {{ {} }}",
                expr_prec(c, 0),
                expr_prec(t, 0),
                expr_prec(f, 0)
            );
            // If-expressions as operands always get parentheses for clarity.
            if parent > 0 {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

fn dist_src(d: &crate::ecv::DistSpec) -> String {
    use crate::ecv::DistSpec::*;
    match d {
        Bernoulli { p } => format!("bernoulli({})", fmt_num(*p)),
        Discrete { outcomes } => {
            let parts: Vec<String> = outcomes
                .iter()
                .map(|(v, p)| format!("{}: {}", fmt_num(*v), fmt_num(*p)))
                .collect();
            format!("discrete({})", parts.join(", "))
        }
        Uniform { lo, hi } => format!("uniform({}, {})", fmt_num(*lo), fmt_num(*hi)),
        Normal { mean, std_dev } => {
            format!("normal({}, {})", fmt_num(*mean), fmt_num(*std_dev))
        }
        Point { value } => format!("point({})", fmt_num(*value)),
    }
}

/// Formats a float losslessly (shortest representation that round-trips).
fn fmt_num(n: f64) -> String {
    // Rust's Display for f64 is shortest-round-trip, but prints integers
    // without a decimal point, which is exactly what the lexer accepts.
    format!("{n}")
}

/// Formats a finite float as an EIL numeral that the lexer round-trips
/// bit-exactly, picking whichever of plain and exponent notation is
/// shorter.
///
/// Splicing calibration constants into generated EIL source with `{}`
/// spells out every digit of tiny magnitudes (`1.2e-7` becomes
/// `0.00000012`, and denormal-scale coefficients run to hundreds of
/// digits), bloating interfaces and risking precision-related drift in
/// hand edits. `{:e}` is the shortest round-trip form in the exponent
/// notation the lexer already accepts. Negative values print with a
/// leading `-`, which parses via unary minus in expression position.
pub fn fmt_eil_num(v: f64) -> String {
    assert!(v.is_finite(), "EIL numerals must be finite, got {v}");
    let plain = format!("{v}");
    let exp = format!("{v:e}");
    if exp.len() < plain.len() {
        exp
    } else {
        plain
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Builtin;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn expr_printing_minimal_parens() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(expr_src(&e), "1 + 2 * 3");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(expr_src(&e), "(1 + 2) * 3");
        let e = parse_expr("1 - (2 - 3)").unwrap();
        assert_eq!(expr_src(&e), "1 - (2 - 3)");
        let e = parse_expr("1 - 2 - 3").unwrap();
        assert_eq!(expr_src(&e), "1 - 2 - 3");
        let e = parse_expr("a && (b || c)").unwrap();
        assert_eq!(expr_src(&e), "a && (b || c)");
        let e = parse_expr("-x * y").unwrap();
        assert_eq!(expr_src(&e), "-x * y");
    }

    #[test]
    fn energy_literals_print() {
        let e = parse_expr("0.005 J").unwrap();
        assert_eq!(expr_src(&e), "0.005 J");
        let e = Expr::Unit("relu".into(), 2.0);
        assert_eq!(expr_src(&e), "2 relu");
    }

    #[test]
    fn builtin_call_prints_by_name() {
        let e = Expr::BuiltinCall(Builtin::Ceil, vec![Expr::Num(1.5)]);
        assert_eq!(expr_src(&e), "ceil(1.5)");
    }

    #[test]
    fn roundtrip_fig1_like_interface() {
        let src = r#"
            interface ml_webservice "doc" {
                unit conv2d;
                ecv request_hit: bernoulli(0.25) "request found in cache";
                extern fn hw(a0) "hardware";
                fn handle(request) "doc line" {
                    let m = 1024;
                    if ecv(request_hit) {
                        return 5 mJ * m;
                    } else {
                        return 2 conv2d + hw(m);
                    }
                }
            }
        "#;
        let iface = parse(src).unwrap();
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(iface, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn roundtrip_loops_and_expressions() {
        let src = r#"
            interface loops {
                fn f(n) {
                    let acc = 0 J;
                    for i in 0..n {
                        acc = acc + 1 mJ * i;
                    }
                    while n > 0 bound 100 {
                        acc = acc * 2;
                    }
                    return acc + (if n == 0 { 0 J } else { 1 J });
                }
            }
        "#;
        let iface = parse(src).unwrap();
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(iface, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn roundtrip_all_distributions() {
        let src = r#"
            interface dists {
                ecv a: bernoulli(0.5);
                ecv b: discrete(1: 0.25, 2: 0.75);
                ecv c: uniform(0, 10);
                ecv d: normal(5, 1.5);
                ecv e: point(3);
                fn f() { return 1 J * (ecv(a) || true) * 0 + joules(ecv(b) + ecv(c) + ecv(d) + ecv(e)); }
            }
        "#;
        // Simplify: bool*num isn't typed; just check declaration round-trip.
        let src = src.replace(
            "return 1 J * (ecv(a) || true) * 0 + joules(ecv(b) + ecv(c) + ecv(d) + ecv(e));",
            "return joules(ecv(b) + ecv(c) + ecv(d) + ecv(e));",
        );
        let iface = parse(&src).unwrap();
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(iface, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn doc_strings_with_escapes_roundtrip() {
        let mut iface = crate::interface::Interface::new("q");
        iface.doc = "line1\nline2 \"quoted\" \\slash\ttab".into();
        iface
            .add_fn(crate::ast::FnDef::new(
                "f",
                vec![],
                vec![Stmt::Return(Expr::Joules(1.0))],
            ))
            .unwrap();
        let printed = print_interface(&iface);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(iface, reparsed);
    }

    #[test]
    fn fmt_eil_num_roundtrips_through_the_lexer() {
        // Regression: scientific-notation-sized calibration constants
        // spliced into generated EIL must lex back to the exact same f64.
        let cases = [
            0.0,
            1.0,
            0.25,
            1.2e-7,
            6.125e-5,
            4.0e-9,
            2.5e-321, // denormal: Display would print >300 digits
            9.87654321e12,
            1e300,
            f64::MIN_POSITIVE,
        ];
        for &v in &cases {
            let text = fmt_eil_num(v);
            assert!(
                text.len() < 32,
                "numeral for {v} is bloated: {text:?} ({} chars)",
                text.len()
            );
            let src = format!("interface n {{ fn f() {{ return {text} J; }} }}");
            let iface = parse(&src).unwrap_or_else(|e| panic!("{text:?} did not parse: {e}"));
            match crate::interp::evaluate_energy(
                &iface,
                "f",
                &[],
                &crate::ecv::EcvEnv::default(),
                0,
                &crate::interp::EvalConfig::default(),
            ) {
                Ok(e) => assert_eq!(e.as_joules().to_bits(), v.to_bits(), "for {text:?}"),
                Err(e) => panic!("{text:?} did not evaluate: {e}"),
            }
        }
        // Negative constants render with a unary minus that still parses
        // in expression position.
        let text = fmt_eil_num(-3.4e-9);
        let src = format!("interface n {{ fn f() {{ return {text} J; }} }}");
        parse(&src).unwrap_or_else(|e| panic!("{text:?} did not parse: {e}"));
    }

    #[test]
    fn print_fn_def_standalone() {
        let f = FnDef::new("g", vec!["x".into()], vec![Stmt::Return(Expr::var("x"))]);
        let s = print_fn_def(&f);
        assert!(s.starts_with("fn g(x) {"));
        assert!(s.contains("return x;"));
    }
}
