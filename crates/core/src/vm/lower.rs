//! Lowering: type-checked EIL → register bytecode.
//!
//! One [`FnLower`] pass per function, driven by [`compile`]. The pass does
//! three jobs at once:
//!
//! 1. **Register allocation.** Every named local (parameter, `let`/assign
//!    target, `for` variable, and any referenced name) gets a fixed slot;
//!    expression temporaries are bump-allocated above them and recycled per
//!    statement. Reads of possibly-undefined names go through an eager
//!    `Copy`/`CheckVar` so `Unresolved` errors fire at exactly the point the
//!    tree-walk interpreter would raise them.
//! 2. **Constant folding.** [`FnLower::try_fold`] evaluates
//!    compile-time-known subtrees using the *interpreter's own*
//!    `eval_unary`/`eval_binary`/`eval_builtin`, so a folded constant is
//!    bit-identical to what the tree-walk would have produced, and the whole
//!    subtree's fuel is charged as one lump on the folded `Const`.
//!    Per-path constant state propagates through straight-line code and
//!    joins at `if` merge points with bit-exact equality.
//! 3. **Loop-bound specialization.** `for` loops whose bounds fold to
//!    constants are unrolled when the interval analysis
//!    ([`crate::analysis::interval`]) bounds the trip count under
//!    [`UNROLL_MAX_TRIPS`] and the exact trip simulation stays within
//!    [`UNROLL_BODY_BUDGET`]; otherwise they lower to the generic
//!    `ForInit`/`ForTest`/`ForStep` triple.
//!
//! Fuel discipline: a `pending` counter accumulates the burns the
//! interpreter would have performed and is attached to the next emitted
//! instruction, so the executor's per-instruction debit reproduces the
//! interpreter's fuel trajectory exactly (see `vm::chunk` module docs).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::analysis::interval::Interval;
use crate::ast::{BinOp, Builtin, Expr, FnDef, Stmt, UnOp};
use crate::error::{Error, NameKind, Result};
use crate::interface::Interface;
use crate::interp;
use crate::units::EnergyVec;
use crate::value::Value;

use super::chunk::{fingerprint_program, Chunk, Instr, Program};

/// Maximum trip count a constant-bound `for` loop may have to be unrolled.
pub const UNROLL_MAX_TRIPS: u64 = 64;

/// Maximum `trips × body-node-count` product for unrolling, bounding the
/// code-size blowup of loop specialization.
pub const UNROLL_BODY_BUDGET: u64 = 2048;

/// Compiles a type-checked interface to a register-bytecode [`Program`].
///
/// Compilation is total over valid interfaces: interfaces that would fail at
/// runtime (unknown names, type errors, unlinked externs) still compile, to
/// code that raises the identical error at the identical evaluation point.
pub fn compile(iface: &Interface) -> Result<Program> {
    let mut symbols = Interner::default();

    // Calibration-slot and ECV-slot universes, in sorted (deterministic)
    // order. Units cover both declared units and unit literals in bodies.
    let mut units: BTreeSet<String> = iface.units.iter().cloned().collect();
    let mut ecv_names: BTreeSet<String> = BTreeSet::new();
    for f in iface.fns.values() {
        for s in &f.body {
            s.visit_exprs(&mut |e| match e {
                Expr::Unit(u, _) => {
                    units.insert(u.clone());
                }
                Expr::Ecv(n) => {
                    ecv_names.insert(n.clone());
                }
                _ => {}
            });
        }
    }
    let ecv_names: Vec<String> = ecv_names.into_iter().collect();
    let ecv_slots: HashMap<&str, u32> = ecv_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();

    // Dense function ids in BTreeMap (name) order — the interpreter's own
    // deterministic iteration order.
    let fn_ids: BTreeMap<String, u32> = iface
        .fns
        .keys()
        .enumerate()
        .map(|(i, n)| (n.clone(), i as u32))
        .collect();

    let mut chunks = Vec::with_capacity(iface.fns.len());
    for f in iface.fns.values() {
        let lower = FnLower::new(iface, f, &mut symbols, &fn_ids, &ecv_slots);
        chunks.push(lower.run()?);
    }

    let mut program = Program {
        name: iface.name.clone(),
        symbols: symbols.strings,
        units: units.into_iter().collect(),
        ecv_names,
        externs: iface.externs.keys().cloned().collect(),
        chunks,
        fn_ids,
        fingerprint: 0,
    };
    program.fingerprint = fingerprint_program(&program);
    // Every compiled artifact is statically verified before it can
    // execute: a verifier failure here means a lowering bug, reported at
    // compile time instead of as a runtime panic or divergence.
    if let Err(errs) = super::verify::verify(&program) {
        return Err(Error::Analysis {
            msg: format!(
                "bytecode verification failed:\n{}",
                super::verify::render_errors(&errs)
            ),
        });
    }
    Ok(program)
}

/// String interner for the program-wide symbol table.
#[derive(Default)]
struct Interner {
    strings: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

/// Per-path lowering state: which named registers are definitely written
/// (`defined`, an under-approximation) and which hold compile-time-known
/// constants (`known`, bit-exact).
#[derive(Clone)]
struct PathState {
    defined: BTreeSet<u32>,
    known: BTreeMap<u32, Value>,
}

impl PathState {
    /// Control-flow join: intersection on both maps, with bit-exact value
    /// agreement required to keep a constant.
    fn join(&mut self, other: &PathState) {
        self.defined.retain(|r| other.defined.contains(r));
        self.known
            .retain(|r, v| other.known.get(r).is_some_and(|o| bit_eq(v, o)));
    }
}

/// Bit-exact value equality: distinguishes `0.0`/`-0.0`, treats identical
/// NaNs as equal, and is sensitive to abstract-unit key presence — the same
/// distinctions `Value: PartialEq` either blurs (NaN) or the fold must not
/// blur (signed zero), since folded constants must be indistinguishable from
/// interpreter-computed values.
pub(crate) fn bit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Energy(x), Value::Energy(y)) => {
            x.joules.to_bits() == y.joules.to_bits()
                && x.abstracts.len() == y.abstracts.len()
                && x.abstracts
                    .iter()
                    .zip(&y.abstracts)
                    .all(|((ku, kv), (lu, lv))| ku == lu && kv.to_bits() == lv.to_bits())
        }
        (Value::Record(x), Value::Record(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((kx, vx), (ky, vy))| kx == ky && bit_eq(vx, vy))
        }
        _ => false,
    }
}

struct FnLower<'a> {
    iface: &'a Interface,
    f: &'a FnDef,
    symbols: &'a mut Interner,
    fn_ids: &'a BTreeMap<String, u32>,
    ecv_slots: &'a HashMap<&'a str, u32>,

    code: Vec<Instr>,
    fuel: Vec<u64>,
    consts: Vec<Value>,
    traps: Vec<Error>,

    /// Named local → register (params first, then discovery order).
    named: HashMap<String, u32>,
    reg_names: Vec<Option<u32>>,
    n_named: u32,
    next_tmp: u32,
    max_reg: u32,
    n_counters: u32,

    pending: u64,
    state: PathState,
}

impl<'a> FnLower<'a> {
    fn new(
        iface: &'a Interface,
        f: &'a FnDef,
        symbols: &'a mut Interner,
        fn_ids: &'a BTreeMap<String, u32>,
        ecv_slots: &'a HashMap<&'a str, u32>,
    ) -> Self {
        let mut lower = FnLower {
            iface,
            f,
            symbols,
            fn_ids,
            ecv_slots,
            code: Vec::new(),
            fuel: Vec::new(),
            consts: Vec::new(),
            traps: Vec::new(),
            named: HashMap::new(),
            reg_names: Vec::new(),
            n_named: 0,
            next_tmp: 0,
            max_reg: 0,
            n_counters: 0,
            pending: 0,
            state: PathState {
                defined: BTreeSet::new(),
                known: BTreeMap::new(),
            },
        };
        for p in &f.params {
            lower.name_reg(p);
        }
        // Every name the body binds or reads gets a fixed slot up front, so
        // reads of never-written names resolve lazily to `Unresolved` with
        // the right name instead of needing a compile error.
        collect_names(&f.body, &mut |name| {
            lower.name_reg(name);
        });
        for i in 0..f.params.len() as u32 {
            lower.state.defined.insert(i);
        }
        lower.next_tmp = lower.n_named;
        lower.max_reg = lower.n_named;
        lower
    }

    fn name_reg(&mut self, name: &str) -> u32 {
        if let Some(&r) = self.named.get(name) {
            return r;
        }
        let r = self.n_named;
        self.named.insert(name.to_string(), r);
        self.reg_names.push(Some(self.symbols.intern(name)));
        self.n_named += 1;
        r
    }

    fn run(mut self) -> Result<Chunk> {
        let body: &'a [Stmt] = &self.f.body;
        let terminated = self.block(body)?;
        // Always terminate the stream: carries any trailing fuel when the
        // body can fall through, and backstops the executor's pc otherwise.
        let _ = terminated;
        self.emit(Instr::FellOff);
        if self.max_reg > u32::MAX - 2 {
            return Err(Error::Analysis {
                msg: format!("function `{}` needs too many registers", self.f.name),
            });
        }
        let n_regs = self.max_reg;
        let mut reg_names = std::mem::take(&mut self.reg_names);
        reg_names.resize(n_regs as usize, None);
        Ok(Chunk {
            name: self.f.name.clone(),
            arity: self.f.params.len() as u32,
            n_regs,
            n_counters: self.n_counters,
            code: self.code,
            fuel: self.fuel,
            consts: self.consts,
            traps: self.traps,
            reg_names,
        })
    }

    // -- emission helpers ---------------------------------------------------

    fn charge(&mut self, n: u64) {
        self.pending = self.pending.saturating_add(n);
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.fuel.push(self.pending);
        self.pending = 0;
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfFalse { target: t, .. }
            | Instr::JumpIfTrue { target: t, .. }
            | Instr::ForTest { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn const_id(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| bit_eq(c, &v)) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn trap_id(&mut self, e: Error) -> u32 {
        if let Some(i) = self.traps.iter().position(|t| *t == e) {
            return i as u32;
        }
        self.traps.push(e);
        (self.traps.len() - 1) as u32
    }

    fn tmp(&mut self) -> u32 {
        let r = self.next_tmp;
        self.next_tmp += 1;
        self.max_reg = self.max_reg.max(self.next_tmp);
        r
    }

    // -- constant folding ---------------------------------------------------

    /// Evaluates `e` at compile time if every input is known, returning the
    /// folded value and the exact number of fuel burns the interpreter
    /// would have spent on the subtree. Any interpreter error aborts the
    /// fold (the subtree lowers normally and errors at runtime instead).
    fn try_fold(&self, e: &Expr) -> Option<(Value, u64)> {
        match e {
            Expr::Num(n) => Some((Value::Num(*n), 1)),
            Expr::Bool(b) => Some((Value::Bool(*b), 1)),
            Expr::Joules(j) => Some((Value::joules(*j), 1)),
            Expr::Unit(u, k) => Some((Value::Energy(EnergyVec::from_unit(u.clone(), *k)), 1)),
            Expr::Var(name) => {
                let r = self.named.get(name.as_str())?;
                self.state.known.get(r).map(|v| (v.clone(), 1))
            }
            Expr::Field(base, name) => {
                let (b, cb) = self.try_fold(base)?;
                let v = b.field(name).ok()?.clone();
                Some((v, 1 + cb))
            }
            Expr::Ecv(_) => None,
            Expr::Unary(op, inner) => {
                let (v, c) = self.try_fold(inner)?;
                let r = interp::eval_unary(*op, v).ok()?;
                Some((r, 1 + c))
            }
            Expr::Binary(BinOp::And, a, b) => {
                let (av, ca) = self.try_fold(a)?;
                match av {
                    Value::Bool(false) => Some((Value::Bool(false), 1 + ca)),
                    Value::Bool(true) => {
                        let (bv, cb) = self.try_fold(b)?;
                        let r = bv.as_bool().ok()?;
                        Some((Value::Bool(r), 1 + ca + cb))
                    }
                    _ => None,
                }
            }
            Expr::Binary(BinOp::Or, a, b) => {
                let (av, ca) = self.try_fold(a)?;
                match av {
                    Value::Bool(true) => Some((Value::Bool(true), 1 + ca)),
                    Value::Bool(false) => {
                        let (bv, cb) = self.try_fold(b)?;
                        let r = bv.as_bool().ok()?;
                        Some((Value::Bool(r), 1 + ca + cb))
                    }
                    _ => None,
                }
            }
            Expr::Binary(op, a, b) => {
                let (av, ca) = self.try_fold(a)?;
                let (bv, cb) = self.try_fold(b)?;
                let r = interp::eval_binary(*op, av, bv).ok()?;
                Some((r, 1 + ca + cb))
            }
            Expr::Call(_, _) => None,
            Expr::BuiltinCall(b, args) => {
                let mut vals = Vec::with_capacity(args.len());
                let mut cost = 1u64;
                for a in args {
                    let (v, c) = self.try_fold(a)?;
                    vals.push(v);
                    cost += c;
                }
                let r = interp::eval_builtin(*b, &vals).ok()?;
                Some((r, cost))
            }
            Expr::IfExpr(c, t, f) => {
                let (cv, cc) = self.try_fold(c)?;
                let taken = match cv {
                    Value::Bool(true) => t,
                    Value::Bool(false) => f,
                    _ => return None,
                };
                let (v, ct) = self.try_fold(taken)?;
                Some((v, 1 + cc + ct))
            }
        }
    }

    // -- expression lowering ------------------------------------------------

    /// Lowers `e` into a register, preferring a direct read of a named
    /// register for provably-defined variables (no instruction emitted).
    fn operand(&mut self, e: &'a Expr) -> Result<u32> {
        if let Expr::Var(name) = e {
            let r = self.named[name.as_str()];
            if self.state.defined.contains(&r) {
                self.charge(1);
                return Ok(r);
            }
        }
        let dst = self.tmp();
        self.expr(e, dst)?;
        Ok(dst)
    }

    /// Lowers `e` so its value lands in `dst`. `dst` is written exactly
    /// once, as the final action on every executed path. Returns the folded
    /// value when the whole expression was constant.
    fn expr(&mut self, e: &'a Expr, dst: u32) -> Result<Option<Value>> {
        if let Some((v, cost)) = self.try_fold(e) {
            self.charge(cost);
            let k = self.const_id(v.clone());
            self.emit(Instr::Const { dst, k });
            return Ok(Some(v));
        }
        self.charge(1);
        match e {
            // Literals always fold; reaching here means try_fold declined,
            // which cannot happen for these shapes.
            Expr::Num(_) | Expr::Bool(_) | Expr::Joules(_) | Expr::Unit(_, _) => {
                unreachable!("literals fold")
            }
            Expr::Var(name) => {
                // Copy performs the definedness check at the read point,
                // exactly where the interpreter raises `Unresolved`.
                let src = self.named[name.as_str()];
                self.emit(Instr::Copy { dst, src });
            }
            Expr::Field(base, name) => {
                let src = self.operand(base)?;
                let sym = self.symbols.intern(name);
                self.emit(Instr::Field { dst, src, sym });
            }
            Expr::Ecv(name) => {
                let slot = self.ecv_slots[name.as_str()];
                self.emit(Instr::Ecv { dst, e: slot });
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let src = self.operand(inner)?;
                self.emit(Instr::Neg { dst, src });
            }
            Expr::Unary(UnOp::Not, inner) => {
                let src = self.operand(inner)?;
                self.emit(Instr::Not { dst, src });
            }
            Expr::Binary(op @ (BinOp::And | BinOp::Or), a, b) => {
                self.lower_logic(*op, a, b, dst)?;
            }
            Expr::Binary(op, a, b) => {
                let ra = self.operand(a)?;
                let rb = self.operand(b)?;
                self.emit(Instr::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
            }
            Expr::Call(name, args) => {
                let (base, n) = self.arg_slots(args)?;
                if let Some(&f) = self.fn_ids.get(name) {
                    let arity = self.iface.fns[name].params.len();
                    if arity == args.len() {
                        self.emit(Instr::Call { f, dst, base, n });
                    } else {
                        // The interpreter raises arity errors after the
                        // depth check, with the callee's own name.
                        let t = self.trap_id(Error::Arity {
                            func: name.clone(),
                            expected: arity,
                            got: args.len(),
                        });
                        self.emit(Instr::TrapCall { t });
                    }
                } else if let Some(b) = Builtin::from_name(name) {
                    // eval_builtin re-checks arity itself, matching the
                    // interpreter's name-resolved builtin path.
                    self.emit(Instr::CallBuiltin { b, dst, base, n });
                } else if self.iface.externs.contains_key(name) {
                    let t = self.trap_id(Error::Link {
                        msg: format!(
                            "extern `{name}` is not linked; \
                             compose this interface with a provider first"
                        ),
                    });
                    self.emit(Instr::TrapCall { t });
                } else {
                    let t = self.trap_id(Error::Unresolved {
                        kind: NameKind::Function,
                        name: name.clone(),
                    });
                    self.emit(Instr::TrapCall { t });
                }
            }
            Expr::BuiltinCall(b, args) => {
                let (base, n) = self.arg_slots(args)?;
                self.emit(Instr::Builtin {
                    b: *b,
                    dst,
                    base,
                    n,
                });
            }
            Expr::IfExpr(c, t, f) => {
                let cond = self.operand(c)?;
                let jf = self.emit(Instr::JumpIfFalse { cond, target: 0 });
                self.expr(t, dst)?;
                let jend = self.emit(Instr::Jump { target: 0 });
                let here = self.here();
                self.patch(jf, here);
                self.expr(f, dst)?;
                let here = self.here();
                self.patch(jend, here);
            }
        }
        Ok(None)
    }

    /// Short-circuit `&&`/`||` with the interpreter's exact burn and error
    /// order: evaluate lhs, coerce to bool, maybe skip rhs entirely.
    fn lower_logic(&mut self, op: BinOp, a: &'a Expr, b: &'a Expr, dst: u32) -> Result<()> {
        // Decisive constant lhs folds are handled by try_fold; a constant
        // *non-decisive* lhs (true for &&, false for ||) still reaches here
        // when the rhs is dynamic.
        let ra = self.operand(a)?;
        let jshort = match op {
            BinOp::And => self.emit(Instr::JumpIfFalse {
                cond: ra,
                target: 0,
            }),
            BinOp::Or => self.emit(Instr::JumpIfTrue {
                cond: ra,
                target: 0,
            }),
            _ => unreachable!("logic lowering"),
        };
        let rb = self.operand(b)?;
        self.emit(Instr::AsBool { dst, src: rb });
        let jend = self.emit(Instr::Jump { target: 0 });
        let here = self.here();
        self.patch(jshort, here);
        let k = self.const_id(Value::Bool(op == BinOp::Or));
        self.emit(Instr::Const { dst, k });
        let here = self.here();
        self.patch(jend, here);
        Ok(())
    }

    /// Lowers call/builtin arguments into freshly allocated *consecutive*
    /// slots (the executor copies `regs[base..base+n]` into the callee
    /// frame). Each argument's scratch temps are recycled immediately.
    fn arg_slots(&mut self, args: &'a [Expr]) -> Result<(u32, u32)> {
        let base = self.next_tmp;
        self.next_tmp += args.len() as u32;
        self.max_reg = self.max_reg.max(self.next_tmp);
        let floor = self.next_tmp;
        for (j, a) in args.iter().enumerate() {
            self.expr(a, base + j as u32)?;
            self.next_tmp = floor;
        }
        Ok((base, args.len() as u32))
    }

    // -- statement lowering -------------------------------------------------

    /// Lowers a statement list; returns true when every path through it
    /// returns (lowering stops at the first terminating statement, which
    /// the interpreter would never execute past).
    fn block(&mut self, stmts: &'a [Stmt]) -> Result<bool> {
        for s in stmts {
            let save = self.next_tmp;
            let terminated = self.stmt(s)?;
            self.next_tmp = save;
            if terminated {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn stmt(&mut self, s: &'a Stmt) -> Result<bool> {
        self.charge(1); // the interpreter's per-statement burn
        match s {
            Stmt::Let(name, e) => {
                let r = self.named[name.as_str()];
                let folded = self.expr(e, r)?;
                self.state.defined.insert(r);
                match folded {
                    Some(v) => {
                        self.state.known.insert(r, v);
                    }
                    None => {
                        self.state.known.remove(&r);
                    }
                }
                Ok(false)
            }
            Stmt::Assign(name, e) => {
                let r = self.named[name.as_str()];
                if !self.state.defined.contains(&r) {
                    // The interpreter checks the target exists before
                    // evaluating the right-hand side.
                    self.emit(Instr::CheckVar { src: r });
                    self.state.defined.insert(r);
                }
                let folded = self.expr(e, r)?;
                match folded {
                    Some(v) => {
                        self.state.known.insert(r, v);
                    }
                    None => {
                        self.state.known.remove(&r);
                    }
                }
                Ok(false)
            }
            Stmt::If(cond, then_b, else_b) => self.lower_if(cond, then_b, else_b),
            Stmt::For {
                var,
                from,
                to,
                body,
            } => self.lower_for(var, from, to, body),
            Stmt::While { cond, bound, body } => self.lower_while(cond, *bound, body),
            Stmt::Return(e) => {
                let src = self.operand(e)?;
                self.emit(Instr::Return { src });
                Ok(true)
            }
        }
    }

    fn lower_if(&mut self, cond: &'a Expr, then_b: &'a [Stmt], else_b: &'a [Stmt]) -> Result<bool> {
        // Branch specialization: a constant boolean condition lowers only
        // the taken arm (the interpreter never burns the other one).
        if let Some((Value::Bool(c), cost)) = self.try_fold(cond) {
            self.charge(cost);
            return self.block(if c { then_b } else { else_b });
        }
        let creg = self.operand(cond)?;
        let jf = self.emit(Instr::JumpIfFalse {
            cond: creg,
            target: 0,
        });
        let pre = self.state.clone();
        let t_term = self.block(then_b)?;
        let t_state = std::mem::replace(&mut self.state, pre);
        let jend = if t_term {
            None
        } else {
            Some(self.emit(Instr::Jump { target: 0 }))
        };
        let here = self.here();
        self.patch(jf, here);
        let e_term = self.block(else_b)?;
        if !e_term && self.pending > 0 {
            // Trailing fuel of the else path must not leak onto the shared
            // merge point.
            self.emit(Instr::Nop);
        }
        if let Some(j) = jend {
            let here = self.here();
            self.patch(j, here);
        }
        match (t_term, e_term) {
            (true, true) => Ok(true),
            (true, false) => Ok(false), // state is the else-path state
            (false, true) => {
                self.state = t_state;
                Ok(false)
            }
            (false, false) => {
                self.state.join(&t_state);
                Ok(false)
            }
        }
    }

    fn lower_for(
        &mut self,
        var: &str,
        from: &'a Expr,
        to: &'a Expr,
        body: &'a [Stmt],
    ) -> Result<bool> {
        let var_reg = self.named[var];

        // Loop-bound specialization: both bounds constant-fold to finite
        // numbers, the interval analysis admits a small trip count, and the
        // unrolled body fits the code-size budget.
        if let Some(plan) = self.unroll_plan(from, to, body) {
            return self.unroll_for(var_reg, plan, body);
        }

        let from_reg = self.operand(from)?;
        // `from` must be numeric before `to` is even evaluated.
        self.emit(Instr::CheckNum { src: from_reg });
        let to_reg = self.tmp();
        self.expr(to, to_reg)?;
        let i_reg = self.tmp();
        self.emit(Instr::ForInit {
            i: i_reg,
            from: from_reg,
            to: to_reg,
        });

        let pre = self.state.clone();
        clear_assigned(&mut self.state.known, body, &self.named);
        self.state.known.remove(&var_reg);
        self.state.defined.insert(var_reg);

        let head = self.here() as usize;
        let test = self.emit(Instr::ForTest {
            i: i_reg,
            to: to_reg,
            var: var_reg,
            exit: 0,
        });
        self.charge(1); // per-iteration burn
        let terminated = self.block(body)?;
        if !terminated {
            self.emit(Instr::ForStep {
                i: i_reg,
                back: head as u32,
            });
        }
        let here = self.here();
        self.patch(test, here);

        // After the loop: zero trips are possible, so restore the entry
        // state minus everything the loop can touch.
        self.state = pre;
        clear_assigned(&mut self.state.known, body, &self.named);
        self.state.known.remove(&var_reg);
        Ok(false)
    }

    /// Exact trip simulation for a constant-bound `for`, mirroring the
    /// interpreter's `i = from.floor(); while i < to; i += 1.0` loop.
    fn unroll_plan(&self, from: &Expr, to: &Expr, body: &[Stmt]) -> Option<UnrollPlan> {
        let (fv, from_cost) = self.try_fold(from)?;
        let (tv, to_cost) = self.try_fold(to)?;
        let (Value::Num(from_n), Value::Num(to_n)) = (fv, tv) else {
            return None;
        };
        if !from_n.is_finite() || !to_n.is_finite() {
            return None;
        }
        // Interval pre-check (the sema interval analysis): reject huge
        // ranges before simulating them step by step.
        let trips_iv = Interval::point(to_n).sub(&Interval::point(from_n.floor()));
        // A NaN upper bound (from interval arithmetic over inf - inf)
        // must also bail out, not just a provably huge one.
        if trips_iv.hi.is_nan() || trips_iv.hi > UNROLL_MAX_TRIPS as f64 + 1.0 {
            return None;
        }
        let body_cost = body.iter().map(stmt_size).sum::<u64>().max(1);
        let mut iters = Vec::new();
        let mut i = from_n.floor();
        while i < to_n {
            iters.push(i);
            if iters.len() as u64 > UNROLL_MAX_TRIPS
                || iters.len() as u64 * body_cost > UNROLL_BODY_BUDGET
            {
                return None;
            }
            i += 1.0;
        }
        Some(UnrollPlan {
            bounds_cost: from_cost + to_cost,
            iters,
        })
    }

    fn unroll_for(&mut self, var_reg: u32, plan: UnrollPlan, body: &'a [Stmt]) -> Result<bool> {
        // Statement burn (already charged by stmt()) plus both bound
        // evaluations, as a lump.
        self.charge(plan.bounds_cost);
        for i in plan.iters {
            self.charge(1); // per-iteration burn
            let k = self.const_id(Value::Num(i));
            self.emit(Instr::Const { dst: var_reg, k });
            self.state.defined.insert(var_reg);
            self.state.known.insert(var_reg, Value::Num(i));
            let save = self.next_tmp;
            let terminated = self.block(body)?;
            self.next_tmp = save;
            if terminated {
                // The first iteration that returns ends the function; the
                // interpreter never reaches later iterations.
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn lower_while(&mut self, cond: &'a Expr, bound: u64, body: &'a [Stmt]) -> Result<bool> {
        let c = self.n_counters;
        self.n_counters += 1;
        // ResetTrips doubles as the pre-head fuel carrier: everything
        // pending (the statement burn) lands here, outside the loop.
        self.emit(Instr::ResetTrips { c });

        let pre = self.state.clone();
        clear_assigned(&mut self.state.known, body, &self.named);

        let head = self.here();
        let creg = self.operand(cond)?;
        let jf = self.emit(Instr::JumpIfFalse {
            cond: creg,
            target: 0,
        });
        self.emit(Instr::WhileGuard { c, bound });
        self.charge(1); // per-iteration burn
        let terminated = self.block(body)?;
        if !terminated {
            self.emit(Instr::Jump { target: head });
        }
        let here = self.here();
        self.patch(jf, here);

        self.state = pre;
        clear_assigned(&mut self.state.known, body, &self.named);
        Ok(false)
    }
}

struct UnrollPlan {
    bounds_cost: u64,
    iters: Vec<f64>,
}

/// Collects every name a statement list binds or reads, in pre-order.
fn collect_names(stmts: &[Stmt], f: &mut impl FnMut(&str)) {
    fn expr_names(e: &Expr, f: &mut impl FnMut(&str)) {
        e.visit(&mut |e| {
            if let Expr::Var(name) = e {
                f(name);
            }
        });
    }
    for s in stmts {
        match s {
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                f(name);
                expr_names(e, f);
            }
            Stmt::If(c, t, e) => {
                expr_names(c, f);
                collect_names(t, f);
                collect_names(e, f);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                expr_names(from, f);
                expr_names(to, f);
                f(var);
                collect_names(body, f);
            }
            Stmt::While { cond, body, .. } => {
                expr_names(cond, f);
                collect_names(body, f);
            }
            Stmt::Return(e) => expr_names(e, f),
        }
    }
}

/// Drops constant knowledge for every register a loop body can write
/// (`let`/assign targets and `for` variables, at any nesting depth).
fn clear_assigned(known: &mut BTreeMap<u32, Value>, body: &[Stmt], named: &HashMap<String, u32>) {
    for s in body {
        match s {
            Stmt::Let(name, _) | Stmt::Assign(name, _) => {
                if let Some(r) = named.get(name.as_str()) {
                    known.remove(r);
                }
            }
            Stmt::If(_, t, e) => {
                clear_assigned(known, t, named);
                clear_assigned(known, e, named);
            }
            Stmt::For { var, body, .. } => {
                if let Some(r) = named.get(var.as_str()) {
                    known.remove(r);
                }
                clear_assigned(known, body, named);
            }
            Stmt::While { body, .. } => clear_assigned(known, body, named),
            Stmt::Return(_) => {}
        }
    }
}

/// Approximate AST node count of a statement, for the unroll budget.
fn stmt_size(s: &Stmt) -> u64 {
    fn expr_size(e: &Expr) -> u64 {
        let mut n = 0u64;
        e.visit(&mut |_| n += 1);
        n
    }
    match s {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) => 1 + expr_size(e),
        Stmt::If(c, t, e) => {
            1 + expr_size(c)
                + t.iter().map(stmt_size).sum::<u64>()
                + e.iter().map(stmt_size).sum::<u64>()
        }
        Stmt::For { from, to, body, .. } => {
            1 + expr_size(from) + expr_size(to) + body.iter().map(stmt_size).sum::<u64>()
        }
        Stmt::While { cond, body, .. } => {
            1 + expr_size(cond) + body.iter().map(stmt_size).sum::<u64>()
        }
    }
}
