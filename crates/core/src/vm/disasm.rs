//! A byte-stable textual disassembly of compiled programs.
//!
//! The format is locked by golden tests (`tests/golden/vm/`): any codegen
//! change shows up as a reviewable diff. Registers print as `rN` with a
//! `:name` suffix for named locals; fuel weights print as `[+w]` and are
//! omitted when zero; constants and traps are listed per chunk before the
//! instruction stream.

use std::fmt::Write;

use crate::value::Value;

use super::chunk::{Chunk, Instr, Program};

/// Renders `p` as stable text.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ";; program {}", p.name);
    let _ = writeln!(out, ";; fingerprint {:#018x}", p.fingerprint());
    let _ = writeln!(out, ";; units [{}]", p.units.join(" "));
    let _ = writeln!(out, ";; ecvs [{}]", p.ecv_names.join(" "));
    let externs: Vec<&str> = p.externs.iter().map(String::as_str).collect();
    let _ = writeln!(out, ";; externs [{}]", externs.join(" "));
    for (id, c) in p.chunks.iter().enumerate() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "fn {}/{} {{ chunk {id}, regs {}, counters {} }}",
            c.name, c.arity, c.n_regs, c.n_counters
        );
        for (k, v) in c.consts.iter().enumerate() {
            let _ = writeln!(out, "  const k{k} = {}", value(v));
        }
        for (t, e) in c.traps.iter().enumerate() {
            let _ = writeln!(out, "  trap t{t} = {e}");
        }
        for (pc, i) in c.code.iter().enumerate() {
            let w = c.fuel[pc];
            let fuel = if w > 0 {
                format!(" [+{w}]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  {pc:04}{fuel} {}", instr(p, c, i));
        }
    }
    out
}

/// Stable rendering of a constant-pool value.
fn value(v: &Value) -> String {
    match v {
        Value::Num(n) => format!("num({})", f64_repr(*n)),
        Value::Bool(b) => format!("bool({b})"),
        Value::Energy(e) => {
            let mut s = format!("energy({} J", f64_repr(e.joules));
            for (u, a) in &e.abstracts {
                let _ = write!(s, ", {} {u}", f64_repr(*a));
            }
            s.push(')');
            s
        }
        Value::Record(r) => {
            let fields: Vec<String> = r
                .iter()
                .map(|(k, v)| format!("{k}: {}", value(v)))
                .collect();
            format!("record({})", fields.join(", "))
        }
    }
}

/// Bit-faithful float rendering: distinguishes `-0.0` and round-trips
/// exactly, so golden stability does not depend on `Display` shortening.
fn f64_repr(n: f64) -> String {
    if n == n.floor() && n.is_finite() && n.abs() < 1e15 {
        if n == 0.0 && n.is_sign_negative() {
            "-0".to_string()
        } else {
            format!("{n:.0}")
        }
    } else {
        format!("{n:?}")
    }
}

fn instr(p: &Program, c: &Chunk, i: &Instr) -> String {
    let r = |reg: u32| -> String {
        match c.reg_names.get(reg as usize).copied().flatten() {
            Some(sym) => format!("r{reg}:{}", p.symbols[sym as usize]),
            None => format!("r{reg}"),
        }
    };
    match i {
        Instr::Nop => "nop".to_string(),
        Instr::Const { dst, k } => format!("const        {} <- k{k}", r(*dst)),
        Instr::Copy { dst, src } => format!("copy         {} <- {}", r(*dst), r(*src)),
        Instr::Ecv { dst, e } => format!(
            "ecv          {} <- ecv[{}]:{}",
            r(*dst),
            e,
            p.ecv_names[*e as usize]
        ),
        Instr::Field { dst, src, sym } => format!(
            "field        {} <- {}.{}",
            r(*dst),
            r(*src),
            p.symbols[*sym as usize]
        ),
        Instr::Neg { dst, src } => format!("neg          {} <- {}", r(*dst), r(*src)),
        Instr::Not { dst, src } => format!("not          {} <- {}", r(*dst), r(*src)),
        Instr::Bin { op, dst, a, b } => format!(
            "bin.{:<8} {} <- {}, {}",
            format!("{op:?}").to_lowercase(),
            r(*dst),
            r(*a),
            r(*b)
        ),
        Instr::AsBool { dst, src } => format!("asbool       {} <- {}", r(*dst), r(*src)),
        Instr::CheckVar { src } => format!("checkvar     {}", r(*src)),
        Instr::CheckNum { src } => format!("checknum     {}", r(*src)),
        Instr::Jump { target } => format!("jump         -> {target:04}"),
        Instr::JumpIfFalse { cond, target } => {
            format!("jfalse       {} -> {target:04}", r(*cond))
        }
        Instr::JumpIfTrue { cond, target } => {
            format!("jtrue        {} -> {target:04}", r(*cond))
        }
        Instr::Builtin { b, dst, base, n } => format!(
            "builtin      {} <- {}(r{base}..r{})",
            r(*dst),
            b.name(),
            base + n
        ),
        Instr::CallBuiltin { b, dst, base, n } => format!(
            "callbuiltin  {} <- {}(r{base}..r{})",
            r(*dst),
            b.name(),
            base + n
        ),
        Instr::Call { f, dst, base, n } => format!(
            "call         {} <- {}(r{base}..r{})",
            r(*dst),
            p.chunks[*f as usize].name,
            base + n
        ),
        Instr::ForInit { i, from, to } => format!(
            "forinit      {} <- floor({}), to {}",
            r(*i),
            r(*from),
            r(*to)
        ),
        Instr::ForTest { i, to, var, exit } => format!(
            "fortest      {} < {} ? {} else -> {exit:04}",
            r(*i),
            r(*to),
            r(*var)
        ),
        Instr::ForStep { i, back } => format!("forstep      {} -> {back:04}", r(*i)),
        Instr::ResetTrips { c } => format!("resettrips   c{c}"),
        Instr::WhileGuard { c, bound } => format!("whileguard   c{c} bound {bound}"),
        Instr::Return { src } => format!("return       {}", r(*src)),
        Instr::Trap { t } => format!("trap         t{t}"),
        Instr::TrapCall { t } => format!("trapcall     t{t}"),
        Instr::FellOff => "felloff".to_string(),
    }
}
