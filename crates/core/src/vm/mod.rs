//! A register bytecode VM for EIL, with the tree-walk interpreter as its
//! differential-testing oracle.
//!
//! The paper's position is that energy interfaces must be cheap enough to
//! query *inside* resource-manager control loops. The tree-walk
//! interpreter in [`crate::interp`] re-walks the AST (hash lookups,
//! `BTreeMap` locals, enum dispatch per node) on every Monte-Carlo
//! sample, which makes it the bottleneck of the Table 1 sweep and every
//! serving-path recompute. This module compiles a type-checked interface
//! once into a compact register [`Program`] and executes it with a reused
//! [`Vm`], removing per-sample allocation and name resolution while
//! keeping the interpreter's semantics — including error variants,
//! messages, and fuel-exhaustion boundaries — bit for bit.
//!
//! Pipeline:
//!
//! - [`compile`] (`lower.rs`): register allocation, interpreter-exact
//!   constant folding, branch and loop-bound specialization (fed by the
//!   sema interval analysis), and static per-instruction fuel weights.
//! - [`Program`]/[`Instr`] (`chunk.rs`): the chunk arena, interned symbol
//!   and calibration/ECV slot tables, and the artifact fingerprint used
//!   by the eval cache.
//! - [`Vm`] (`exec.rs`): the reusable executor; arithmetic defers to the
//!   interpreter's own kernels so the two engines cannot drift.
//! - [`disassemble`] (`disasm.rs`): byte-stable text for golden tests.
//!
//! The interpreter stays authoritative: `tests/vm_differential.rs` and
//! `tests/vm_errors.rs` hold the two engines bit-identical on generated
//! and adversarial inputs, and [`crate::interp::EvalConfig::mode`]
//! selects the engine at every public entry point.

mod chunk;
mod disasm;
mod exec;
mod lower;

pub use chunk::{Chunk, Instr, Program};
pub use disasm::disassemble;
pub use exec::Vm;
pub use lower::{compile, UNROLL_BODY_BUDGET, UNROLL_MAX_TRIPS};

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;
    use crate::ecv::{EcvEnv, EcvValue};
    use crate::error::Error;
    use crate::interp::{self, EvalConfig, ExecMode};
    use crate::parser::parse;
    use crate::units::{Calibration, Energy};
    use crate::value::Value;

    /// A grab-bag interface covering loops (unrollable and not), branches,
    /// short-circuiting, recursion, builtins, units, and ECVs.
    const KITCHEN_SINK: &str = r#"interface sink {
        unit page;
        ecv hit: bernoulli(0.5);
        ecv scale: uniform(0.5, 2.0);
        fn fact(n) {
            if n <= 1 { return 1; }
            return n * fact(n - 1);
        }
        fn looped(n) {
            let acc = 0;
            for i in 0..n { acc = acc + i * i; }
            let j = 0;
            while j < 5 bound 16 { j = j + 2; }
            return acc + j;
        }
        fn unrolled() {
            let e = 0 J;
            for i in 0..4 { e = e + 3 uJ + 1 page; }
            return e;
        }
        fn logic(a, b) {
            if a > 0 && b > 0 { return min(a, b); }
            if a < 0 || b < 0 { return max(a, b); }
            return clamp(a + b, 0, 10);
        }
        fn sampled(n) {
            let base = if ecv(hit) { 1 mJ } else { 10 mJ };
            return base * n * ecv(scale) + fact(4) * 1 uJ;
        }
    }"#;

    fn assignment(hit: bool, scale: f64) -> BTreeMap<String, EcvValue> {
        let mut m = BTreeMap::new();
        m.insert("hit".to_string(), EcvValue::Bool(hit));
        m.insert("scale".to_string(), EcvValue::Num(scale));
        m
    }

    fn tree_cfg() -> EvalConfig {
        EvalConfig {
            mode: ExecMode::TreeWalk,
            ..EvalConfig::default()
        }
    }

    /// Runs both engines on the same call and requires identical outcomes
    /// (bit-exact values; equal error variants and payloads).
    fn differential(
        src: &str,
        func: &str,
        args: &[Value],
        ecvs: &BTreeMap<String, EcvValue>,
        fuel: u64,
    ) {
        let iface = parse(src).expect("test interface parses");
        let cfg = EvalConfig {
            fuel,
            mode: ExecMode::TreeWalk,
            ..EvalConfig::default()
        };
        let oracle = interp::eval_with_assignment(&iface, func, args, ecvs, &cfg);
        let program = compile(&iface).expect("compiles");
        let mut machine = Vm::new(&program);
        let got = machine.run(func, args, ecvs, &cfg);
        assert_eq!(
            oracle,
            got,
            "{func} diverged at fuel {fuel}\n{}",
            disassemble(&program)
        );
        if oracle.is_ok() {
            // Fuel parity matters even on success: it feeds telemetry.
            let mut ev_cfg = cfg.clone();
            ev_cfg.fuel = fuel;
            let used_tree = {
                // Re-derive the oracle's fuel use from the tightest budget
                // that still succeeds (scanned below), here just compare
                // via the VM's own accounting against a re-run.
                machine.run(func, args, ecvs, &ev_cfg).unwrap();
                machine.fuel_used()
            };
            assert_eq!(machine.fuel_used(), used_tree);
        }
    }

    /// Scans every fuel budget from 0 to success and requires both engines
    /// to flip from `FuelExhausted` to the same value at the same budget.
    fn fuel_boundary_scan(
        src: &str,
        func: &str,
        args: &[Value],
        ecvs: &BTreeMap<String, EcvValue>,
    ) {
        let iface = parse(src).expect("parses");
        let program = compile(&iface).expect("compiles");
        let mut machine = Vm::new(&program);
        for fuel in 0..2_000u64 {
            let cfg = EvalConfig {
                fuel,
                mode: ExecMode::TreeWalk,
                ..EvalConfig::default()
            };
            let oracle = interp::eval_with_assignment(&iface, func, args, ecvs, &cfg);
            let got = machine.run(func, args, ecvs, &cfg);
            assert_eq!(oracle, got, "{func} diverged at fuel budget {fuel}");
            if oracle.is_ok() {
                return; // boundary crossed identically
            }
        }
        panic!("{func} never succeeded within the scanned fuel range");
    }

    #[test]
    fn kitchen_sink_values_match() {
        for (func, args) in [
            ("fact", vec![Value::Num(6.0)]),
            ("looped", vec![Value::Num(9.0)]),
            ("unrolled", vec![]),
            ("logic", vec![Value::Num(3.0), Value::Num(4.0)]),
            ("logic", vec![Value::Num(-3.0), Value::Num(4.0)]),
            ("logic", vec![Value::Num(0.0), Value::Num(0.0)]),
            ("sampled", vec![Value::Num(2.0)]),
        ] {
            for (hit, scale) in [(true, 0.75), (false, 1.5)] {
                differential(
                    KITCHEN_SINK,
                    func,
                    &args,
                    &assignment(hit, scale),
                    10_000_000,
                );
            }
        }
    }

    #[test]
    fn kitchen_sink_fuel_boundaries_match() {
        for (func, args) in [
            ("fact", vec![Value::Num(6.0)]),
            ("looped", vec![Value::Num(9.0)]),
            ("unrolled", vec![]),
            ("logic", vec![Value::Num(-3.0), Value::Num(4.0)]),
            ("sampled", vec![Value::Num(2.0)]),
        ] {
            fuel_boundary_scan(KITCHEN_SINK, func, &args, &assignment(true, 1.25));
        }
    }

    #[test]
    fn runtime_errors_match_the_oracle() {
        let src = r#"interface bad {
            extern fn phantom(x);
            fn div(a, b) { return a / b; }
            fn modz(a) { return a % 0; }
            fn recurse(n) { return recurse(n + 1); }
            fn unbounded() {
                let i = 0;
                while i < 10 bound 3 { i = i + 1; }
                return i;
            }
            fn badfor(n) { for i in 0..sqrt(0-1) { n = n + 1; } return n; }
            fn noreturn(n) { let x = n; }
            fn undefvar() { return ghost + 1; }
            fn assignless() { x = 3; return x; }
            fn unlinked(n) { return phantom(n); }
            fn badbool(n) { if n { return 1; } return 0; }
        }"#;
        let cases: Vec<(&str, Vec<Value>)> = vec![
            ("div", vec![Value::Num(1.0), Value::Num(0.0)]),
            ("modz", vec![Value::Num(5.0)]),
            ("recurse", vec![Value::Num(0.0)]),
            ("unbounded", vec![]),
            ("badfor", vec![Value::Num(0.0)]),
            ("noreturn", vec![Value::Num(1.0)]),
            ("undefvar", vec![]),
            ("assignless", vec![]),
            ("unlinked", vec![Value::Num(1.0)]),
            ("badbool", vec![Value::Num(1.0)]),
            ("div", vec![Value::Num(1.0)]), // entry arity
        ];
        let ecvs = BTreeMap::new();
        for (func, args) in cases {
            differential(src, func, &args, &ecvs, 10_000_000);
        }
    }

    /// Call-shape errors that static validation rejects in source form can
    /// still exist in programmatically built (or linked) interfaces; both
    /// engines must report them identically at runtime.
    #[test]
    fn invalid_call_shapes_match_the_oracle() {
        use crate::ast::{Expr, FnDef, Stmt};
        use crate::interface::Interface;

        let mut iface = Interface::new("shapes");
        iface
            .add_fn(FnDef::new(
                "two",
                vec!["a".into(), "b".into()],
                vec![Stmt::Return(Expr::var("a"))],
            ))
            .unwrap();
        let call = |name: &str| {
            vec![Stmt::Return(Expr::Call(
                name.to_string(),
                vec![Expr::Num(1.0)],
            ))]
        };
        iface
            .add_fn(FnDef::new("unknown", vec![], call("nonexistent")))
            .unwrap();
        iface
            .add_fn(FnDef::new("badarity", vec![], call("two")))
            .unwrap();
        iface
            .add_fn(FnDef::new("badbuiltin", vec![], call("min")))
            .unwrap();

        let ecvs = BTreeMap::new();
        let cfg = tree_cfg();
        let program = compile(&iface).expect("compiles");
        let mut machine = Vm::new(&program);
        for func in ["unknown", "badarity", "badbuiltin"] {
            let oracle = interp::eval_with_assignment(&iface, func, &[], &ecvs, &cfg);
            let got = machine.run(func, &[], &ecvs, &cfg);
            assert!(oracle.is_err(), "{func}");
            assert_eq!(oracle, got, "{func}");
        }
    }

    #[test]
    fn sampling_drivers_match_across_modes() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let env = EcvEnv::from_decls(&iface.ecvs);
        let cal = Calibration::from_pairs([("page", Energy::microjoules(25.0))]);
        let args = [Value::Num(3.0)];
        let run = |mode: ExecMode| {
            let cfg = EvalConfig {
                calibration: cal.clone(),
                mode,
                ..EvalConfig::default()
            };
            let mc = interp::monte_carlo(&iface, "sampled", &args, &env, 300, 7, &cfg).unwrap();
            let par =
                interp::monte_carlo_par(&iface, "sampled", &args, &env, 300, 7, 4, &cfg).unwrap();
            assert_eq!(mc, par, "serial/parallel diverge under {mode:?}");
            let batch =
                interp::evaluate_batch(&iface, "unrolled", &[vec![], vec![]], &env, 3, &cfg)
                    .unwrap();
            // Exact enumeration needs a finite ECV space: enumerate over
            // the Bernoulli ECV only (`unrolled` reads neither).
            let mut finite = iface.ecvs.clone();
            finite.remove("scale");
            let finite_env = EcvEnv::from_decls(&finite);
            let exact =
                interp::enumerate_exact(&iface, "unrolled", &[], &finite_env, 64, &cfg).unwrap();
            (mc, batch, exact)
        };
        let walk = run(ExecMode::TreeWalk);
        let auto = run(ExecMode::Auto);
        let compiled = run(ExecMode::Compiled);
        assert_eq!(walk, auto, "Auto diverges from the oracle");
        assert_eq!(walk, compiled, "Compiled diverges from the oracle");
    }

    #[test]
    fn uncalibrated_unit_errors_match() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let env = EcvEnv::from_decls(&iface.ecvs);
        let run = |mode: ExecMode| {
            let cfg = EvalConfig {
                mode,
                ..EvalConfig::default()
            };
            interp::monte_carlo(&iface, "unrolled", &[], &env, 8, 1, &cfg)
        };
        let walk = run(ExecMode::TreeWalk).unwrap_err();
        let compiled = run(ExecMode::Compiled).unwrap_err();
        assert_eq!(walk, compiled);
        assert!(matches!(walk, Error::Uncalibrated { .. }), "{walk:?}");
    }

    #[test]
    fn disassembly_is_deterministic_and_fingerprinted() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let a = compile(&iface).unwrap();
        let b = compile(&iface).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(disassemble(&a), disassemble(&b));
        assert!(disassemble(&a).contains("fn fact/1"));
    }
}
