//! A register bytecode VM for EIL, with the tree-walk interpreter as its
//! differential-testing oracle.
//!
//! The paper's position is that energy interfaces must be cheap enough to
//! query *inside* resource-manager control loops. The tree-walk
//! interpreter in [`crate::interp`] re-walks the AST (hash lookups,
//! `BTreeMap` locals, enum dispatch per node) on every Monte-Carlo
//! sample, which makes it the bottleneck of the Table 1 sweep and every
//! serving-path recompute. This module compiles a type-checked interface
//! once into a compact register [`Program`] and executes it with a reused
//! [`Vm`], removing per-sample allocation and name resolution while
//! keeping the interpreter's semantics — including error variants,
//! messages, and fuel-exhaustion boundaries — bit for bit.
//!
//! Pipeline:
//!
//! - [`compile`] (`lower.rs`): register allocation, interpreter-exact
//!   constant folding, branch and loop-bound specialization (fed by the
//!   sema interval analysis), and static per-instruction fuel weights.
//! - [`Program`]/[`Instr`] (`chunk.rs`): the chunk arena, interned symbol
//!   and calibration/ECV slot tables, and the artifact fingerprint used
//!   by the eval cache.
//! - [`Vm`] (`exec.rs`): the reusable executor; arithmetic defers to the
//!   interpreter's own kernels so the two engines cannot drift.
//! - [`disassemble`] (`disasm.rs`): byte-stable text for golden tests.
//!
//! The interpreter stays authoritative: `tests/vm_differential.rs` and
//! `tests/vm_errors.rs` hold the two engines bit-identical on generated
//! and adversarial inputs, and [`crate::interp::EvalConfig::mode`]
//! selects the engine at every public entry point.

mod chunk;
mod disasm;
mod exec;
mod lower;
mod opt;
mod verify;

pub use chunk::{Chunk, Instr, Program};
pub use disasm::disassemble;
pub use exec::Vm;
pub use lower::{compile, UNROLL_BODY_BUDGET, UNROLL_MAX_TRIPS};
pub use opt::optimize;
pub use verify::{render_errors, verify, verify_against, VerifyError};

/// Ill-formed bytecode fixtures for verifier testing. Programs cannot be
/// constructed outside this crate (the fingerprint field is private), so
/// the corpus is built here and consumed by both the unit tests below and
/// the `cert_gate` CI binary.
#[doc(hidden)]
pub mod testing {
    use std::collections::BTreeSet;

    use crate::ast::BinOp;
    use crate::parser::parse;

    use super::chunk::{Chunk, Instr, Program};

    /// One deliberately ill-formed program with its expected (stable)
    /// verifier rendering.
    pub struct BadChunk {
        /// Corpus entry name.
        pub name: &'static str,
        /// The ill-formed program.
        pub program: Program,
        /// Exact output of [`super::render_errors`] on the failure list.
        pub expected: String,
    }

    fn chunk(arity: u32, n_regs: u32, code: Vec<Instr>) -> Chunk {
        let fuel = vec![0; code.len()];
        Chunk {
            name: "f".into(),
            arity,
            n_regs,
            n_counters: 0,
            code,
            fuel,
            consts: Vec::new(),
            traps: Vec::new(),
            reg_names: vec![None; n_regs as usize],
        }
    }

    fn program(chunk: Chunk) -> Program {
        Program {
            name: "bad".into(),
            symbols: Vec::new(),
            units: Vec::new(),
            ecv_names: Vec::new(),
            externs: BTreeSet::new(),
            chunks: vec![chunk],
            fn_ids: [("f".to_string(), 0u32)].into_iter().collect(),
            fingerprint: 0,
        }
    }

    /// Handcrafted violations of each verifier rule, plus corruptions of a
    /// genuinely compiled program. Every entry must be rejected with the
    /// recorded diagnostic, byte for byte.
    pub fn bad_chunk_corpus() -> Vec<BadChunk> {
        let mut corpus = Vec::new();
        let mut add = |name: &'static str, program: Program, expected: &str| {
            corpus.push(BadChunk {
                name,
                program,
                expected: expected.to_string(),
            });
        };

        add(
            "empty-code",
            program(chunk(0, 1, Vec::new())),
            "fn `f`: empty instruction stream",
        );

        let mut c = chunk(
            0,
            1,
            vec![Instr::Const { dst: 0, k: 0 }, Instr::Return { src: 0 }],
        );
        c.consts = vec![crate::value::Value::Num(1.0)];
        c.fuel = vec![1];
        add(
            "fuel-stream-short",
            program(c),
            "fn `f`: fuel stream length 1 does not cover 2 instructions",
        );

        add(
            "arity-exceeds-regs",
            program(chunk(3, 1, vec![Instr::Return { src: 0 }])),
            "fn `f`: arity 3 exceeds 1 registers",
        );

        add(
            "register-out-of-bounds",
            program(chunk(1, 1, vec![Instr::Return { src: 5 }])),
            "fn `f` @0000: register r5 out of bounds (n_regs 1)",
        );

        add(
            "jump-out-of-bounds",
            program(chunk(1, 1, vec![Instr::Jump { target: 9 }])),
            "fn `f` @0000: jump target 0009 out of bounds (len 1)",
        );

        add(
            "const-out-of-bounds",
            program(chunk(
                0,
                1,
                vec![Instr::Const { dst: 0, k: 3 }, Instr::Return { src: 0 }],
            )),
            "fn `f` @0000: constant k3 out of bounds (0 constants)",
        );

        add(
            "trap-out-of-bounds",
            program(chunk(0, 1, vec![Instr::Trap { t: 0 }])),
            "fn `f` @0000: trap t0 out of bounds (0 traps)",
        );

        add(
            "ecv-out-of-bounds",
            program(chunk(
                0,
                1,
                vec![Instr::Ecv { dst: 0, e: 2 }, Instr::Return { src: 0 }],
            )),
            "fn `f` @0000: ECV slot 2 out of bounds (0 ECVs)",
        );

        add(
            "symbol-out-of-bounds",
            program(chunk(
                1,
                2,
                vec![
                    Instr::Field {
                        dst: 1,
                        src: 0,
                        sym: 4,
                    },
                    Instr::Return { src: 1 },
                ],
            )),
            "fn `f` @0000: symbol 4 out of bounds (0 symbols)",
        );

        add(
            "callee-out-of-bounds",
            program(chunk(
                1,
                2,
                vec![
                    Instr::Call {
                        f: 7,
                        dst: 1,
                        base: 0,
                        n: 1,
                    },
                    Instr::Return { src: 1 },
                ],
            )),
            "fn `f` @0000: callee chunk 7 out of bounds (1 chunks)",
        );

        add(
            "call-arity-mismatch",
            program(chunk(
                1,
                2,
                vec![
                    Instr::Call {
                        f: 0,
                        dst: 1,
                        base: 0,
                        n: 2,
                    },
                    Instr::Return { src: 1 },
                ],
            )),
            "fn `f` @0000: call passes 2 arguments to `f`/1",
        );

        add(
            "argument-window-out-of-bounds",
            program(chunk(
                1,
                2,
                vec![
                    Instr::Call {
                        f: 0,
                        dst: 1,
                        base: 1,
                        n: 3,
                    },
                    Instr::Return { src: 1 },
                ],
            )),
            "fn `f` @0000: argument window r1..r4 out of bounds (n_regs 2)\n\
             fn `f` @0000: call passes 3 arguments to `f`/1",
        );

        add(
            "counter-out-of-bounds",
            program(chunk(
                1,
                1,
                vec![
                    Instr::WhileGuard { c: 1, bound: 4 },
                    Instr::Return { src: 0 },
                ],
            )),
            "fn `f` @0000: counter c1 out of bounds (n_counters 0)",
        );

        add(
            "bin-and-not-lowered",
            program(chunk(
                2,
                3,
                vec![
                    Instr::Bin {
                        op: BinOp::And,
                        dst: 2,
                        a: 0,
                        b: 1,
                    },
                    Instr::Return { src: 2 },
                ],
            )),
            "fn `f` @0000: `And` must be lowered to jumps, not a Bin instruction",
        );

        add(
            "fall-off-end",
            program(chunk(0, 1, vec![Instr::Nop])),
            "fn `f` @0000: control may fall off the end of the instruction stream",
        );

        add(
            "undefined-argument-slot",
            program(chunk(
                0,
                2,
                vec![
                    Instr::Builtin {
                        b: crate::ast::Builtin::Min,
                        dst: 0,
                        base: 0,
                        n: 2,
                    },
                    Instr::Return { src: 0 },
                ],
            )),
            "fn `f` @0000: argument slot r0 may be undefined at the call\n\
             fn `f` @0000: argument slot r1 may be undefined at the call",
        );

        add(
            "temp-read-before-assignment",
            program(chunk(
                0,
                2,
                vec![Instr::Copy { dst: 1, src: 0 }, Instr::Return { src: 1 }],
            )),
            "fn `f` @0000: temp register r0 may be read before assignment",
        );

        let mut c = chunk(
            2,
            3,
            vec![
                Instr::ForInit {
                    i: 0,
                    from: 1,
                    to: 1,
                },
                Instr::ForTest {
                    i: 0,
                    to: 1,
                    var: 2,
                    exit: 4,
                },
                Instr::Const { dst: 0, k: 0 },
                Instr::ForStep { i: 0, back: 1 },
                Instr::Return { src: 1 },
            ],
        );
        c.consts = vec![crate::value::Value::Num(0.0)];
        add(
            "induction-register-clobbered",
            program(c),
            "fn `f` @0003: induction register r0 is clobbered by the instruction at 0002",
        );

        // Corruptions of a genuinely compiled program: the verifier must
        // reject realistic near-miss artifacts, not only synthetic ones.
        let src = "interface m { fn g(n) { let s = 0; for i in 0..n { s = s + i; } return s; } }";
        let compiled = super::compile(&parse(src).expect("parses")).expect("compiles");

        let mut p = compiled.clone();
        let len = p.chunks[0].code.len();
        for instr in &mut p.chunks[0].code {
            if let Instr::ForTest { exit, .. } = instr {
                *exit = len as u32 + 5;
                break;
            }
        }
        add(
            "compiled-loop-exit-retargeted",
            p,
            &format!(
                "fn `g` @{:04}: jump target {:04} out of bounds (len {len})",
                compiled.chunks[0]
                    .code
                    .iter()
                    .position(|i| matches!(i, Instr::ForTest { .. }))
                    .expect("loop lowering emits a ForTest"),
                len + 5
            ),
        );

        let mut p = compiled.clone();
        p.chunks[0].fuel.pop();
        add(
            "compiled-fuel-truncated",
            p,
            &format!(
                "fn `g`: fuel stream length {} does not cover {len} instructions",
                len - 1
            ),
        );

        corpus
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;
    use crate::ecv::{EcvEnv, EcvValue};
    use crate::error::Error;
    use crate::interp::{self, EvalConfig, ExecMode};
    use crate::parser::parse;
    use crate::units::{Calibration, Energy};
    use crate::value::Value;

    /// A grab-bag interface covering loops (unrollable and not), branches,
    /// short-circuiting, recursion, builtins, units, and ECVs.
    const KITCHEN_SINK: &str = r#"interface sink {
        unit page;
        ecv hit: bernoulli(0.5);
        ecv scale: uniform(0.5, 2.0);
        fn fact(n) {
            if n <= 1 { return 1; }
            return n * fact(n - 1);
        }
        fn looped(n) {
            let acc = 0;
            for i in 0..n { acc = acc + i * i; }
            let j = 0;
            while j < 5 bound 16 { j = j + 2; }
            return acc + j;
        }
        fn unrolled() {
            let e = 0 J;
            for i in 0..4 { e = e + 3 uJ + 1 page; }
            return e;
        }
        fn logic(a, b) {
            if a > 0 && b > 0 { return min(a, b); }
            if a < 0 || b < 0 { return max(a, b); }
            return clamp(a + b, 0, 10);
        }
        fn sampled(n) {
            let base = if ecv(hit) { 1 mJ } else { 10 mJ };
            return base * n * ecv(scale) + fact(4) * 1 uJ;
        }
    }"#;

    fn assignment(hit: bool, scale: f64) -> BTreeMap<String, EcvValue> {
        let mut m = BTreeMap::new();
        m.insert("hit".to_string(), EcvValue::Bool(hit));
        m.insert("scale".to_string(), EcvValue::Num(scale));
        m
    }

    fn tree_cfg() -> EvalConfig {
        EvalConfig {
            mode: ExecMode::TreeWalk,
            ..EvalConfig::default()
        }
    }

    /// Runs both engines on the same call and requires identical outcomes
    /// (bit-exact values; equal error variants and payloads).
    fn differential(
        src: &str,
        func: &str,
        args: &[Value],
        ecvs: &BTreeMap<String, EcvValue>,
        fuel: u64,
    ) {
        let iface = parse(src).expect("test interface parses");
        let cfg = EvalConfig {
            fuel,
            mode: ExecMode::TreeWalk,
            ..EvalConfig::default()
        };
        let oracle = interp::eval_with_assignment(&iface, func, args, ecvs, &cfg);
        let program = compile(&iface).expect("compiles");
        let mut machine = Vm::new(&program);
        let got = machine.run(func, args, ecvs, &cfg);
        assert_eq!(
            oracle,
            got,
            "{func} diverged at fuel {fuel}\n{}",
            disassemble(&program)
        );
        if oracle.is_ok() {
            // Fuel parity matters even on success: it feeds telemetry.
            let mut ev_cfg = cfg.clone();
            ev_cfg.fuel = fuel;
            let used_tree = {
                // Re-derive the oracle's fuel use from the tightest budget
                // that still succeeds (scanned below), here just compare
                // via the VM's own accounting against a re-run.
                machine.run(func, args, ecvs, &ev_cfg).unwrap();
                machine.fuel_used()
            };
            assert_eq!(machine.fuel_used(), used_tree);
        }
    }

    /// Scans every fuel budget from 0 to success and requires both engines
    /// to flip from `FuelExhausted` to the same value at the same budget.
    fn fuel_boundary_scan(
        src: &str,
        func: &str,
        args: &[Value],
        ecvs: &BTreeMap<String, EcvValue>,
    ) {
        let iface = parse(src).expect("parses");
        let program = compile(&iface).expect("compiles");
        let mut machine = Vm::new(&program);
        for fuel in 0..2_000u64 {
            let cfg = EvalConfig {
                fuel,
                mode: ExecMode::TreeWalk,
                ..EvalConfig::default()
            };
            let oracle = interp::eval_with_assignment(&iface, func, args, ecvs, &cfg);
            let got = machine.run(func, args, ecvs, &cfg);
            assert_eq!(oracle, got, "{func} diverged at fuel budget {fuel}");
            if oracle.is_ok() {
                return; // boundary crossed identically
            }
        }
        panic!("{func} never succeeded within the scanned fuel range");
    }

    #[test]
    fn kitchen_sink_values_match() {
        for (func, args) in [
            ("fact", vec![Value::Num(6.0)]),
            ("looped", vec![Value::Num(9.0)]),
            ("unrolled", vec![]),
            ("logic", vec![Value::Num(3.0), Value::Num(4.0)]),
            ("logic", vec![Value::Num(-3.0), Value::Num(4.0)]),
            ("logic", vec![Value::Num(0.0), Value::Num(0.0)]),
            ("sampled", vec![Value::Num(2.0)]),
        ] {
            for (hit, scale) in [(true, 0.75), (false, 1.5)] {
                differential(
                    KITCHEN_SINK,
                    func,
                    &args,
                    &assignment(hit, scale),
                    10_000_000,
                );
            }
        }
    }

    #[test]
    fn kitchen_sink_fuel_boundaries_match() {
        for (func, args) in [
            ("fact", vec![Value::Num(6.0)]),
            ("looped", vec![Value::Num(9.0)]),
            ("unrolled", vec![]),
            ("logic", vec![Value::Num(-3.0), Value::Num(4.0)]),
            ("sampled", vec![Value::Num(2.0)]),
        ] {
            fuel_boundary_scan(KITCHEN_SINK, func, &args, &assignment(true, 1.25));
        }
    }

    #[test]
    fn runtime_errors_match_the_oracle() {
        let src = r#"interface bad {
            extern fn phantom(x);
            fn div(a, b) { return a / b; }
            fn modz(a) { return a % 0; }
            fn recurse(n) { return recurse(n + 1); }
            fn unbounded() {
                let i = 0;
                while i < 10 bound 3 { i = i + 1; }
                return i;
            }
            fn badfor(n) { for i in 0..sqrt(0-1) { n = n + 1; } return n; }
            fn noreturn(n) { let x = n; }
            fn undefvar() { return ghost + 1; }
            fn assignless() { x = 3; return x; }
            fn unlinked(n) { return phantom(n); }
            fn badbool(n) { if n { return 1; } return 0; }
        }"#;
        let cases: Vec<(&str, Vec<Value>)> = vec![
            ("div", vec![Value::Num(1.0), Value::Num(0.0)]),
            ("modz", vec![Value::Num(5.0)]),
            ("recurse", vec![Value::Num(0.0)]),
            ("unbounded", vec![]),
            ("badfor", vec![Value::Num(0.0)]),
            ("noreturn", vec![Value::Num(1.0)]),
            ("undefvar", vec![]),
            ("assignless", vec![]),
            ("unlinked", vec![Value::Num(1.0)]),
            ("badbool", vec![Value::Num(1.0)]),
            ("div", vec![Value::Num(1.0)]), // entry arity
        ];
        let ecvs = BTreeMap::new();
        for (func, args) in cases {
            differential(src, func, &args, &ecvs, 10_000_000);
        }
    }

    /// Call-shape errors that static validation rejects in source form can
    /// still exist in programmatically built (or linked) interfaces; both
    /// engines must report them identically at runtime.
    #[test]
    fn invalid_call_shapes_match_the_oracle() {
        use crate::ast::{Expr, FnDef, Stmt};
        use crate::interface::Interface;

        let mut iface = Interface::new("shapes");
        iface
            .add_fn(FnDef::new(
                "two",
                vec!["a".into(), "b".into()],
                vec![Stmt::Return(Expr::var("a"))],
            ))
            .unwrap();
        let call = |name: &str| {
            vec![Stmt::Return(Expr::Call(
                name.to_string(),
                vec![Expr::Num(1.0)],
            ))]
        };
        iface
            .add_fn(FnDef::new("unknown", vec![], call("nonexistent")))
            .unwrap();
        iface
            .add_fn(FnDef::new("badarity", vec![], call("two")))
            .unwrap();
        iface
            .add_fn(FnDef::new("badbuiltin", vec![], call("min")))
            .unwrap();

        let ecvs = BTreeMap::new();
        let cfg = tree_cfg();
        let program = compile(&iface).expect("compiles");
        let mut machine = Vm::new(&program);
        for func in ["unknown", "badarity", "badbuiltin"] {
            let oracle = interp::eval_with_assignment(&iface, func, &[], &ecvs, &cfg);
            let got = machine.run(func, &[], &ecvs, &cfg);
            assert!(oracle.is_err(), "{func}");
            assert_eq!(oracle, got, "{func}");
        }
    }

    #[test]
    fn sampling_drivers_match_across_modes() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let env = EcvEnv::from_decls(&iface.ecvs);
        let cal = Calibration::from_pairs([("page", Energy::microjoules(25.0))]);
        let args = [Value::Num(3.0)];
        let run = |mode: ExecMode| {
            let cfg = EvalConfig {
                calibration: cal.clone(),
                mode,
                ..EvalConfig::default()
            };
            let mc = interp::monte_carlo(&iface, "sampled", &args, &env, 300, 7, &cfg).unwrap();
            let par =
                interp::monte_carlo_par(&iface, "sampled", &args, &env, 300, 7, 4, &cfg).unwrap();
            assert_eq!(mc, par, "serial/parallel diverge under {mode:?}");
            let batch =
                interp::evaluate_batch(&iface, "unrolled", &[vec![], vec![]], &env, 3, &cfg)
                    .unwrap();
            // Exact enumeration needs a finite ECV space: enumerate over
            // the Bernoulli ECV only (`unrolled` reads neither).
            let mut finite = iface.ecvs.clone();
            finite.remove("scale");
            let finite_env = EcvEnv::from_decls(&finite);
            let exact =
                interp::enumerate_exact(&iface, "unrolled", &[], &finite_env, 64, &cfg).unwrap();
            (mc, batch, exact)
        };
        let walk = run(ExecMode::TreeWalk);
        let auto = run(ExecMode::Auto);
        let compiled = run(ExecMode::Compiled);
        assert_eq!(walk, auto, "Auto diverges from the oracle");
        assert_eq!(walk, compiled, "Compiled diverges from the oracle");
    }

    #[test]
    fn uncalibrated_unit_errors_match() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let env = EcvEnv::from_decls(&iface.ecvs);
        let run = |mode: ExecMode| {
            let cfg = EvalConfig {
                mode,
                ..EvalConfig::default()
            };
            interp::monte_carlo(&iface, "unrolled", &[], &env, 8, 1, &cfg)
        };
        let walk = run(ExecMode::TreeWalk).unwrap_err();
        let compiled = run(ExecMode::Compiled).unwrap_err();
        assert_eq!(walk, compiled);
        assert!(matches!(walk, Error::Uncalibrated { .. }), "{walk:?}");
    }

    #[test]
    fn disassembly_is_deterministic_and_fingerprinted() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let a = compile(&iface).unwrap();
        let b = compile(&iface).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(disassemble(&a), disassemble(&b));
        assert!(disassemble(&a).contains("fn fact/1"));
    }

    #[test]
    fn verifier_rejects_the_bad_chunk_corpus_with_stable_diagnostics() {
        for bad in testing::bad_chunk_corpus() {
            let errs = verify(&bad.program)
                .expect_err(&format!("corpus entry `{}` must be rejected", bad.name));
            assert_eq!(
                render_errors(&errs),
                bad.expected,
                "diagnostics drifted for corpus entry `{}`",
                bad.name
            );
        }
    }

    #[test]
    fn every_compiled_program_verifies() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let program = compile(&iface).unwrap();
        verify(&program).expect("compiled output verifies");
        verify_against(&iface, &program).expect("interval agreement holds");
    }

    #[test]
    fn optimizer_preserves_shape_fuel_and_verification() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let program = compile(&iface).unwrap();
        let opt = optimize(&program);
        verify(&opt).expect("optimized output verifies");
        assert_eq!(program.chunks.len(), opt.chunks.len());
        for (before, after) in program.chunks.iter().zip(&opt.chunks) {
            assert_eq!(before.code.len(), after.code.len(), "fn {}", before.name);
            assert_eq!(before.fuel, after.fuel, "fn {}", before.name);
        }
        // The passes must actually do something on this corpus, and the
        // changed artifact must not collide with the original in caches.
        assert_ne!(disassemble(&program), disassemble(&opt));
        assert_ne!(program.fingerprint(), opt.fingerprint());
        // Idempotent fixpoint: optimizing again changes nothing.
        let again = optimize(&opt);
        assert_eq!(disassemble(&opt), disassemble(&again));
        assert_eq!(opt.fingerprint(), again.fingerprint());
    }

    #[test]
    fn optimized_engine_matches_the_oracle_bit_for_bit() {
        let iface = parse(KITCHEN_SINK).unwrap();
        let program = optimize(&compile(&iface).unwrap());
        let mut machine = Vm::new(&program);
        for (func, args) in [
            ("fact", vec![Value::Num(6.0)]),
            ("looped", vec![Value::Num(9.0)]),
            ("unrolled", vec![]),
            ("logic", vec![Value::Num(3.0), Value::Num(4.0)]),
            ("logic", vec![Value::Num(-3.0), Value::Num(4.0)]),
            ("sampled", vec![Value::Num(2.0)]),
        ] {
            let ecvs = assignment(true, 1.25);
            for fuel in (0..12).map(|i| (1u64 << i) - 1).chain([10_000_000]) {
                let cfg = EvalConfig {
                    fuel,
                    mode: ExecMode::TreeWalk,
                    ..EvalConfig::default()
                };
                let oracle = interp::eval_with_assignment(&iface, func, &args, &ecvs, &cfg);
                let got = machine.run(func, &args, &ecvs, &cfg);
                assert_eq!(oracle, got, "{func} diverged at fuel {fuel}");
            }
        }
    }

    #[test]
    fn verify_against_agrees_on_interfaces_with_specs() {
        use crate::interface::InputSpec;
        let mut iface = parse(
            r#"interface webby {
                unit req;
                ecv load: uniform(0.1, 0.9);
                fn cost(n) {
                    let e = 0 J;
                    for i in 0..n { e = e + 2 mJ; }
                    return e * ecv(load) + n * 1 req;
                }
            }"#,
        )
        .unwrap();
        iface.set_input_spec("cost", InputSpec::new().range("n", 1.0, 8.0));
        let program = compile(&iface).unwrap();
        verify_against(&iface, &program).expect("bytecode and AST analyses agree");
        let opt = optimize(&program);
        verify_against(&iface, &opt).expect("optimized bytecode still agrees");
    }
}
