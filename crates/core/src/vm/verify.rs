//! Static verification of compiled bytecode.
//!
//! The lowering ([`super::lower`]) promises a long list of invariants the
//! executor ([`super::exec`]) then relies on — some for memory safety
//! (argument windows are always written before a call reads them; every
//! operand index is in bounds; control never falls off the end of the
//! instruction stream), some for observational equivalence with the
//! tree-walk oracle (fuel streams cover the code, temps are never read
//! before assignment, loop counters are only ever advanced by the loop
//! forms that own them). This module *proves* those invariants per chunk
//! instead of trusting them, so a lowering bug — or a bad optimization
//! pass — is rejected at compile time with a stable diagnostic rather
//! than surfacing as a panic or a silent divergence deep inside a
//! Monte-Carlo run.
//!
//! Three layers, in increasing cost:
//!
//! 1. **Structural** ([`verify`], always on): every register, constant,
//!    trap, symbol, ECV, counter, jump target, and callee index is in
//!    bounds; fuel and code streams have equal length; call arities match
//!    their callee chunks; `And`/`Or` never appear as `Bin` ops (the
//!    lowering turns them into jumps); no instruction can fall off the
//!    end of the stream.
//! 2. **Dataflow** ([`verify`], always on): a forward must-defined
//!    analysis over the control-flow graph proving that (a) every
//!    argument slot of a `Call`/`Builtin`/`CallBuiltin` window is
//!    definitely written on every path (the executor `expect`s this), and
//!    (b) no *temp* register is read while possibly undefined — a read of
//!    an unwritten temp would report `Unresolved` with the placeholder
//!    name `?`, which the tree-walk oracle can never produce. Reads of
//!    possibly-unwritten *named* registers are legitimate: that is
//!    exactly the lazy `Unresolved { name }` semantics of the language.
//!    Loop-register discipline is checked here too: a register used as
//!    the induction slot of `ForTest`/`ForStep` may only be written by
//!    `ForInit`/`ForStep`.
//! 3. **Interval agreement** ([`verify_against`], on demand): an abstract
//!    interpreter over the bytecode in the interval domain of
//!    [`crate::analysis::interval`], evaluated on the same abstract
//!    inputs as the AST-level [`abstract_eval`] for every function with a
//!    declared [`InputSpec`](crate::interface::InputSpec). Both analyses
//!    soundly over-approximate the same concrete semantics, so their
//!    result ranges must overlap; disjoint ranges prove a lowering (or
//!    analysis) bug. This also exercises type and unit consistency — the
//!    bytecode-level domain tracks `Num`/`Bool`/`Energy`/`Record` and the
//!    per-unit components of abstract energies.

use std::collections::BTreeMap;
use std::fmt;

use crate::analysis::interval::{
    abstract_eval, abstract_inputs, ecv_abs_value, AbsBool, AbsValue, Interval,
};
use crate::ast::{BinOp, Builtin};
use crate::interface::Interface;
use crate::value::Value;

use super::chunk::{Chunk, Instr, Program};

/// One verification failure, with a byte-stable rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Name of the offending chunk (function).
    pub chunk: String,
    /// Offending instruction index, when the failure is per-instruction.
    pub pc: Option<usize>,
    /// Stable description of the violated invariant.
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "fn `{}` @{pc:04}: {}", self.chunk, self.msg),
            None => write!(f, "fn `{}`: {}", self.chunk, self.msg),
        }
    }
}

/// Verifies every chunk of `program` (structural + dataflow layers).
///
/// Returns all failures, sorted by chunk order and pc, so diagnostics are
/// byte-stable for golden tests.
pub fn verify(program: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for chunk in &program.chunks {
        verify_chunk(program, chunk, &mut errs);
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verifies `program` and additionally checks interval agreement with the
/// AST-level abstract interpreter for every function of `iface` that has a
/// declared input spec. `program` must be the compilation of `iface`.
pub fn verify_against(iface: &Interface, program: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errs = match verify(program) {
        Ok(()) => Vec::new(),
        Err(e) => e,
    };

    // Resolve every ECV slot to its distribution-derived abstract value.
    let ecv_cells: Vec<Cell> = program
        .ecv_names
        .iter()
        .map(|name| match iface.ecvs.get(name) {
            Some(decl) => Cell::Val(ecv_abs_value(&decl.dist)),
            None => Cell::Top,
        })
        .collect();

    for (fname, spec) in iface.input_specs.iter() {
        let Some(&fid) = program.fn_ids.get(fname) else {
            continue;
        };
        // Either side declining to analyze (unsupported shape, possible
        // runtime error, unlinked extern) is not a lowering bug; the
        // check fires only when both sides produce a range.
        let Ok(args) = abstract_inputs(iface, fname, spec) else {
            continue;
        };
        let Ok(ast) = abstract_eval(iface, fname, &args) else {
            continue;
        };
        let cells: Vec<Cell> = args.into_iter().map(Cell::Val).collect();
        let Some(machine) = absint_chunk(program, fid, cells, &ecv_cells, 0) else {
            continue;
        };
        if disjoint(&ast, &machine) {
            errs.push(VerifyError {
                chunk: fname.clone(),
                pc: None,
                msg: format!(
                    "interval disagreement with the AST analysis: \
                     ast {ast:?} vs bytecode {machine:?}"
                ),
            });
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

// ---------------------------------------------------------------------------
// Structural layer
// ---------------------------------------------------------------------------

fn verify_chunk(program: &Program, chunk: &Chunk, errs: &mut Vec<VerifyError>) {
    let err = |pc: Option<usize>, msg: String| VerifyError {
        chunk: chunk.name.clone(),
        pc,
        msg,
    };
    if chunk.code.is_empty() {
        errs.push(err(None, "empty instruction stream".into()));
        return;
    }
    if chunk.fuel.len() != chunk.code.len() {
        errs.push(err(
            None,
            format!(
                "fuel stream length {} does not cover {} instructions",
                chunk.fuel.len(),
                chunk.code.len()
            ),
        ));
        return;
    }
    if chunk.reg_names.len() != chunk.n_regs as usize {
        errs.push(err(
            None,
            format!(
                "{} register names for {} registers",
                chunk.reg_names.len(),
                chunk.n_regs
            ),
        ));
        return;
    }
    if chunk.arity > chunk.n_regs {
        errs.push(err(
            None,
            format!("arity {} exceeds {} registers", chunk.arity, chunk.n_regs),
        ));
        return;
    }

    let len = chunk.code.len();
    let mut structural_ok = true;
    for (pc, instr) in chunk.code.iter().enumerate() {
        let mut bad = |msg: String| {
            errs.push(VerifyError {
                chunk: chunk.name.clone(),
                pc: Some(pc),
                msg,
            });
            structural_ok = false;
        };
        for r in instr_regs(instr) {
            if r >= chunk.n_regs {
                bad(format!(
                    "register r{r} out of bounds (n_regs {})",
                    chunk.n_regs
                ));
            }
        }
        if let Some((base, n)) = arg_window(instr) {
            if base.checked_add(n).is_none_or(|end| end > chunk.n_regs) {
                bad(format!(
                    "argument window r{base}..r{} out of bounds (n_regs {})",
                    base.saturating_add(n),
                    chunk.n_regs
                ));
            }
        }
        for t in jump_targets(instr) {
            if t as usize >= len {
                bad(format!("jump target {t:04} out of bounds (len {len})"));
            }
        }
        match instr {
            Instr::Const { k, .. } if *k as usize >= chunk.consts.len() => {
                bad(format!(
                    "constant k{k} out of bounds ({} constants)",
                    chunk.consts.len()
                ));
            }
            Instr::Trap { t } | Instr::TrapCall { t } if *t as usize >= chunk.traps.len() => {
                bad(format!(
                    "trap t{t} out of bounds ({} traps)",
                    chunk.traps.len()
                ));
            }
            Instr::Ecv { e, .. } if *e as usize >= program.ecv_names.len() => {
                bad(format!(
                    "ECV slot {e} out of bounds ({} ECVs)",
                    program.ecv_names.len()
                ));
            }
            Instr::Field { sym, .. } if *sym as usize >= program.symbols.len() => {
                bad(format!(
                    "symbol {sym} out of bounds ({} symbols)",
                    program.symbols.len()
                ));
            }
            Instr::Call { f, n, .. } => match program.chunks.get(*f as usize) {
                None => bad(format!(
                    "callee chunk {f} out of bounds ({} chunks)",
                    program.chunks.len()
                )),
                Some(callee) if callee.arity != *n => bad(format!(
                    "call passes {n} arguments to `{}`/{}",
                    callee.name, callee.arity
                )),
                Some(_) => {}
            },
            Instr::ResetTrips { c } | Instr::WhileGuard { c, .. } if *c >= chunk.n_counters => {
                bad(format!(
                    "counter c{c} out of bounds (n_counters {})",
                    chunk.n_counters
                ));
            }
            Instr::Bin { op, .. } if matches!(op, BinOp::And | BinOp::Or) => {
                bad(format!(
                    "`{op:?}` must be lowered to jumps, not a Bin instruction"
                ));
            }
            _ => {}
        }
        if can_fall_through(instr) && pc + 1 >= len {
            bad("control may fall off the end of the instruction stream".into());
        }
    }

    // Loop-register discipline: within a loop's extent (`ForTest` head
    // through its `ForStep`), the induction slot may only be written by
    // that `ForStep`. Outside the extent the register is fair game — the
    // lowering recycles temp slots across statements.
    for (step_pc, instr) in chunk.code.iter().enumerate() {
        let Instr::ForStep { i, back } = instr else {
            continue;
        };
        let (i, back) = (*i, *back as usize);
        if i >= chunk.n_regs || back >= len || back > step_pc {
            continue; // malformed shape; bounds errors already reported
        }
        if !matches!(chunk.code[back], Instr::ForTest { i: ti, .. } if ti == i) {
            errs.push(VerifyError {
                chunk: chunk.name.clone(),
                pc: Some(step_pc),
                msg: format!("back-edge target {back:04} is not this loop's ForTest"),
            });
            continue;
        }
        for (wpc, w) in chunk.code[back..step_pc].iter().enumerate() {
            if writes_of(w).contains(&i) {
                errs.push(VerifyError {
                    chunk: chunk.name.clone(),
                    pc: Some(step_pc),
                    msg: format!(
                        "induction register r{i} is clobbered by the \
                         instruction at {:04}",
                        back + wpc
                    ),
                });
            }
        }
    }

    if !structural_ok {
        return; // dataflow over malformed code would index out of bounds
    }

    // Dataflow layer: must-defined registers.
    let ins = must_defined(chunk);
    for (pc, instr) in chunk.code.iter().enumerate() {
        let Some(defs) = &ins[pc] else {
            continue; // unreachable code cannot misbehave
        };
        if let Some((base, n)) = arg_window(instr) {
            for r in base..base + n {
                if !defs.get(r) {
                    errs.push(VerifyError {
                        chunk: chunk.name.clone(),
                        pc: Some(pc),
                        msg: format!("argument slot r{r} may be undefined at the call"),
                    });
                }
            }
        }
        for r in instr_reads(instr) {
            if chunk.reg_names[r as usize].is_none() && !defs.get(r) {
                errs.push(VerifyError {
                    chunk: chunk.name.clone(),
                    pc: Some(pc),
                    msg: format!("temp register r{r} may be read before assignment"),
                });
            }
        }
    }
}

/// Every register operand an instruction mentions (reads and writes).
fn instr_regs(instr: &Instr) -> Vec<u32> {
    let mut rs = instr_reads(instr);
    rs.extend(writes_of(instr));
    rs
}

/// Register reads outside argument windows. `CheckVar` is excluded: its
/// whole point is probing a possibly-unwritten named register.
fn instr_reads(instr: &Instr) -> Vec<u32> {
    match instr {
        Instr::Copy { src, .. }
        | Instr::Field { src, .. }
        | Instr::Neg { src, .. }
        | Instr::Not { src, .. }
        | Instr::AsBool { src, .. }
        | Instr::CheckNum { src }
        | Instr::Return { src } => vec![*src],
        Instr::Bin { a, b, .. } => vec![*a, *b],
        Instr::JumpIfFalse { cond, .. } | Instr::JumpIfTrue { cond, .. } => vec![*cond],
        Instr::ForInit { from, to, .. } => vec![*from, *to],
        Instr::ForTest { i, to, .. } => vec![*i, *to],
        Instr::ForStep { i, .. } => vec![*i],
        _ => Vec::new(),
    }
}

/// Registers an instruction writes. `ForTest` writes `var` only on the
/// fall-through edge; callers that need edge precision special-case it.
pub(super) fn writes_of(instr: &Instr) -> Vec<u32> {
    match instr {
        Instr::Const { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Ecv { dst, .. }
        | Instr::Field { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::AsBool { dst, .. }
        | Instr::Builtin { dst, .. }
        | Instr::CallBuiltin { dst, .. }
        | Instr::Call { dst, .. } => vec![*dst],
        Instr::ForInit { i, .. } | Instr::ForStep { i, .. } => vec![*i],
        Instr::ForTest { var, .. } => vec![*var],
        _ => Vec::new(),
    }
}

/// The argument window `(base, n)` of a call-like instruction.
pub(super) fn arg_window(instr: &Instr) -> Option<(u32, u32)> {
    match instr {
        Instr::Builtin { base, n, .. }
        | Instr::CallBuiltin { base, n, .. }
        | Instr::Call { base, n, .. } => Some((*base, *n)),
        _ => None,
    }
}

/// Explicit jump targets of an instruction.
fn jump_targets(instr: &Instr) -> Vec<u32> {
    match instr {
        Instr::Jump { target }
        | Instr::JumpIfFalse { target, .. }
        | Instr::JumpIfTrue { target, .. } => vec![*target],
        Instr::ForTest { exit, .. } => vec![*exit],
        Instr::ForStep { back, .. } => vec![*back],
        _ => Vec::new(),
    }
}

/// True when execution can continue at `pc + 1`.
fn can_fall_through(instr: &Instr) -> bool {
    !matches!(
        instr,
        Instr::Jump { .. }
            | Instr::ForStep { .. }
            | Instr::Return { .. }
            | Instr::Trap { .. }
            | Instr::TrapCall { .. }
            | Instr::FellOff
    )
}

/// Successor pcs of the instruction at `pc` (bounds already verified).
pub(super) fn successors(instr: &Instr, pc: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    if can_fall_through(instr) {
        out.push(pc + 1);
    }
    for t in jump_targets(instr) {
        out.push(t as usize);
    }
    out
}

// ---------------------------------------------------------------------------
// Must-defined dataflow
// ---------------------------------------------------------------------------

/// A dense register bitset.
#[derive(Clone, PartialEq, Eq)]
pub(super) struct Defs(Vec<u64>);

impl Defs {
    fn empty(n_regs: u32) -> Defs {
        Defs(vec![0; (n_regs as usize).div_ceil(64)])
    }
    fn set(&mut self, r: u32) {
        self.0[r as usize / 64] |= 1 << (r % 64);
    }
    pub(super) fn get(&self, r: u32) -> bool {
        self.0[r as usize / 64] & (1 << (r % 64)) != 0
    }
    /// Intersects in place; reports whether anything changed.
    fn intersect_with(&mut self, o: &Defs) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&o.0) {
            let n = *a & b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
}

/// Forward must-defined analysis: `ins[pc]` is the set of registers
/// definitely written on **every** path reaching `pc` (`None` =
/// unreachable). Parameters `0..arity` enter defined.
pub(super) fn must_defined(chunk: &Chunk) -> Vec<Option<Defs>> {
    let len = chunk.code.len();
    let mut ins: Vec<Option<Defs>> = vec![None; len];
    let mut entry = Defs::empty(chunk.n_regs);
    for r in 0..chunk.arity {
        entry.set(r);
    }
    ins[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let mut out = ins[pc].clone().expect("worklist entries are reachable");
        let instr = &chunk.code[pc];
        // `ForTest` defines `var` only on the fall-through edge.
        let (fallthrough_extra, uniform) = match instr {
            Instr::ForTest { var, .. } => (Some(*var), Vec::new()),
            _ => (None, writes_of(instr)),
        };
        for r in uniform {
            out.set(r);
        }
        for succ in successors(instr, pc) {
            let mut s = out.clone();
            if succ == pc + 1 {
                if let Some(v) = fallthrough_extra {
                    s.set(v);
                }
            }
            match &mut ins[succ] {
                None => {
                    ins[succ] = Some(s);
                    work.push(succ);
                }
                Some(cur) => {
                    if cur.intersect_with(&s) {
                        work.push(succ);
                    }
                }
            }
        }
    }
    ins
}

// ---------------------------------------------------------------------------
// Interval abstract interpretation over bytecode
// ---------------------------------------------------------------------------

/// Number of state updates a pc may receive before its cells widen to
/// [`Cell::Top`] (guarantees termination on loops).
const WIDEN_AFTER: u32 = 64;

/// Maximum abstract call depth (mirrors the AST analyzer's limit).
const MAX_ABS_DEPTH: usize = 16;

/// One abstract register cell.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum Cell {
    /// Not written on any path seen so far.
    Bot,
    /// Written, with this abstract value.
    Val(AbsValue),
    /// Written, value unknown (or type-confused across paths).
    Top,
}

impl Cell {
    fn join(&self, o: &Cell) -> Cell {
        match (self, o) {
            (Cell::Bot, x) | (x, Cell::Bot) => x.clone(),
            (Cell::Top, _) | (_, Cell::Top) => Cell::Top,
            (Cell::Val(a), Cell::Val(b)) => match a.join(b) {
                Ok(v) => Cell::Val(v),
                Err(_) => Cell::Top,
            },
        }
    }
    fn num(&self) -> Option<Interval> {
        match self {
            Cell::Val(AbsValue::Num(i)) => Some(*i),
            _ => None,
        }
    }
}

/// Abstractly executes chunk `fid` on `args`, returning the join of every
/// reachable `Return` value, or `None` when the analysis loses precision
/// (a `Top` return, excessive recursion, or no reachable return at all).
pub(super) fn absint_chunk(
    program: &Program,
    fid: u32,
    args: Vec<Cell>,
    ecvs: &[Cell],
    depth: usize,
) -> Option<AbsValue> {
    if depth > MAX_ABS_DEPTH {
        return None;
    }
    let chunk = &program.chunks[fid as usize];
    let len = chunk.code.len();
    let mut state = args;
    state.resize(chunk.n_regs as usize, Cell::Bot);
    let mut ins: Vec<Option<Vec<Cell>>> = vec![None; len];
    let mut visits: Vec<u32> = vec![0; len];
    ins[0] = Some(state);
    let mut work = vec![0usize];
    let mut ret: Option<AbsValue> = None;
    let mut ret_top = false;

    while let Some(pc) = work.pop() {
        let state = ins[pc].clone().expect("worklist entries are reachable");
        let instr = &chunk.code[pc];
        if let Instr::Return { src } = instr {
            match &state[*src as usize] {
                Cell::Bot => {} // runtime error, not a successful return
                Cell::Top => ret_top = true,
                Cell::Val(v) => {
                    ret = Some(match ret {
                        None => v.clone(),
                        Some(cur) => match cur.join(v) {
                            Ok(j) => j,
                            Err(_) => {
                                ret_top = true;
                                cur
                            }
                        },
                    });
                }
            }
            continue;
        }
        let out = transfer(program, chunk, instr, state, ecvs, depth);
        for succ in successors(instr, pc) {
            let mut s = out.clone();
            if let Instr::ForTest { i, var, .. } = instr {
                if succ == pc + 1 {
                    // The fall-through edge binds the loop variable.
                    s[*var as usize] = s[*i as usize].clone();
                }
            }
            let widen = visits[succ] >= WIDEN_AFTER;
            match &mut ins[succ] {
                None => {
                    visits[succ] += 1;
                    ins[succ] = Some(s);
                    work.push(succ);
                }
                Some(cur) => {
                    let mut changed = false;
                    for (c, n) in cur.iter_mut().zip(&s) {
                        let j = if widen && *c != *n {
                            Cell::Top
                        } else {
                            c.join(n)
                        };
                        if j != *c {
                            *c = j;
                            changed = true;
                        }
                    }
                    if changed {
                        visits[succ] += 1;
                        work.push(succ);
                    }
                }
            }
        }
    }
    if ret_top {
        None
    } else {
        ret
    }
}

/// Abstract transfer function of one instruction.
fn transfer(
    program: &Program,
    chunk: &Chunk,
    instr: &Instr,
    mut state: Vec<Cell>,
    ecvs: &[Cell],
    depth: usize,
) -> Vec<Cell> {
    let wr = |state: &mut Vec<Cell>, r: u32, c: Cell| state[r as usize] = c;
    match instr {
        Instr::Const { dst, k } => {
            let c = abs_of_value(&chunk.consts[*k as usize]);
            wr(&mut state, *dst, Cell::Val(c));
        }
        Instr::Copy { dst, src } => {
            let c = match &state[*src as usize] {
                Cell::Bot => Cell::Top, // error path; stay conservative
                c => c.clone(),
            };
            wr(&mut state, *dst, c);
        }
        Instr::Ecv { dst, e } => {
            let c = ecvs.get(*e as usize).cloned().unwrap_or(Cell::Top);
            wr(&mut state, *dst, c);
        }
        Instr::Field { dst, src, sym } => {
            let name = &program.symbols[*sym as usize];
            let c = match &state[*src as usize] {
                Cell::Val(AbsValue::Record(fields)) => match fields.get(name) {
                    Some(v) => Cell::Val(v.clone()),
                    None => Cell::Top,
                },
                _ => Cell::Top,
            };
            wr(&mut state, *dst, c);
        }
        Instr::Neg { dst, src } => {
            let c = match &state[*src as usize] {
                Cell::Val(AbsValue::Num(i)) => {
                    Cell::Val(AbsValue::Num(Interval::new(-i.hi, -i.lo)))
                }
                Cell::Val(AbsValue::Energy(e)) => {
                    Cell::Val(AbsValue::Energy(e.scale(&Interval::point(-1.0))))
                }
                _ => Cell::Top,
            };
            wr(&mut state, *dst, c);
        }
        Instr::Not { dst, src } => {
            let c = match &state[*src as usize] {
                Cell::Val(AbsValue::Bool(b)) => Cell::Val(AbsValue::Bool(b.not())),
                _ => Cell::Top,
            };
            wr(&mut state, *dst, c);
        }
        Instr::Bin { op, dst, a, b } => {
            let c = abs_binary(*op, &state[*a as usize], &state[*b as usize]);
            wr(&mut state, *dst, c);
        }
        Instr::AsBool { dst, src } => {
            let c = match &state[*src as usize] {
                Cell::Val(AbsValue::Bool(b)) => Cell::Val(AbsValue::Bool(*b)),
                _ => Cell::Top,
            };
            wr(&mut state, *dst, c);
        }
        Instr::Builtin { b, dst, base, n } | Instr::CallBuiltin { b, dst, base, n } => {
            let args: Vec<&Cell> = (*base..*base + *n).map(|r| &state[r as usize]).collect();
            let c = abs_builtin(*b, &args);
            wr(&mut state, *dst, c);
        }
        Instr::Call { f, dst, base, n } => {
            let args: Vec<Cell> = (*base..*base + *n)
                .map(|r| match &state[r as usize] {
                    Cell::Bot => Cell::Top,
                    c => c.clone(),
                })
                .collect();
            let c = match absint_chunk(program, *f, args, ecvs, depth + 1) {
                Some(v) => Cell::Val(v),
                None => Cell::Top,
            };
            wr(&mut state, *dst, c);
        }
        Instr::ForInit { i, from, .. } => {
            let c = match state[*from as usize].num() {
                Some(iv) => Cell::Val(AbsValue::Num(Interval::new(iv.lo.floor(), iv.hi.floor()))),
                None => Cell::Top,
            };
            wr(&mut state, *i, c);
        }
        Instr::ForStep { i, .. } => {
            let c = match state[*i as usize].num() {
                Some(iv) => Cell::Val(AbsValue::Num(iv.add(&Interval::point(1.0)))),
                None => Cell::Top,
            };
            wr(&mut state, *i, c);
        }
        // `ForTest` writes `var` on the fall-through edge only; the caller
        // patches that edge. Checks, guards, jumps, nops: no register
        // effect.
        _ => {}
    }
    state
}

/// Lifts a constant-pool value into the abstract domain.
fn abs_of_value(v: &Value) -> AbsValue {
    match v {
        Value::Num(n) => AbsValue::Num(Interval::point(*n)),
        Value::Bool(b) => AbsValue::Bool(AbsBool::from_bool(*b)),
        Value::Energy(e) => {
            let mut abs =
                crate::analysis::interval::AbsEnergy::from_joules(Interval::point(e.joules));
            for (u, a) in &e.abstracts {
                abs.abstracts.insert(u.clone(), Interval::point(*a));
            }
            AbsValue::Energy(abs)
        }
        Value::Record(r) => AbsValue::Record(
            r.iter()
                .map(|(k, f)| (k.clone(), abs_of_value(f)))
                .collect(),
        ),
    }
}

/// Abstract binary operation; `Top` whenever the result could error or the
/// shape is not tracked.
fn abs_binary(op: BinOp, a: &Cell, b: &Cell) -> Cell {
    use AbsValue as A;
    let (Cell::Val(va), Cell::Val(vb)) = (a, b) else {
        return Cell::Top;
    };
    match (op, va, vb) {
        (BinOp::Add, A::Num(x), A::Num(y)) => Cell::Val(A::Num(x.add(y))),
        (BinOp::Sub, A::Num(x), A::Num(y)) => Cell::Val(A::Num(x.sub(y))),
        (BinOp::Mul, A::Num(x), A::Num(y)) => Cell::Val(A::Num(x.mul(y))),
        (BinOp::Div, A::Num(x), A::Num(y)) => match x.div(y) {
            Ok(i) => Cell::Val(A::Num(i)),
            Err(_) => Cell::Top,
        },
        (BinOp::Add, A::Energy(x), A::Energy(y)) => Cell::Val(A::Energy(x.add(y))),
        (BinOp::Sub, A::Energy(x), A::Energy(y)) => Cell::Val(A::Energy(x.sub(y))),
        (BinOp::Mul, A::Energy(x), A::Num(y)) => Cell::Val(A::Energy(x.scale(y))),
        (BinOp::Mul, A::Num(x), A::Energy(y)) => Cell::Val(A::Energy(y.scale(x))),
        (BinOp::Div, A::Energy(x), A::Num(y)) => match x.div_num(y) {
            Ok(e) => Cell::Val(A::Energy(e)),
            Err(_) => Cell::Top,
        },
        (BinOp::Lt, A::Num(x), A::Num(y)) => Cell::Val(A::Bool(cmp_lt(x, y))),
        (BinOp::Le, A::Num(x), A::Num(y)) => Cell::Val(A::Bool(cmp_le(x, y))),
        (BinOp::Gt, A::Num(x), A::Num(y)) => Cell::Val(A::Bool(cmp_lt(y, x))),
        (BinOp::Ge, A::Num(x), A::Num(y)) => Cell::Val(A::Bool(cmp_le(y, x))),
        (BinOp::Eq, A::Num(x), A::Num(y)) => {
            Cell::Val(A::Bool(if x.is_point() && y.is_point() && x.lo == y.lo {
                AbsBool::True
            } else if x.hi < y.lo || y.hi < x.lo {
                AbsBool::False
            } else {
                AbsBool::Unknown
            }))
        }
        _ => Cell::Top,
    }
}

fn cmp_lt(x: &Interval, y: &Interval) -> AbsBool {
    if x.hi < y.lo {
        AbsBool::True
    } else if x.lo >= y.hi {
        AbsBool::False
    } else {
        AbsBool::Unknown
    }
}

fn cmp_le(x: &Interval, y: &Interval) -> AbsBool {
    if x.hi <= y.lo {
        AbsBool::True
    } else if x.lo > y.hi {
        AbsBool::False
    } else {
        AbsBool::Unknown
    }
}

/// Abstract pure builtins; `Top` for anything that could error or that the
/// domain does not model.
fn abs_builtin(b: Builtin, args: &[&Cell]) -> Cell {
    let num = |i: usize| args.get(i).and_then(|c| c.num());
    let val = |i: Interval| Cell::Val(AbsValue::Num(i));
    match b {
        Builtin::Min => match (num(0), num(1)) {
            (Some(x), Some(y)) => val(Interval::new(x.lo.min(y.lo), x.hi.min(y.hi))),
            _ => Cell::Top,
        },
        Builtin::Max => match (num(0), num(1)) {
            (Some(x), Some(y)) => val(Interval::new(x.lo.max(y.lo), x.hi.max(y.hi))),
            _ => Cell::Top,
        },
        Builtin::Abs => match num(0) {
            Some(x) => {
                let lo = if x.contains(0.0) {
                    0.0
                } else {
                    x.lo.abs().min(x.hi.abs())
                };
                val(Interval::new(lo, x.lo.abs().max(x.hi.abs())))
            }
            None => Cell::Top,
        },
        Builtin::Sqrt => match num(0) {
            Some(x) if x.lo >= 0.0 => val(x.map_monotone(f64::sqrt)),
            _ => Cell::Top,
        },
        Builtin::Floor => num(0).map_or(Cell::Top, |x| val(x.map_monotone(f64::floor))),
        Builtin::Ceil => num(0).map_or(Cell::Top, |x| val(x.map_monotone(f64::ceil))),
        Builtin::Round => num(0).map_or(Cell::Top, |x| val(x.map_monotone(f64::round))),
        Builtin::Exp => num(0).map_or(Cell::Top, |x| val(x.map_monotone(f64::exp))),
        Builtin::Ln => match num(0) {
            Some(x) if x.lo > 0.0 => val(x.map_monotone(f64::ln)),
            _ => Cell::Top,
        },
        Builtin::Log2 => match num(0) {
            Some(x) if x.lo > 0.0 => val(x.map_monotone(f64::log2)),
            _ => Cell::Top,
        },
        Builtin::Pow => match (num(0), num(1)) {
            (Some(x), Some(e)) if e.is_point() && e.lo >= 0.0 && e.lo.fract() == 0.0 => {
                match u32::try_from(e.lo as u64) {
                    Ok(k) if f64::from(k) == e.lo => val(x.powi(k)),
                    _ => Cell::Top,
                }
            }
            _ => Cell::Top,
        },
        _ => Cell::Top,
    }
}

/// True when two abstract results provably share no concrete value —
/// which, for two sound analyses of the same function, proves a bug.
fn disjoint(a: &AbsValue, b: &AbsValue) -> bool {
    match (a, b) {
        (AbsValue::Num(x), AbsValue::Num(y)) => x.hi < y.lo || y.hi < x.lo,
        (AbsValue::Bool(x), AbsValue::Bool(y)) => {
            matches!(
                (x, y),
                (AbsBool::True, AbsBool::False) | (AbsBool::False, AbsBool::True)
            )
        }
        (AbsValue::Energy(x), AbsValue::Energy(y)) => {
            let zero = Interval::point(0.0);
            if x.joules.hi < y.joules.lo || y.joules.hi < x.joules.lo {
                return true;
            }
            for u in x.abstracts.keys().chain(y.abstracts.keys()) {
                let xi = x.abstracts.get(u).unwrap_or(&zero);
                let yi = y.abstracts.get(u).unwrap_or(&zero);
                if xi.hi < yi.lo || yi.hi < xi.lo {
                    return true;
                }
            }
            false
        }
        (AbsValue::Record(x), AbsValue::Record(y)) => x
            .iter()
            .any(|(k, vx)| y.get(k).is_some_and(|vy| disjoint(vx, vy))),
        // Differing shapes cannot describe the same concrete value.
        _ => true,
    }
}

/// Renders a failure list as stable, sorted text (one line per failure).
pub fn render_errors(errs: &[VerifyError]) -> String {
    let mut lines: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
    lines.sort();
    lines.join("\n")
}

// The ecv-name map used by `verify_against` needs `BTreeMap` in scope for
// rustdoc links only; keep the import used.
#[allow(unused)]
type _EcvMap = BTreeMap<String, ()>;
