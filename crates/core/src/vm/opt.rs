//! Verifier-gated dataflow optimization over compiled chunks.
//!
//! Four classic passes — constant propagation, copy propagation,
//! common-subexpression elimination on pure builtins, and dead-register
//! elimination — specialized to one hard constraint: **observational
//! equivalence with the tree-walk interpreter must stay bit-exact**,
//! including error variants and messages, Monte-Carlo statistics, fuel
//! exhaustion boundaries, and telemetry trace bytes.
//!
//! The fuel stream is the sharp edge. [`super::lower`] assigns each
//! instruction the number of interpreter fuel debits since the previous
//! instruction, and the executor charges `fuel[pc]` *before* executing
//! `pc`; the exact budget at which a program flips from `FuelExhausted`
//! to a value is part of the observable contract. Every pass therefore
//! rewrites instructions **in place** — never inserting, deleting, or
//! reordering — so `fuel` (and `code.len()`) are byte-identical before
//! and after optimization; cheapened instructions still charge their
//! original weight. "Elimination" means rewriting to [`Instr::Nop`] or a
//! cheaper equivalent, not removal.
//!
//! Equally sharp: **errors are effects**. An instruction that could error
//! at runtime (`Bin` on a division, `Field` on a non-record, any
//! `Call`/`CallBuiltin`) is only rewritten when the fold *succeeds* at
//! compile time on known constant operands — a failed fold leaves the
//! instruction untouched so the runtime error (and which error fires
//! first) matches the oracle exactly. Dead-register elimination Nop-ifies
//! only instructions that can never error (`Const`, and `Copy` from a
//! must-defined source).
//!
//! Every pass output is re-checked by [`super::verify`] plus a
//! fuel-stream identity assertion; a pass that produces an unverifiable
//! chunk is discarded wholesale (fail-safe to the unoptimized code).
//! [`optimize`] finally recomputes the program fingerprint, so optimized
//! and unoptimized artifacts never collide in the eval cache.

use std::collections::{BTreeSet, HashMap};

use crate::ast::UnOp;
use crate::interp::{eval_binary, eval_builtin, eval_unary};
use crate::value::Value;

use super::chunk::{fingerprint_program, Chunk, Instr, Program};
use super::lower::bit_eq;
use super::verify::{arg_window, must_defined, successors, verify, writes_of};

/// Optimizes every chunk of `program`, returning a new program with
/// byte-identical `code.len()` / `fuel` streams and a fresh fingerprint.
///
/// Each pass is verified before being committed; a pass that fails
/// verification (which would indicate a bug here) is dropped and the
/// previous code kept, so the result is always at least as correct as the
/// input.
pub fn optimize(program: &Program) -> Program {
    let mut p = program.clone();
    // Two rounds: the first dead-elim can expose more constant/copy
    // propagation (e.g. a CSE'd builtin feeding a now-dead copy chain).
    for _ in 0..2 {
        for pass in [
            Pass::ConstProp,
            Pass::CopyProp,
            Pass::Cse,
            Pass::CopyProp,
            Pass::DeadElim,
        ] {
            let mut candidate = p.clone();
            let mut changed = false;
            for chunk in &mut candidate.chunks {
                changed |= pass.run(chunk, &p.symbols);
            }
            if !changed {
                continue;
            }
            if committable(&p, &candidate) {
                p = candidate;
            } else {
                debug_assert!(false, "optimization pass {pass:?} broke verification");
            }
        }
    }
    p.fingerprint = fingerprint_program(&p);
    p
}

/// A candidate is committable when its shape is untouched (same code and
/// fuel bytes per chunk) and it still verifies.
fn committable(before: &Program, after: &Program) -> bool {
    let shape_ok =
        before.chunks.len() == after.chunks.len()
            && before.chunks.iter().zip(&after.chunks).all(|(b, a)| {
                b.code.len() == a.code.len() && b.fuel == a.fuel && b.n_regs == a.n_regs
            });
    shape_ok && verify(after).is_ok()
}

#[derive(Debug, Clone, Copy)]
enum Pass {
    ConstProp,
    CopyProp,
    Cse,
    DeadElim,
}

impl Pass {
    fn run(self, chunk: &mut Chunk, symbols: &[String]) -> bool {
        match self {
            Pass::ConstProp => const_prop(chunk, symbols),
            Pass::CopyProp => copy_prop(chunk),
            Pass::Cse => cse(chunk),
            Pass::DeadElim => dead_elim(chunk),
        }
    }
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

/// Per-register constantness lattice for the must-constant dataflow.
#[derive(Clone)]
enum CCell {
    /// Unvisited (top of the meet lattice).
    Any,
    /// Definitely this value on every path.
    Const(Value),
    /// Written, but not a single known constant.
    Varies,
}

impl CCell {
    fn meet(&self, o: &CCell) -> CCell {
        match (self, o) {
            (CCell::Any, x) | (x, CCell::Any) => x.clone(),
            (CCell::Const(a), CCell::Const(b)) if bit_eq(a, b) => CCell::Const(a.clone()),
            _ => CCell::Varies,
        }
    }
}

/// Forward must-constant analysis + interpreter-kernel folding. An
/// instruction is rewritten only when all its operands are known constants
/// *and* the interpreter kernel evaluates them without error.
fn const_prop(chunk: &mut Chunk, symbols: &[String]) -> bool {
    let len = chunk.code.len();
    let ins = constant_states(chunk);
    let mut rewrites: Vec<(usize, Instr)> = Vec::new();
    let mut new_consts: Vec<Value> = Vec::new();

    // Interns `v` in the (logical) const pool: existing entries first,
    // then entries added by this pass.
    let intern = |consts: &[Value], new_consts: &mut Vec<Value>, v: Value| -> u32 {
        if let Some(i) = consts.iter().position(|c| bit_eq(c, &v)) {
            return i as u32;
        }
        if let Some(i) = new_consts.iter().position(|c| bit_eq(c, &v)) {
            return (consts.len() + i) as u32;
        }
        new_consts.push(v);
        (consts.len() + new_consts.len() - 1) as u32
    };

    for (pc, state) in ins.iter().enumerate().take(len) {
        let Some(state) = state else { continue };
        let known = |r: u32| match &state[r as usize] {
            CCell::Const(v) => Some(v.clone()),
            _ => None,
        };
        let folded: Option<(u32, Value)> = match &chunk.code[pc] {
            // A copy of a known constant becomes a (re-)materialization.
            Instr::Copy { dst, src } => known(*src).map(|v| (*dst, v)),
            Instr::Neg { dst, src } => known(*src)
                .and_then(|v| eval_unary(UnOp::Neg, v).ok())
                .map(|v| (*dst, v)),
            Instr::Not { dst, src } => known(*src)
                .and_then(|v| eval_unary(UnOp::Not, v).ok())
                .map(|v| (*dst, v)),
            Instr::Bin { op, dst, a, b } => match (known(*a), known(*b)) {
                (Some(x), Some(y)) => eval_binary(*op, x, y).ok().map(|v| (*dst, v)),
                _ => None,
            },
            Instr::AsBool { dst, src } => known(*src)
                .and_then(|v| v.as_bool().ok().map(Value::Bool))
                .map(|v| (*dst, v)),
            Instr::Field { dst, src, sym } => known(*src)
                .and_then(|v| v.field(&symbols[*sym as usize]).ok().cloned())
                .map(|v| (*dst, v)),
            // `Builtin` is emitted only where the lowering proved the call
            // depth irrelevant; `eval_builtin` is pure, so a successful
            // fold is exact. `CallBuiltin` checks the dynamic stack depth
            // first and is never folded.
            Instr::Builtin { b, dst, base, n } => {
                let args: Option<Vec<Value>> = (*base..*base + *n).map(known).collect();
                args.and_then(|a| eval_builtin(*b, &a).ok())
                    .map(|v| (*dst, v))
            }
            _ => None,
        };
        if let Some((dst, v)) = folded {
            let k = intern(&chunk.consts, &mut new_consts, v);
            let instr = Instr::Const { dst, k };
            if chunk.code[pc] != instr {
                rewrites.push((pc, instr));
            }
        }
    }
    chunk.consts.extend(new_consts);
    let changed = !rewrites.is_empty();
    for (pc, instr) in rewrites {
        chunk.code[pc] = instr;
    }
    changed
}

/// Computes the per-pc must-constant states (`None` = unreachable).
fn constant_states(chunk: &Chunk) -> Vec<Option<Vec<CCell>>> {
    let len = chunk.code.len();
    let mut ins: Vec<Option<Vec<CCell>>> = vec![None; len];
    let mut entry = vec![CCell::Any; chunk.n_regs as usize];
    for r in 0..chunk.arity {
        entry[r as usize] = CCell::Varies;
    }
    ins[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let mut out = ins[pc].clone().expect("worklist entries are reachable");
        let instr = &chunk.code[pc];
        match instr {
            Instr::Const { dst, k } => {
                out[*dst as usize] = CCell::Const(chunk.consts[*k as usize].clone());
            }
            Instr::Copy { dst, src } => {
                out[*dst as usize] = match &out[*src as usize] {
                    CCell::Const(v) => CCell::Const(v.clone()),
                    _ => CCell::Varies,
                };
            }
            _ => {
                for r in writes_of(instr) {
                    out[r as usize] = CCell::Varies;
                }
            }
        }
        for succ in successors(instr, pc) {
            match &mut ins[succ] {
                None => {
                    ins[succ] = Some(out.clone());
                    work.push(succ);
                }
                Some(cur) => {
                    let mut changed = false;
                    for (c, n) in cur.iter_mut().zip(&out) {
                        let m = c.meet(n);
                        let differs = !matches!(
                            (&m, &*c),
                            (CCell::Any, CCell::Any)
                                | (CCell::Varies, CCell::Varies)
                                | (CCell::Const(_), CCell::Const(_))
                        ) || matches!((&m, &*c), (CCell::Const(a), CCell::Const(b)) if !bit_eq(a, b));
                        if differs {
                            *c = m;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(succ);
                    }
                }
            }
        }
    }
    ins
}

// ---------------------------------------------------------------------------
// Copy propagation
// ---------------------------------------------------------------------------

/// Forward available-copies analysis: a pair `(d, s)` is available at a pc
/// when `Copy {d, s}` executed on every path and neither register has been
/// written since. Read operands of `d` are then rewritten to `s`.
fn copy_prop(chunk: &mut Chunk) -> bool {
    type Copies = BTreeSet<(u32, u32)>;
    let len = chunk.code.len();
    let mut ins: Vec<Option<Copies>> = vec![None; len];
    ins[0] = Some(Copies::new());
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let mut out = ins[pc].clone().expect("worklist entries are reachable");
        let instr = &chunk.code[pc];
        // Kill pairs touching any written register. `ForTest` writes its
        // variable on the fall-through edge only; killing on both edges is
        // conservative and sound.
        let mut written = writes_of(instr);
        if let Instr::ForTest { var, .. } = instr {
            written.push(*var);
        }
        out.retain(|(d, s)| !written.contains(d) && !written.contains(s));
        if let Instr::Copy { dst, src } = instr {
            if dst != src {
                out.insert((*dst, *src));
            }
        }
        for succ in successors(instr, pc) {
            match &mut ins[succ] {
                None => {
                    ins[succ] = Some(out.clone());
                    work.push(succ);
                }
                Some(cur) => {
                    let n = cur.len();
                    cur.retain(|p| out.contains(p));
                    if cur.len() != n {
                        work.push(succ);
                    }
                }
            }
        }
    }

    let mut changed = false;
    for (pc, avail) in ins.iter().enumerate().take(len) {
        let Some(avail) = avail else { continue };
        // Deterministic: substitute the smallest available source.
        let subst = |r: u32| -> u32 {
            avail
                .iter()
                .filter(|(d, _)| *d == r)
                .map(|(_, s)| *s)
                .min()
                .unwrap_or(r)
        };
        // Only plain value reads are rewritten. Argument windows are
        // positional (the callee reads fixed slots); `Check*`/`For*`
        // registers carry name/induction semantics and stay put.
        let rewritten = match &chunk.code[pc] {
            Instr::Copy { dst, src } => Some(Instr::Copy {
                dst: *dst,
                src: subst(*src),
            }),
            Instr::Neg { dst, src } => Some(Instr::Neg {
                dst: *dst,
                src: subst(*src),
            }),
            Instr::Not { dst, src } => Some(Instr::Not {
                dst: *dst,
                src: subst(*src),
            }),
            Instr::AsBool { dst, src } => Some(Instr::AsBool {
                dst: *dst,
                src: subst(*src),
            }),
            Instr::Field { dst, src, sym } => Some(Instr::Field {
                dst: *dst,
                src: subst(*src),
                sym: *sym,
            }),
            Instr::Bin { op, dst, a, b } => Some(Instr::Bin {
                op: *op,
                dst: *dst,
                a: subst(*a),
                b: subst(*b),
            }),
            Instr::JumpIfFalse { cond, target } => Some(Instr::JumpIfFalse {
                cond: subst(*cond),
                target: *target,
            }),
            Instr::JumpIfTrue { cond, target } => Some(Instr::JumpIfTrue {
                cond: subst(*cond),
                target: *target,
            }),
            Instr::Return { src } => Some(Instr::Return { src: subst(*src) }),
            _ => None,
        };
        if let Some(instr) = rewritten {
            if chunk.code[pc] != instr {
                chunk.code[pc] = instr;
                changed = true;
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Common-subexpression elimination (pure builtins, per basic block)
// ---------------------------------------------------------------------------

/// Local value numbering within basic blocks. A repeated pure
/// [`Instr::Builtin`] whose argument value numbers match an earlier one —
/// and whose result register still holds that value — is rewritten to a
/// `Copy` from the earlier result. Sound because `eval_builtin` is pure
/// and deterministic: if the first occurrence errored, the second is
/// unreachable; if it succeeded, the values are bit-identical.
/// `CallBuiltin` (dynamic depth check) is never touched.
fn cse(chunk: &mut Chunk) -> bool {
    let len = chunk.code.len();
    // Block leaders: entry, every jump target, every fall-through after a
    // branching or terminating instruction.
    let mut leader = vec![false; len];
    leader[0] = true;
    for (pc, instr) in chunk.code.iter().enumerate() {
        let succs = successors(instr, pc);
        if succs.len() != 1 || succs[0] != pc + 1 {
            for s in succs {
                leader[s] = true;
            }
            if pc + 1 < len {
                leader[pc + 1] = true;
            }
        }
    }

    let mut changed = false;
    let mut next_vn = 0u64;
    // Per-block state, reset at leaders.
    let mut reg_vn: HashMap<u32, u64> = HashMap::new();
    let mut const_vn: HashMap<u32, u64> = HashMap::new();
    let mut expr_holder: HashMap<(&'static str, Vec<u64>), (u32, u64)> = HashMap::new();

    for (pc, &is_leader) in leader.iter().enumerate().take(len) {
        if is_leader {
            reg_vn.clear();
            const_vn.clear();
            expr_holder.clear();
        }
        let mut fresh = || {
            next_vn += 1;
            next_vn
        };
        match chunk.code[pc].clone() {
            Instr::Const { dst, k } => {
                let vn = *const_vn.entry(k).or_insert_with(&mut fresh);
                reg_vn.insert(dst, vn);
            }
            Instr::Copy { dst, src } => {
                let vn = *reg_vn.entry(src).or_insert_with(&mut fresh);
                reg_vn.insert(dst, vn);
            }
            Instr::Builtin { b, dst, base, n } => {
                let arg_vns: Vec<u64> = (base..base + n)
                    .map(|r| *reg_vn.entry(r).or_insert_with(&mut fresh))
                    .collect();
                let key = (b.name(), arg_vns);
                match expr_holder.get(&key) {
                    Some(&(holder, vn)) if holder != dst && reg_vn.get(&holder) == Some(&vn) => {
                        chunk.code[pc] = Instr::Copy { dst, src: holder };
                        changed = true;
                        reg_vn.insert(dst, vn);
                    }
                    _ => {
                        let vn = fresh();
                        reg_vn.insert(dst, vn);
                        expr_holder.insert(key, (dst, vn));
                    }
                }
            }
            instr => {
                for r in writes_of(&instr) {
                    reg_vn.insert(r, fresh());
                }
                if let Instr::ForTest { var, .. } = instr {
                    reg_vn.insert(var, fresh());
                }
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Dead-register elimination
// ---------------------------------------------------------------------------

/// Backward liveness; Nop-ifies writes whose destination is dead — but
/// **only** for instructions with no other observable effect: `Const`
/// (never errors) and `Copy` from a must-defined source (a copy from a
/// possibly-unwritten register may raise `Unresolved` and must stay).
fn dead_elim(chunk: &mut Chunk) -> bool {
    let len = chunk.code.len();
    // live_in[pc]: registers read at or after pc on some path.
    let mut live_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); len];
    // Predecessor map for the backward traversal.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); len];
    for (pc, instr) in chunk.code.iter().enumerate() {
        for s in successors(instr, pc) {
            preds[s].push(pc);
        }
    }
    let mut work: Vec<usize> = (0..len).collect();
    while let Some(pc) = work.pop() {
        let instr = &chunk.code[pc];
        let mut live: BTreeSet<u32> = BTreeSet::new();
        for s in successors(instr, pc) {
            live.extend(live_in[s].iter().copied());
        }
        // Defs kill liveness — except `ForTest`'s conditional write.
        if !matches!(instr, Instr::ForTest { .. }) {
            for r in writes_of(instr) {
                live.remove(&r);
            }
        }
        // Uses generate liveness (argument windows and checks included —
        // this analysis is about reads of any kind).
        match instr {
            Instr::Copy { src, .. }
            | Instr::Field { src, .. }
            | Instr::Neg { src, .. }
            | Instr::Not { src, .. }
            | Instr::AsBool { src, .. }
            | Instr::CheckVar { src }
            | Instr::CheckNum { src }
            | Instr::Return { src } => {
                live.insert(*src);
            }
            Instr::Bin { a, b, .. } => {
                live.insert(*a);
                live.insert(*b);
            }
            Instr::JumpIfFalse { cond, .. } | Instr::JumpIfTrue { cond, .. } => {
                live.insert(*cond);
            }
            Instr::ForInit { from, to, .. } => {
                live.insert(*from);
                live.insert(*to);
            }
            Instr::ForTest { i, to, .. } => {
                live.insert(*i);
                live.insert(*to);
            }
            Instr::ForStep { i, .. } => {
                live.insert(*i);
            }
            _ => {}
        }
        if let Some((base, n)) = arg_window(instr) {
            live.extend(base..base + n);
        }
        if live != live_in[pc] {
            live_in[pc] = live;
            work.extend(preds[pc].iter().copied());
        }
    }

    let defined = must_defined(chunk);
    let mut changed = false;
    for (pc, def) in defined.iter().enumerate().take(len) {
        let dead_dst = |dst: u32| {
            !successors(&chunk.code[pc], pc)
                .iter()
                .any(|&s| live_in[s].contains(&dst))
        };
        let nop = match &chunk.code[pc] {
            Instr::Const { dst, .. } => dead_dst(*dst),
            Instr::Copy { dst, src } => {
                dead_dst(*dst) && def.as_ref().is_some_and(|d| d.get(*src))
            }
            _ => false,
        };
        if nop {
            chunk.code[pc] = Instr::Nop;
            changed = true;
        }
    }
    changed
}
