//! The register-machine executor.
//!
//! A [`Vm`] holds the mutable run state for one compiled [`Program`]: a
//! flat register stack (frames are contiguous windows addressed by a base
//! offset), a parallel stack of while-loop trip counters, the resolved
//! ECV slots for the current sample, and the fuel budget. The instance is
//! designed to be **reused across samples** — `run` resets per-call state
//! but keeps the allocations, which is where most of the Monte-Carlo
//! speedup over the tree-walk comes from.
//!
//! Semantics are defined by the tree-walk interpreter in
//! [`crate::interp`]: every arithmetic case, error variant, error message,
//! and fuel-exhaustion boundary must match it bit for bit (the
//! differential suites in `tests/vm_differential.rs` and
//! `tests/vm_errors.rs` enforce this). Arithmetic therefore *calls the
//! interpreter's own* `eval_unary`/`eval_binary`/`eval_builtin` rather
//! than reimplementing them — the VM removes dispatch overhead, not
//! semantics.

use std::collections::BTreeMap;

use crate::ast::UnOp;
use crate::ecv::EcvValue;
use crate::error::{Error, NameKind, Result};
use crate::interp::{self, EvalConfig};
use crate::value::Value;

use super::chunk::{Chunk, Instr, Program};

/// Reusable execution state for one compiled program.
pub struct Vm<'p> {
    program: &'p Program,
    /// Flat register stack; each active frame owns a contiguous window.
    /// `None` marks a named local that has not been written yet.
    regs: Vec<Option<Value>>,
    /// Flat while-counter stack, windowed like `regs`.
    counters: Vec<u64>,
    /// Resolved ECV slots for the current sample (`None` = not assigned).
    ecvs: Vec<Option<Value>>,
    /// Scratch buffer for builtin argument vectors (kept to avoid
    /// reallocating per call).
    scratch: Vec<Value>,
    fuel: u64,
    fuel_limit: u64,
    max_depth: usize,
}

impl<'p> Vm<'p> {
    /// Creates an executor for `program` with empty state.
    pub fn new(program: &'p Program) -> Vm<'p> {
        Vm {
            program,
            regs: Vec::new(),
            counters: Vec::new(),
            ecvs: vec![None; program.ecv_names.len()],
            scratch: Vec::new(),
            fuel: 0,
            fuel_limit: 0,
            max_depth: 0,
        }
    }

    /// Fuel consumed by the most recent [`Vm::run`] call.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_limit - self.fuel
    }

    /// Evaluates `func(args)` under `assignment`, mirroring the
    /// interpreter's entry dispatch (`Eval::call` at depth 0) exactly.
    pub fn run(
        &mut self,
        func: &str,
        args: &[Value],
        assignment: &BTreeMap<String, EcvValue>,
        config: &EvalConfig,
    ) -> Result<Value> {
        self.fuel = config.fuel;
        self.fuel_limit = config.fuel;
        self.max_depth = config.max_depth;
        for (slot, name) in self.ecvs.iter_mut().zip(&self.program.ecv_names) {
            *slot = assignment.get(name).map(|v| match v {
                EcvValue::Bool(b) => Value::Bool(*b),
                EcvValue::Num(n) => Value::Num(*n),
            });
        }
        self.regs.clear();
        self.counters.clear();

        if let Some(&fid) = self.program.fn_ids.get(func) {
            let chunk = &self.program.chunks[fid as usize];
            if chunk.arity as usize != args.len() {
                return Err(Error::Arity {
                    func: chunk.name.clone(),
                    expected: chunk.arity as usize,
                    got: args.len(),
                });
            }
            let n_regs = chunk.n_regs as usize;
            let n_counters = chunk.n_counters as usize;
            self.regs.extend(args.iter().cloned().map(Some));
            self.regs.resize(n_regs, None);
            self.counters.resize(n_counters, 0);
            self.exec(fid, 0, 0, 0)
        } else if let Some(b) = crate::ast::Builtin::from_name(func) {
            interp::eval_builtin(b, args)
        } else if self.program.externs.contains(func) {
            Err(Error::Link {
                msg: format!(
                    "extern `{func}` is not linked; \
                     compose this interface with a provider first"
                ),
            })
        } else {
            Err(Error::Unresolved {
                kind: NameKind::Function,
                name: func.to_string(),
            })
        }
    }

    /// The name a register read should report in `Unresolved` errors.
    fn reg_name(&self, chunk: &Chunk, r: u32) -> String {
        chunk.reg_names[r as usize]
            .map(|s| self.program.symbols[s as usize].clone())
            .unwrap_or_else(|| "?".to_string())
    }

    /// Reads register `base + r`, cloning the value.
    fn rd(&self, chunk: &Chunk, base: u32, r: u32) -> Result<Value> {
        match &self.regs[(base + r) as usize] {
            Some(v) => Ok(v.clone()),
            None => Err(Error::Unresolved {
                kind: NameKind::Variable,
                name: self.reg_name(chunk, r),
            }),
        }
    }

    /// Reads register `base + r` by reference (no clone).
    fn rd_ref(&self, chunk: &Chunk, base: u32, r: u32) -> Result<&Value> {
        match &self.regs[(base + r) as usize] {
            Some(v) => Ok(v),
            None => Err(Error::Unresolved {
                kind: NameKind::Variable,
                name: self.reg_name(chunk, r),
            }),
        }
    }

    fn wr(&mut self, base: u32, r: u32, v: Value) {
        self.regs[(base + r) as usize] = Some(v);
    }

    /// Collects `regs[base+abase .. base+abase+n]` into the scratch
    /// buffer and applies `f`. Argument slots are always written by the
    /// lowering before the call instruction, so reads cannot fail.
    fn with_args<T>(
        &mut self,
        base: u32,
        abase: u32,
        n: u32,
        f: impl FnOnce(&Self, &[Value]) -> Result<T>,
    ) -> Result<T> {
        let mut args = std::mem::take(&mut self.scratch);
        args.clear();
        let lo = (base + abase) as usize;
        for j in lo..lo + n as usize {
            args.push(self.regs[j].clone().expect("argument slot written"));
        }
        let res = f(self, &args);
        args.clear();
        self.scratch = args;
        res
    }

    /// Runs chunk `fid` with its frame at `base`/`cbase`, at call depth
    /// `depth`.
    fn exec(&mut self, fid: u32, base: u32, cbase: u32, depth: usize) -> Result<Value> {
        let program = self.program;
        let chunk = &program.chunks[fid as usize];
        let mut pc = 0usize;
        loop {
            // Static fuel debit: `fuel[pc]` is the number of burns the
            // interpreter performs between the previous instruction and
            // this one, so exhaustion fires at the same boundary.
            let w = chunk.fuel[pc];
            if w > 0 {
                if w > self.fuel {
                    self.fuel = 0;
                    return Err(Error::FuelExhausted {
                        limit: self.fuel_limit,
                    });
                }
                self.fuel -= w;
            }
            match &chunk.code[pc] {
                Instr::Nop => {}
                Instr::Const { dst, k } => {
                    self.wr(base, *dst, chunk.consts[*k as usize].clone());
                }
                Instr::Copy { dst, src } => {
                    let v = self.rd(chunk, base, *src)?;
                    self.wr(base, *dst, v);
                }
                Instr::Ecv { dst, e } => match &self.ecvs[*e as usize] {
                    Some(v) => {
                        let v = v.clone();
                        self.wr(base, *dst, v);
                    }
                    None => {
                        return Err(Error::Unresolved {
                            kind: NameKind::Ecv,
                            name: program.ecv_names[*e as usize].clone(),
                        })
                    }
                },
                Instr::Field { dst, src, sym } => {
                    let b = self.rd_ref(chunk, base, *src)?;
                    let v = b.field(&program.symbols[*sym as usize])?.clone();
                    self.wr(base, *dst, v);
                }
                Instr::Neg { dst, src } => {
                    let v = self.rd(chunk, base, *src)?;
                    let r = interp::eval_unary(UnOp::Neg, v)?;
                    self.wr(base, *dst, r);
                }
                Instr::Not { dst, src } => {
                    let v = self.rd(chunk, base, *src)?;
                    let r = interp::eval_unary(UnOp::Not, v)?;
                    self.wr(base, *dst, r);
                }
                Instr::Bin { op, dst, a, b } => {
                    let va = self.rd(chunk, base, *a)?;
                    let vb = self.rd(chunk, base, *b)?;
                    let r = interp::eval_binary(*op, va, vb)?;
                    self.wr(base, *dst, r);
                }
                Instr::AsBool { dst, src } => {
                    let b = self.rd_ref(chunk, base, *src)?.as_bool()?;
                    self.wr(base, *dst, Value::Bool(b));
                }
                Instr::CheckVar { src } => {
                    self.rd_ref(chunk, base, *src)?;
                }
                Instr::CheckNum { src } => {
                    self.rd_ref(chunk, base, *src)?.as_num()?;
                }
                Instr::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Instr::JumpIfFalse { cond, target } => {
                    if !self.rd_ref(chunk, base, *cond)?.as_bool()? {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::JumpIfTrue { cond, target } => {
                    if self.rd_ref(chunk, base, *cond)?.as_bool()? {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::Builtin {
                    b,
                    dst,
                    base: abase,
                    n,
                } => {
                    let r =
                        self.with_args(base, *abase, *n, |_, args| interp::eval_builtin(*b, args))?;
                    self.wr(base, *dst, r);
                }
                Instr::CallBuiltin {
                    b,
                    dst,
                    base: abase,
                    n,
                } => {
                    if depth + 1 > self.max_depth {
                        return Err(Error::StackOverflow {
                            limit: self.max_depth,
                        });
                    }
                    let r =
                        self.with_args(base, *abase, *n, |_, args| interp::eval_builtin(*b, args))?;
                    self.wr(base, *dst, r);
                }
                Instr::Call {
                    f,
                    dst,
                    base: abase,
                    n,
                } => {
                    if depth + 1 > self.max_depth {
                        return Err(Error::StackOverflow {
                            limit: self.max_depth,
                        });
                    }
                    let callee = &program.chunks[*f as usize];
                    let new_base = self.regs.len() as u32;
                    let lo = (base + abase) as usize;
                    for j in 0..*n as usize {
                        let v = self.regs[lo + j].clone();
                        self.regs.push(v);
                    }
                    self.regs
                        .resize(new_base as usize + callee.n_regs as usize, None);
                    let new_cbase = self.counters.len() as u32;
                    self.counters
                        .resize(new_cbase as usize + callee.n_counters as usize, 0);
                    let r = self.exec(*f, new_base, new_cbase, depth + 1);
                    self.regs.truncate(new_base as usize);
                    self.counters.truncate(new_cbase as usize);
                    let v = r?;
                    self.wr(base, *dst, v);
                }
                Instr::ForInit { i, from, to } => {
                    let fr = self.rd_ref(chunk, base, *from)?.as_num()?;
                    let tv = self.rd_ref(chunk, base, *to)?.as_num()?;
                    if !fr.is_finite() || !tv.is_finite() {
                        return Err(Error::NonFinite {
                            context: "for-loop bounds".to_string(),
                        });
                    }
                    self.wr(base, *i, Value::Num(fr.floor()));
                }
                Instr::ForTest { i, to, var, exit } => {
                    let iv = self.rd_ref(chunk, base, *i)?.as_num()?;
                    let tv = self.rd_ref(chunk, base, *to)?.as_num()?;
                    if iv < tv {
                        self.wr(base, *var, Value::Num(iv));
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Instr::ForStep { i, back } => {
                    let iv = self.rd_ref(chunk, base, *i)?.as_num()?;
                    self.wr(base, *i, Value::Num(iv + 1.0));
                    pc = *back as usize;
                    continue;
                }
                Instr::ResetTrips { c } => {
                    self.counters[(cbase + c) as usize] = 0;
                }
                Instr::WhileGuard { c, bound } => {
                    let trips = &mut self.counters[(cbase + c) as usize];
                    if *trips >= *bound {
                        return Err(Error::BoundExceeded { bound: *bound });
                    }
                    *trips += 1;
                }
                Instr::Return { src } => {
                    return self.rd(chunk, base, *src);
                }
                Instr::Trap { t } => {
                    return Err(chunk.traps[*t as usize].clone());
                }
                Instr::TrapCall { t } => {
                    if depth + 1 > self.max_depth {
                        return Err(Error::StackOverflow {
                            limit: self.max_depth,
                        });
                    }
                    return Err(chunk.traps[*t as usize].clone());
                }
                Instr::FellOff => {
                    return Err(Error::Type {
                        expected: "a return value",
                        got: format!("function `{}` fell off the end", chunk.name),
                    });
                }
            }
            pc += 1;
        }
    }
}
