//! The compiled program: chunk arena, register instructions, and interned
//! tables.
//!
//! A [`Program`] is a flat arena of [`Chunk`]s — one per interface function,
//! indexed by a dense `u32` id in the interface's (deterministic) function
//! order. Every name the executor could ever need at runtime is interned at
//! compile time: variable/field names into [`Program::symbols`], ECV names
//! into [`Program::ecv_names`] (the per-sample lookup slots), and the
//! abstract-unit universe into [`Program::units`] (the calibration slots a
//! driver resolves once per query). Instructions address registers by slot
//! index; no map lookup survives into the hot loop.
//!
//! ## Fuel
//!
//! The tree-walk interpreter burns one unit of fuel per AST node visited,
//! per statement executed, and per loop iteration. The VM must exhaust fuel
//! at exactly the same evaluation points (the fuel histogram is part of the
//! telemetry trace, and `FuelExhausted` boundaries are observable), so each
//! instruction carries a static fuel weight in [`Chunk::fuel`]: the number
//! of burns the interpreter would have performed since the previous
//! instruction. Summing weights along any executed path reproduces the
//! interpreter's burn count exactly — including for constant-folded
//! subtrees, whose whole node count is charged as a lump on the folded
//! `Const`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, Builtin};
use crate::error::Error;
use crate::value::Value;

/// One register instruction.
///
/// All register operands are frame-relative slot indices. `dst` is always
/// written exactly once, as the final effect of the instruction, so an
/// instruction may safely use its destination as a source (`x = x + 1`
/// compiles to a single `Bin` with `dst == a`).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// No-op carrier for fuel that must be charged once before a loop head.
    Nop,
    /// `dst = consts[k]`.
    Const { dst: u32, k: u32 },
    /// `dst = regs[src]`; errors `Unresolved` if `src` was never written.
    Copy { dst: u32, src: u32 },
    /// `dst = ecvs[e]`; errors `Unresolved` if the assignment lacks the ECV.
    Ecv { dst: u32, e: u32 },
    /// `dst = regs[src].field(symbols[sym])`.
    Field { dst: u32, src: u32, sym: u32 },
    /// `dst = -regs[src]` (number or energy).
    Neg { dst: u32, src: u32 },
    /// `dst = !regs[src]` (boolean).
    Not { dst: u32, src: u32 },
    /// `dst = regs[a] <op> regs[b]` via the interpreter's `eval_binary`.
    /// Never `And`/`Or` — those are lowered to jumps.
    Bin { op: BinOp, dst: u32, a: u32, b: u32 },
    /// `dst = Bool(regs[src].as_bool()?)` — the `&&`/`||` result coercion.
    AsBool { dst: u32, src: u32 },
    /// Errors `Unresolved` unless `src` was written (assignment target
    /// check, performed before the right-hand side is evaluated).
    CheckVar { src: u32 },
    /// Errors `Type` unless `src` is a number (for-loop `from`, checked
    /// before `to` is evaluated).
    CheckNum { src: u32 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// `if !regs[cond].as_bool()? { pc = target }`.
    JumpIfFalse { cond: u32, target: u32 },
    /// `if regs[cond].as_bool()? { pc = target }`.
    JumpIfTrue { cond: u32, target: u32 },
    /// `dst = builtin(regs[base..base+n])` — `Expr::BuiltinCall` position,
    /// no depth check (the interpreter performs none there).
    Builtin {
        b: Builtin,
        dst: u32,
        base: u32,
        n: u32,
    },
    /// A builtin reached by *name* through `Expr::Call`: the interpreter
    /// checks call depth before resolving, so this variant does too.
    CallBuiltin {
        b: Builtin,
        dst: u32,
        base: u32,
        n: u32,
    },
    /// Call chunk `f` with arguments in `regs[base..base+n]`.
    Call { f: u32, dst: u32, base: u32, n: u32 },
    /// Validate loop bounds and set `regs[i] = Num(from.floor())`.
    ForInit { i: u32, from: u32, to: u32 },
    /// `if regs[i] < regs[to] { regs[var] = regs[i] } else { pc = exit }`.
    ForTest {
        i: u32,
        to: u32,
        var: u32,
        exit: u32,
    },
    /// `regs[i] += 1.0; pc = back` (back points at the `ForTest`).
    ForStep { i: u32, back: u32 },
    /// `counters[c] = 0` — executed once per `while` statement entry.
    ResetTrips { c: u32 },
    /// Errors `BoundExceeded` when `counters[c] >= bound`, else increments.
    WhileGuard { c: u32, bound: u64 },
    /// Return `regs[src]` from the current chunk.
    Return { src: u32 },
    /// Raise `traps[t]` (lazily reported compile-time-known error).
    Trap { t: u32 },
    /// Depth-check like a call, then raise `traps[t]` — used for unknown
    /// callees, unlinked externs, and fixed-arity mismatches, which the
    /// interpreter reports only after the depth check.
    TrapCall { t: u32 },
    /// Control fell off the end of the function body.
    FellOff,
}

/// One compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Function name (used in arity/fell-off-the-end errors).
    pub name: String,
    /// Number of declared parameters (registers `0..arity`).
    pub arity: u32,
    /// Total register-file size for a frame of this chunk.
    pub n_regs: u32,
    /// Number of while-loop trip counters in a frame of this chunk.
    pub n_counters: u32,
    /// Instruction stream.
    pub code: Vec<Instr>,
    /// Static fuel weight per instruction (same indexing as `code`).
    pub fuel: Vec<u64>,
    /// Constant pool (deduplicated by bit pattern).
    pub consts: Vec<Value>,
    /// Lazily-raised errors referenced by `Trap`/`TrapCall`.
    pub traps: Vec<Error>,
    /// Register → symbol-table id for named locals (`None` for temps).
    pub reg_names: Vec<Option<u32>>,
}

/// A compiled interface: the unit of caching and execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Interface name.
    pub name: String,
    /// Interned strings (variable and field names).
    pub symbols: Vec<String>,
    /// Sorted abstract-unit universe: the calibration slots of this
    /// program (declared units plus any unit literal in a body).
    pub units: Vec<String>,
    /// Sorted ECV names the program reads; `Instr::Ecv` indexes this.
    pub ecv_names: Vec<String>,
    /// Unlinked extern names (calling one raises a `Link` error).
    pub externs: BTreeSet<String>,
    /// Chunk arena, indexed by function id.
    pub chunks: Vec<Chunk>,
    /// Function name → chunk id.
    pub fn_ids: BTreeMap<String, u32>,
    pub(crate) fingerprint: u64,
}

impl Program {
    /// Stable fingerprint of the compiled artifact (code, pools, tables).
    ///
    /// Two programs with the same fingerprint execute identically; the
    /// disassembler prints it, and [`crate::cache::EvalCache`] keys compiled
    /// programs by the *source* interface fingerprint so recompiles can be
    /// cross-checked against this value.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Resolves this program's calibration slots against `cal`: slot `i`
    /// holds the Joule value of `units[i]`, or `None` if uncalibrated.
    pub fn calibration_slots(
        &self,
        cal: &crate::units::Calibration,
    ) -> Vec<Option<crate::units::Energy>> {
        self.units.iter().map(|u| cal.get(u)).collect()
    }
}

// ---------------------------------------------------------------------------
// Fingerprinting (FNV-1a over a canonical byte stream)
// ---------------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Num(n) => {
                self.u32(1);
                self.f64(*n);
            }
            Value::Bool(b) => {
                self.u32(2);
                self.u32(u32::from(*b));
            }
            Value::Energy(e) => {
                self.u32(3);
                self.f64(e.joules);
                self.u64(e.abstracts.len() as u64);
                for (u, a) in &e.abstracts {
                    self.str(u);
                    self.f64(*a);
                }
            }
            Value::Record(r) => {
                self.u32(4);
                self.u64(r.len() as u64);
                for (k, f) in r {
                    self.str(k);
                    self.value(f);
                }
            }
        }
    }
}

pub(crate) fn fingerprint_program(p: &Program) -> u64 {
    let mut h = Fnv::new();
    h.str(&p.name);
    for s in &p.symbols {
        h.str(s);
    }
    for u in &p.units {
        h.str(u);
    }
    for e in &p.ecv_names {
        h.str(e);
    }
    for x in &p.externs {
        h.str(x);
    }
    for c in &p.chunks {
        h.str(&c.name);
        h.u32(c.arity);
        h.u32(c.n_regs);
        h.u32(c.n_counters);
        h.u64(c.code.len() as u64);
        for (i, instr) in c.code.iter().enumerate() {
            h.u64(c.fuel[i]);
            // Debug formatting is stable and covers every operand.
            h.str(&format!("{instr:?}"));
        }
        h.u64(c.consts.len() as u64);
        for v in &c.consts {
            h.value(v);
        }
        h.u64(c.traps.len() as u64);
        for t in &c.traps {
            h.str(&format!("{t:?}"));
        }
        for r in &c.reg_names {
            match r {
                Some(s) => h.u32(*s),
                None => h.u32(u32::MAX),
            }
        }
    }
    h.0
}
