//! Recursive-descent parser for the EIL surface syntax.
//!
//! Grammar (informal):
//!
//! ```text
//! interface  := "interface" ident str? "{" item* "}"
//! item       := "unit" ident ";"
//!             | "ecv" ident ":" dist str? ";"
//!             | "extern" "fn" ident "(" params ")" str? ";"
//!             | "fn" ident "(" params ")" str? block
//! dist       := "bernoulli" "(" num ")" | "uniform" "(" num "," num ")"
//!             | "normal" "(" num "," num ")" | "point" "(" num ")"
//!             | "discrete" "(" num ":" num ("," num ":" num)* ")"
//! block      := "{" stmt* "}"
//! stmt       := "let" ident "=" expr ";" | ident "=" expr ";"
//!             | "if" expr block ("else" (block | ifstmt))?
//!             | "for" ident "in" expr ".." expr block
//!             | "while" expr "bound" num block
//!             | "return" expr ";"
//! expr       := or ; or := and ("||" and)* ; and := cmp ("&&" cmp)*
//! cmp        := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add        := mul (("+"|"-") mul)* ; mul := unary (("*"|"/"|"%") unary)*
//! unary      := ("-"|"!") unary | postfix
//! postfix    := primary ("." ident)*
//! primary    := num unit? | "true" | "false" | ident ("(" args ")")?
//!             | "(" expr ")" | "if" expr "{" expr "}" "else" "{" expr "}"
//! unit       := "J"|"mJ"|"uJ"|"nJ"|"pJ"|"kJ"|"Wh" | declared-unit-name
//! ```
//!
//! Energy literals bind the unit to the number: `5 mJ`, `2 relu`. Declared
//! abstract units must appear (with `unit relu;`) before use.
//!
//! While building the (position-free) AST the parser also records a mirror
//! tree of [`Span`]s — one per declaration, statement, and expression — in
//! the interface's [`SpanTable`], so diagnostics from the [`sema`] lint
//! pass can point at real source coordinates.
//!
//! [`sema`]: crate::sema

use std::collections::BTreeSet;

use crate::ast::{BinOp, Builtin, Expr, ExternDecl, FnDef, Stmt, UnOp};
use crate::ecv::{DistSpec, EcvDecl};
use crate::error::{Error, Result};
use crate::interface::Interface;
use crate::lexer::{lex, Spanned, Tok};
use crate::span::{ExprSpans, FnSpans, Span, StmtSpans};

/// Keywords that cannot be used as identifiers.
pub const KEYWORDS: &[&str] = &[
    "interface",
    "unit",
    "ecv",
    "extern",
    "fn",
    "let",
    "if",
    "else",
    "for",
    "in",
    "while",
    "bound",
    "return",
    "true",
    "false",
];

const ENERGY_SUFFIXES: &[(&str, f64)] = &[
    ("J", 1.0),
    ("mJ", 1e-3),
    ("uJ", 1e-6),
    ("nJ", 1e-9),
    ("pJ", 1e-12),
    ("kJ", 1e3),
    ("Wh", 3600.0),
];

/// Parses a complete `interface` declaration from source text.
pub fn parse_interface(src: &str) -> Result<Interface> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        units: BTreeSet::new(),
    };
    let iface = p.interface()?;
    p.expect_eof()?;
    iface.validate()?;
    Ok(iface)
}

/// Parses a standalone expression (useful for tests and tools).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        units: BTreeSet::new(),
    };
    let (e, _) = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    units: BTreeSet<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1))
    }

    /// The current token's position as a [`Span`].
    fn span_here(&self) -> Span {
        let (line, col) = self.here();
        Span::new(line, col)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (line, col) = self.here();
        Error::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    fn at_eof(&self) -> bool {
        self.pos == self.toks.len()
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(Tok::Ident(s)) => Err(self.err(format!("`{s}` is a keyword"))),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn number(&mut self) -> Result<f64> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Some(Tok::Num(n)) => Ok(if neg { -n } else { n }),
            _ => Err(self.err("expected number")),
        }
    }

    fn opt_doc(&mut self) -> String {
        if let Some(Tok::Str(s)) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            s
        } else {
            String::new()
        }
    }

    fn interface(&mut self) -> Result<Interface> {
        // Unit suffixes are scoped to one interface (relevant for multi-
        // interface files parsed via `parse_all`).
        self.units.clear();
        self.expect_kw("interface")?;
        let name = self.ident()?;
        let mut iface = Interface::new(name);
        iface.doc = self.opt_doc();
        self.expect(&Tok::LBrace, "`{`")?;
        while !self.eat(&Tok::RBrace) {
            if self.eat_kw("unit") {
                let sp = self.span_here();
                let u = self.ident()?;
                self.expect(&Tok::Semi, "`;`")?;
                self.units.insert(u.clone());
                iface.spans.units.insert(u.clone(), sp);
                iface.add_unit(u);
            } else if self.eat_kw("ecv") {
                let sp = self.span_here();
                let name = self.ident()?;
                self.expect(&Tok::Colon, "`:`")?;
                let dist = self.dist()?;
                let doc = self.opt_doc();
                self.expect(&Tok::Semi, "`;`")?;
                iface.spans.ecvs.insert(name.clone(), sp);
                iface.add_ecv(name, EcvDecl { dist, doc })?;
            } else if self.eat_kw("extern") {
                self.expect_kw("fn")?;
                let sp = self.span_here();
                let name = self.ident()?;
                self.expect(&Tok::LParen, "`(`")?;
                let params = self.param_list()?;
                let doc = self.opt_doc();
                self.expect(&Tok::Semi, "`;`")?;
                iface.spans.externs.insert(name.clone(), sp);
                iface.add_extern(ExternDecl {
                    name,
                    arity: params.len(),
                    doc,
                })?;
            } else if self.eat_kw("fn") {
                let sp = self.span_here();
                let name = self.ident()?;
                self.expect(&Tok::LParen, "`(`")?;
                let params = self.param_list()?;
                let doc = self.opt_doc();
                let (body, body_spans) = self.block()?;
                iface.spans.fns.insert(
                    name.clone(),
                    FnSpans {
                        decl: sp,
                        body: body_spans,
                    },
                );
                iface.add_fn(FnDef {
                    name,
                    params,
                    body,
                    doc,
                })?;
            } else {
                return Err(self.err("expected `unit`, `ecv`, `extern`, `fn`, or `}`"));
            }
        }
        Ok(iface)
    }

    fn param_list(&mut self) -> Result<Vec<String>> {
        let mut params = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(params);
        }
        loop {
            params.push(self.ident()?);
            if self.eat(&Tok::Comma) {
                continue;
            }
            self.expect(&Tok::RParen, "`)`")?;
            break;
        }
        Ok(params)
    }

    fn dist(&mut self) -> Result<DistSpec> {
        let kind = self.ident()?;
        self.expect(&Tok::LParen, "`(`")?;
        let spec = match kind.as_str() {
            "bernoulli" => {
                let p = self.number()?;
                DistSpec::Bernoulli { p }
            }
            "uniform" => {
                let lo = self.number()?;
                self.expect(&Tok::Comma, "`,`")?;
                let hi = self.number()?;
                DistSpec::Uniform { lo, hi }
            }
            "normal" => {
                let mean = self.number()?;
                self.expect(&Tok::Comma, "`,`")?;
                let std_dev = self.number()?;
                DistSpec::Normal { mean, std_dev }
            }
            "point" => {
                let value = self.number()?;
                DistSpec::Point { value }
            }
            "discrete" => {
                let mut outcomes = Vec::new();
                loop {
                    let v = self.number()?;
                    self.expect(&Tok::Colon, "`:`")?;
                    let p = self.number()?;
                    outcomes.push((v, p));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                DistSpec::Discrete { outcomes }
            }
            other => return Err(self.err(format!("unknown distribution `{other}`"))),
        };
        self.expect(&Tok::RParen, "`)`")?;
        Ok(spec)
    }

    fn block(&mut self) -> Result<(Vec<Stmt>, Vec<StmtSpans>)> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        let mut spans = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let (s, sp) = self.stmt()?;
            stmts.push(s);
            spans.push(sp);
        }
        Ok((stmts, spans))
    }

    fn stmt(&mut self) -> Result<(Stmt, StmtSpans)> {
        let sp = self.span_here();
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect(&Tok::Assign, "`=`")?;
            let (e, es) = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok((
                Stmt::Let(name, e),
                StmtSpans {
                    span: sp,
                    exprs: vec![es],
                    blocks: vec![],
                },
            ));
        }
        if self.eat_kw("return") {
            let (e, es) = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok((
                Stmt::Return(e),
                StmtSpans {
                    span: sp,
                    exprs: vec![es],
                    blocks: vec![],
                },
            ));
        }
        if self.eat_kw("if") {
            let (cond, cond_s) = self.expr()?;
            let (then_b, then_s) = self.block()?;
            let (else_b, else_s) = if self.eat_kw("else") {
                if let Some(Tok::Ident(k)) = self.peek() {
                    if k == "if" {
                        // `else if ...` sugar.
                        let (s, ss) = self.stmt()?;
                        (vec![s], vec![ss])
                    } else {
                        return Err(self.err("expected `{` or `if` after `else`"));
                    }
                } else {
                    self.block()?
                }
            } else {
                (Vec::new(), Vec::new())
            };
            return Ok((
                Stmt::If(cond, then_b, else_b),
                StmtSpans {
                    span: sp,
                    exprs: vec![cond_s],
                    blocks: vec![then_s, else_s],
                },
            ));
        }
        if self.eat_kw("for") {
            let var = self.ident()?;
            self.expect_kw("in")?;
            let (from, from_s) = self.expr()?;
            self.expect(&Tok::DotDot, "`..`")?;
            let (to, to_s) = self.expr()?;
            let (body, body_s) = self.block()?;
            return Ok((
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                },
                StmtSpans {
                    span: sp,
                    exprs: vec![from_s, to_s],
                    blocks: vec![body_s],
                },
            ));
        }
        if self.eat_kw("while") {
            let (cond, cond_s) = self.expr()?;
            self.expect_kw("bound")?;
            let bound = self.number()?;
            if bound < 0.0 || bound.fract() != 0.0 {
                return Err(self.err("while bound must be a non-negative integer"));
            }
            let (body, body_s) = self.block()?;
            return Ok((
                Stmt::While {
                    cond,
                    bound: bound as u64,
                    body,
                },
                StmtSpans {
                    span: sp,
                    exprs: vec![cond_s],
                    blocks: vec![body_s],
                },
            ));
        }
        // Assignment: `ident = expr;`.
        let name = self.ident()?;
        self.expect(&Tok::Assign, "`=` (assignment)")?;
        let (e, es) = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok((
            Stmt::Assign(name, e),
            StmtSpans {
                span: sp,
                exprs: vec![es],
                blocks: vec![],
            },
        ))
    }

    fn expr(&mut self) -> Result<(Expr, ExprSpans)> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let (mut e, mut es) = self.and_expr()?;
        loop {
            let sp = self.span_here();
            if !self.eat(&Tok::OrOr) {
                break;
            }
            let (rhs, rs) = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, rhs);
            es = ExprSpans::node(sp, vec![es, rs]);
        }
        Ok((e, es))
    }

    fn and_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let (mut e, mut es) = self.cmp_expr()?;
        loop {
            let sp = self.span_here();
            if !self.eat(&Tok::AndAnd) {
                break;
            }
            let (rhs, rs) = self.cmp_expr()?;
            e = Expr::bin(BinOp::And, e, rhs);
            es = ExprSpans::node(sp, vec![es, rs]);
        }
        Ok((e, es))
    }

    fn cmp_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let (e, es) = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok((e, es)),
        };
        let sp = self.span_here();
        self.pos += 1;
        let (rhs, rs) = self.add_expr()?;
        Ok((Expr::bin(op, e, rhs), ExprSpans::node(sp, vec![es, rs])))
    }

    fn add_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let (mut e, mut es) = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            let sp = self.span_here();
            self.pos += 1;
            let (rhs, rs) = self.mul_expr()?;
            e = Expr::bin(op, e, rhs);
            es = ExprSpans::node(sp, vec![es, rs]);
        }
        Ok((e, es))
    }

    fn mul_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let (mut e, mut es) = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            let sp = self.span_here();
            self.pos += 1;
            let (rhs, rs) = self.unary_expr()?;
            e = Expr::bin(op, e, rhs);
            es = ExprSpans::node(sp, vec![es, rs]);
        }
        Ok((e, es))
    }

    fn unary_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let sp = self.span_here();
        if self.eat(&Tok::Minus) {
            let (inner, is) = self.unary_expr()?;
            // Fold negation into literals so `-1` round-trips as `Num(-1)`;
            // the folded literal keeps the minus token's position.
            return Ok(match inner {
                Expr::Num(n) => (Expr::Num(-n), ExprSpans::leaf(sp)),
                Expr::Joules(j) => (Expr::Joules(-j), ExprSpans::leaf(sp)),
                other => (
                    Expr::Unary(UnOp::Neg, Box::new(other)),
                    ExprSpans::node(sp, vec![is]),
                ),
            });
        }
        if self.eat(&Tok::Bang) {
            let (inner, is) = self.unary_expr()?;
            return Ok((
                Expr::Unary(UnOp::Not, Box::new(inner)),
                ExprSpans::node(sp, vec![is]),
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<(Expr, ExprSpans)> {
        let (mut e, mut es) = self.primary()?;
        loop {
            let sp = self.span_here();
            if !self.eat(&Tok::Dot) {
                break;
            }
            let field = self.ident()?;
            e = Expr::Field(Box::new(e), field);
            es = ExprSpans::node(sp, vec![es]);
        }
        Ok((e, es))
    }

    fn primary(&mut self) -> Result<(Expr, ExprSpans)> {
        let sp = self.span_here();
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                // Energy literal: `5 mJ` or `2 relu` (declared unit).
                if let Some(Tok::Ident(suffix)) = self.peek() {
                    let suffix = suffix.clone();
                    if let Some((_, scale)) = ENERGY_SUFFIXES.iter().find(|(s, _)| *s == suffix) {
                        self.pos += 1;
                        return Ok((Expr::Joules(n * scale), ExprSpans::leaf(sp)));
                    }
                    if self.units.contains(&suffix) {
                        self.pos += 1;
                        return Ok((Expr::Unit(suffix, n), ExprSpans::leaf(sp)));
                    }
                }
                Ok((Expr::Num(n), ExprSpans::leaf(sp)))
            }
            Some(Tok::Ident(id)) if id == "true" => {
                self.pos += 1;
                Ok((Expr::Bool(true), ExprSpans::leaf(sp)))
            }
            Some(Tok::Ident(id)) if id == "false" => {
                self.pos += 1;
                Ok((Expr::Bool(false), ExprSpans::leaf(sp)))
            }
            Some(Tok::Ident(id)) if id == "ecv" => {
                // `ecv(name)` — explicit ECV read.
                self.pos += 1;
                self.expect(&Tok::LParen, "`(`")?;
                let name = self.ident()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok((Expr::Ecv(name), ExprSpans::leaf(sp)))
            }
            Some(Tok::Ident(id)) if id == "if" => {
                // If-expression: `if c { a } else { b }`.
                self.pos += 1;
                let (c, cs) = self.expr()?;
                self.expect(&Tok::LBrace, "`{`")?;
                let (t, ts) = self.expr()?;
                self.expect(&Tok::RBrace, "`}`")?;
                self.expect_kw("else")?;
                self.expect(&Tok::LBrace, "`{`")?;
                let (f, fs) = self.expr()?;
                self.expect(&Tok::RBrace, "`}`")?;
                Ok((
                    Expr::IfExpr(Box::new(c), Box::new(t), Box::new(f)),
                    ExprSpans::node(sp, vec![cs, ts, fs]),
                ))
            }
            Some(Tok::Ident(id)) if !KEYWORDS.contains(&id.as_str()) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    let mut arg_spans = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            let (a, asp) = self.expr()?;
                            args.push(a);
                            arg_spans.push(asp);
                            if self.eat(&Tok::Comma) {
                                continue;
                            }
                            self.expect(&Tok::RParen, "`)`")?;
                            break;
                        }
                    }
                    if let Some(b) = Builtin::from_name(&id) {
                        return Ok((Expr::BuiltinCall(b, args), ExprSpans::node(sp, arg_spans)));
                    }
                    return Ok((Expr::Call(id, args), ExprSpans::node(sp, arg_spans)));
                }
                Ok((Expr::Var(id), ExprSpans::leaf(sp)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let (e, es) = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                // Parentheses are not AST nodes; pass the inner mirror up.
                Ok((e, es))
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

/// Resolves bare `Var` references to declared ECVs into `Ecv` reads.
///
/// The surface syntax lets Fig. 1-style code write `if request_hit { .. }`
/// without the explicit `ecv(..)` form; after parsing a whole interface we
/// rewrite any variable that (a) is not a parameter or local and (b) names a
/// declared ECV. The rewrite swaps leaves for leaves, so the span mirror
/// tree stays aligned untouched.
pub fn resolve_ecv_reads(iface: &mut Interface) {
    let ecv_names: BTreeSet<String> = iface.ecvs.keys().cloned().collect();
    for f in iface.fns.values_mut() {
        let mut bound: BTreeSet<String> = f.params.iter().cloned().collect();
        rewrite_block(&mut f.body, &mut bound, &ecv_names);
    }
}

fn rewrite_block(stmts: &mut [Stmt], bound: &mut BTreeSet<String>, ecvs: &BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Let(name, e) => {
                rewrite_expr(e, bound, ecvs);
                bound.insert(name.clone());
            }
            Stmt::Assign(_, e) => rewrite_expr(e, bound, ecvs),
            Stmt::If(c, t, els) => {
                rewrite_expr(c, bound, ecvs);
                rewrite_block(t, bound, ecvs);
                rewrite_block(els, bound, ecvs);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                rewrite_expr(from, bound, ecvs);
                rewrite_expr(to, bound, ecvs);
                bound.insert(var.clone());
                rewrite_block(body, bound, ecvs);
            }
            Stmt::While { cond, body, .. } => {
                rewrite_expr(cond, bound, ecvs);
                rewrite_block(body, bound, ecvs);
            }
            Stmt::Return(e) => rewrite_expr(e, bound, ecvs),
        }
    }
}

fn rewrite_expr(e: &mut Expr, bound: &BTreeSet<String>, ecvs: &BTreeSet<String>) {
    match e {
        Expr::Var(name) => {
            if !bound.contains(name) && ecvs.contains(name) {
                *e = Expr::Ecv(name.clone());
            }
        }
        Expr::Field(b, _) | Expr::Unary(_, b) => rewrite_expr(b, bound, ecvs),
        Expr::Binary(_, a, b) => {
            rewrite_expr(a, bound, ecvs);
            rewrite_expr(b, bound, ecvs);
        }
        Expr::Call(_, args) | Expr::BuiltinCall(_, args) => {
            for a in args {
                rewrite_expr(a, bound, ecvs);
            }
        }
        Expr::IfExpr(c, t, f) => {
            rewrite_expr(c, bound, ecvs);
            rewrite_expr(t, bound, ecvs);
            rewrite_expr(f, bound, ecvs);
        }
        Expr::Num(_) | Expr::Bool(_) | Expr::Joules(_) | Expr::Unit(_, _) | Expr::Ecv(_) => {}
    }
}

/// Parses an interface and resolves Fig. 1-style bare ECV references.
pub fn parse(src: &str) -> Result<Interface> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        units: BTreeSet::new(),
    };
    let mut iface = p.interface()?;
    p.expect_eof()?;
    resolve_ecv_reads(&mut iface);
    iface.validate()?;
    Ok(iface)
}

/// Parses a file containing one or more interfaces.
///
/// Multi-interface files are how compositions ship as a single unit: an
/// upper interface plus the providers meant to satisfy its externs. Each
/// interface is resolved and validated independently (unit suffixes do not
/// leak across interfaces); `eic lint` additionally cross-checks the
/// declared externs against the sibling providers (rule W003).
pub fn parse_all(src: &str) -> Result<Vec<Interface>> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        units: BTreeSet::new(),
    };
    let mut out = Vec::new();
    while !p.at_eof() {
        let mut iface = p.interface()?;
        resolve_ecv_reads(&mut iface);
        iface.validate()?;
        out.push(iface);
    }
    if out.is_empty() {
        return Err(p.err("expected at least one `interface`"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecv::EcvEnv;
    use crate::interp::{evaluate_energy, EvalConfig};
    use crate::value::Value;

    const FIG1: &str = r#"
        // The example energy interface from Fig. 1 of the paper.
        interface ml_webservice "energy interface for an ML-model web service" {
            unit conv2d;
            unit relu;
            unit mlp;
            ecv request_hit: bernoulli(0.25) "request found in cache";
            ecv local_cache_hit: bernoulli(0.8) "cache hit in current node";

            fn handle(request) "energy to handle one request" {
                let max_response_len = 1024;
                if request_hit {
                    return cache_lookup(request.image_id, max_response_len);
                } else {
                    return cnn_forward(request);
                }
            }

            fn cache_lookup(key, response_len) {
                return (if local_cache_hit { 5 mJ } else { 100 mJ }) * response_len;
            }

            fn cnn_forward(request) {
                let n_embedding = 256;
                let n_zeros = request.image_zeros;
                return 8 * conv2d_e(request.image_size - n_zeros)
                     + 8 * relu_e(n_embedding)
                     + 16 * mlp_e(n_embedding);
            }

            fn conv2d_e(n) { return 1 conv2d * (n / 1024); }
            fn relu_e(n) { return 1 relu * (n / 256); }
            fn mlp_e(n) { return 1 mlp * (n / 256); }
        }
    "#;

    #[test]
    fn parses_fig1() {
        let iface = parse(FIG1).unwrap();
        assert_eq!(iface.name, "ml_webservice");
        assert_eq!(iface.fns.len(), 6);
        assert_eq!(iface.ecvs.len(), 2);
        assert_eq!(iface.units.len(), 3);
        assert!(iface.is_closed());
    }

    #[test]
    fn fig1_evaluates() {
        let iface = parse(FIG1).unwrap();
        let mut env = EcvEnv::from_decls(&iface.ecvs);
        env.pin_bool("request_hit", true);
        env.pin_bool("local_cache_hit", true);
        let req = Value::num_record([
            ("image_id", 1.0),
            ("image_size", 2048.0),
            ("image_zeros", 0.0),
        ]);
        let e = evaluate_energy(&iface, "handle", &[req], &env, 0, &EvalConfig::default()).unwrap();
        assert!((e.as_joules() - 5e-3 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn energy_literal_suffixes() {
        let joules = |src: &str| match parse_expr(src).unwrap() {
            Expr::Joules(j) => j,
            other => panic!("expected Joules literal, got {other:?}"),
        };
        let close = |a: f64, b: f64| (a - b).abs() <= b.abs() * 1e-12;
        assert!(close(joules("5 mJ"), 5e-3));
        assert!(close(joules("2 J"), 2.0));
        assert!(close(joules("3 uJ"), 3e-6));
        assert!(close(joules("1 Wh"), 3600.0));
        assert!(close(joules("4 kJ"), 4000.0));
        assert!(close(joules("7 nJ"), 7e-9));
        assert!(close(joules("9 pJ"), 9e-12));
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::Num(1.0),
                Expr::bin(BinOp::Mul, Expr::Num(2.0), Expr::Num(3.0))
            )
        );
        // a || b && c parses as a || (b && c).
        let e = parse_expr("a || b && c").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
        // Comparison binds looser than arithmetic.
        let e = parse_expr("1 + 1 < 3").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn unary_and_parens() {
        let e = parse_expr("-(1 + 2)").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Neg, _)));
        let e = parse_expr("!x").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Not, _)));
        let e = parse_expr("-x.size").unwrap();
        // Unary applies to the whole postfix chain.
        assert!(matches!(e, Expr::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn builtins_resolved() {
        let e = parse_expr("min(1, 2)").unwrap();
        assert!(matches!(e, Expr::BuiltinCall(Builtin::Min, _)));
        let e = parse_expr("ceil(x / 32)").unwrap();
        assert!(matches!(e, Expr::BuiltinCall(Builtin::Ceil, _)));
    }

    #[test]
    fn explicit_ecv_syntax() {
        let e = parse_expr("ecv(request_hit)").unwrap();
        assert_eq!(e, Expr::Ecv("request_hit".into()));
    }

    #[test]
    fn statements_parse() {
        let src = r#"
            interface s {
                fn f(n) {
                    let acc = 0 J;
                    for i in 0..n {
                        acc = acc + 1 mJ * i;
                    }
                    let j = 0;
                    while j < 10 bound 20 {
                        j = j + 1;
                    }
                    if n > 5 {
                        return acc;
                    } else if n > 2 {
                        return acc * 2;
                    } else {
                        return 0 J;
                    }
                }
            }
        "#;
        let iface = parse(src).unwrap();
        let f = iface.get_fn("f").unwrap();
        assert_eq!(f.body.len(), 5);
        match &f.body[4] {
            Stmt::If(_, _, els) => {
                assert_eq!(els.len(), 1);
                assert!(matches!(els[0], Stmt::If(_, _, _)));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn extern_declarations() {
        let src = r#"
            interface up {
                extern fn hw_op(bytes, flops) "hardware operation";
                fn f(x) { return hw_op(x, x * 2); }
            }
        "#;
        let iface = parse(src).unwrap();
        assert_eq!(iface.externs["hw_op"].arity, 2);
        assert!(!iface.is_closed());
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse("interface x { fn f( { } }").unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_keyword_identifiers() {
        assert!(parse("interface if { }").is_err());
        assert!(parse("interface x { fn return() { return 0 J; } }").is_err());
    }

    #[test]
    fn rejects_undeclared_unit_literal() {
        // `2 relu` without `unit relu;` parses `2` then chokes on `relu`.
        let src = "interface x { fn f() { return 2 relu; } }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_bad_distributions() {
        assert!(parse("interface x { ecv e: bernoulli(2.0); }").is_err());
        assert!(parse("interface x { ecv e: wacky(1.0); }").is_err());
        assert!(parse("interface x { ecv e: discrete(1: 0.5); }").is_err());
    }

    #[test]
    fn negative_numbers_in_distributions() {
        let src = "interface x { ecv e: normal(-5, 2.0); }";
        let iface = parse(src).unwrap();
        assert_eq!(
            iface.ecvs["e"].dist,
            DistSpec::Normal {
                mean: -5.0,
                std_dev: 2.0
            }
        );
    }

    #[test]
    fn while_bound_must_be_integer() {
        let src = "interface x { fn f() { while true bound 2.5 { } return 0 J; } }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse("interface x { } garbage").is_err());
        assert!(parse_expr("1 + 2 extra").is_err());
    }

    #[test]
    fn call_vs_var_disambiguation() {
        let e = parse_expr("f(x) + f").unwrap();
        match e {
            Expr::Binary(BinOp::Add, l, r) => {
                assert!(matches!(*l, Expr::Call(_, _)));
                assert!(matches!(*r, Expr::Var(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // -----------------------------------------------------------------------
    // Span threading
    // -----------------------------------------------------------------------

    #[test]
    fn declaration_spans_recorded() {
        let src = "interface s {\n    unit relu;\n    ecv hit: bernoulli(0.5);\n    extern fn hw(x);\n    fn f(n) { return hw(n) + 1 relu; }\n}\n";
        let iface = parse(src).unwrap();
        assert_eq!(iface.spans.unit("relu"), crate::span::Span::new(2, 10));
        assert_eq!(iface.spans.ecv("hit"), crate::span::Span::new(3, 9));
        assert_eq!(iface.spans.extern_decl("hw"), crate::span::Span::new(4, 15));
        assert_eq!(iface.spans.fn_spans("f").decl, crate::span::Span::new(5, 8));
    }

    #[test]
    fn statement_and_expression_spans_mirror_the_ast() {
        let src = "interface s {\n    fn f(n) {\n        let a = 1 + n;\n        if n > 2 {\n            return 1 J;\n        } else {\n            return 2 J * a;\n        }\n    }\n}\n";
        let iface = parse(src).unwrap();
        let fs = iface.spans.fn_spans("f");
        // `let` keyword on line 3, col 9.
        assert_eq!(fs.stmt(0).span, crate::span::Span::new(3, 9));
        // The let's rhs mirror anchors at the `+` operator.
        assert_eq!(fs.stmt(0).expr(0).span, crate::span::Span::new(3, 19));
        // Its children are the two operand leaves.
        assert_eq!(
            fs.stmt(0).expr(0).child(0).span,
            crate::span::Span::new(3, 17)
        );
        assert_eq!(
            fs.stmt(0).expr(0).child(1).span,
            crate::span::Span::new(3, 21)
        );
        // `if` statement with both blocks mirrored.
        let if_s = fs.stmt(1);
        assert_eq!(if_s.span, crate::span::Span::new(4, 9));
        assert_eq!(if_s.block(0).len(), 1);
        assert_eq!(if_s.block(1).len(), 1);
        // The else-branch return's rhs is `2 J * a`: anchored at `*`.
        let ret = &if_s.block(1)[0];
        assert_eq!(ret.expr(0).span, crate::span::Span::new(7, 24));
        // AST shape matches the mirror shape.
        let f = iface.get_fn("f").unwrap();
        match &f.body[0] {
            Stmt::Let(_, Expr::Binary(_, _, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn folded_negative_literals_keep_a_span() {
        let src = "interface s { fn f() { return 0 J * (0 - -3); } }";
        let iface = parse(src).unwrap();
        let fs = iface.spans.fn_spans("f");
        // return-rhs is `*`; its right child is `(0 - -3)` anchored at `-`,
        // whose right child is the folded literal at the minus token.
        let mul = fs.stmt(0).expr(0);
        let sub = mul.child(1);
        assert!(!sub.child(1).span.is_none());
    }

    #[test]
    fn programmatic_interfaces_have_empty_span_tables() {
        let iface = Interface::new("empty");
        assert!(iface.spans.is_empty());
        // And parsed == programmatic comparisons ignore spans entirely.
        let parsed = parse("interface p { fn f() { return 1 J; } }").unwrap();
        let mut rebuilt = Interface::new("p");
        rebuilt
            .add_fn(FnDef::new(
                "f",
                vec![],
                vec![Stmt::Return(Expr::Joules(1.0))],
            ))
            .unwrap();
        assert!(!parsed.spans.is_empty());
        assert_eq!(parsed, rebuilt);
    }

    // -----------------------------------------------------------------------
    // Multi-interface files
    // -----------------------------------------------------------------------

    #[test]
    fn parse_all_reads_multiple_interfaces() {
        let src = r#"
            interface upper {
                extern fn op(x);
                fn f(x) { return op(x); }
            }
            interface provider {
                unit relu;
                fn op(x) { return 1 relu * x; }
            }
        "#;
        let ifaces = parse_all(src).unwrap();
        assert_eq!(ifaces.len(), 2);
        assert_eq!(ifaces[0].name, "upper");
        assert_eq!(ifaces[1].name, "provider");
        // Unit suffixes don't leak across interfaces.
        assert!(ifaces[0].units.is_empty());
        assert!(ifaces[1].units.contains("relu"));
    }

    #[test]
    fn parse_all_unit_scope_does_not_leak() {
        // `relu` declared only in the first interface must not lex as an
        // energy suffix in the second.
        let src = r#"
            interface a { unit relu; fn f() { return 1 relu; } }
            interface b { fn g() { return 2 relu; } }
        "#;
        assert!(parse_all(src).is_err());
    }

    #[test]
    fn parse_all_rejects_empty_and_garbage() {
        assert!(parse_all("").is_err());
        assert!(parse_all("interface a { } garbage").is_err());
    }

    #[test]
    fn parse_all_single_matches_parse() {
        let ifaces = parse_all(FIG1).unwrap();
        assert_eq!(ifaces.len(), 1);
        assert_eq!(ifaces[0], parse(FIG1).unwrap());
    }
}
