//! Versioned interface registry with atomic swap and rollback.
//!
//! A published energy interface is a *claim about a device*, and devices
//! drift — so a serving stack that evaluates interfaces needs a way to
//! replace one **between requests**, without dropping work, and to back
//! out a replacement that turns out worse. [`InterfaceRegistry`] is that
//! seam: an append-only store of [`InterfaceVersion`]s plus one active
//! index, advanced by [`swap_to`](InterfaceRegistry::swap_to) and
//! reverted by [`rollback`](InterfaceRegistry::rollback).
//!
//! ## Epoch swap protocol
//!
//! The registry follows ArcSwap-style epoch semantics, specialized to
//! the repo's deterministic single-threaded request loops:
//!
//! 1. Consumers read [`current`](InterfaceRegistry::current) once per
//!    request and hold the returned `Arc`s for the request's whole
//!    lifetime. A request therefore sees exactly one version end to end
//!    — a swap can never change an in-flight evaluation.
//! 2. Swaps only replace the active *index*; prior versions are never
//!    mutated or freed, so any borrowed `Arc<Interface>` stays valid.
//! 3. Every version carries a content [`fingerprint`](InterfaceVersion::fingerprint)
//!    (FNV over the serialized interfaces + calibration). The
//!    [`EvalCache`](crate::cache::EvalCache) keys compiled programs and
//!    energy queries by the same content hash, so programs compiled for
//!    a stale version can never alias the recalibrated one — no cache
//!    flush is needed at swap time.
//! 4. The epoch counter increments on every swap *and* rollback, and the
//!    registry is driven only by the deterministic request clock, so a
//!    replayed run performs the identical version sequence.

use std::sync::Arc;

use ei_telemetry as telemetry;
use serde::Serialize;

use crate::cache::fingerprint_interface;
use crate::interface::Interface;
use crate::units::Calibration;

/// One immutable published version: a set of interfaces plus the
/// calibration they were fitted against.
#[derive(Debug, Clone)]
pub struct InterfaceVersion {
    /// Dense version number (`0` is the initial publication).
    pub version: u32,
    /// The interfaces of this version (shared, never mutated).
    pub interfaces: Vec<Arc<Interface>>,
    /// Calibration of the abstract units used by `interfaces`.
    pub calibration: Calibration,
    /// Content fingerprint over interfaces + calibration.
    pub fingerprint: u64,
    /// Human-readable provenance ("initial fit", "recal @ 12.4s", ...).
    pub note: String,
}

/// Fingerprints a version's content: every interface's own fingerprint
/// plus the calibration pairs, folded FNV-style so any change anywhere
/// changes the result.
fn fingerprint_version(interfaces: &[Arc<Interface>], calibration: &Calibration) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for iface in interfaces {
        mix(fingerprint_interface(iface));
    }
    let mut pairs: Vec<(String, f64)> = calibration
        .iter()
        .map(|(unit, e)| (unit.to_string(), e.as_joules()))
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    for (unit, joules) in pairs {
        for b in unit.as_bytes() {
            mix(*b as u64);
        }
        mix(joules.to_bits());
    }
    h
}

/// Swap/rollback accounting, serialized into experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RegistryStats {
    /// Versions published (including the initial one).
    pub published: u64,
    /// Forward swaps performed.
    pub swaps: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Current epoch (bumps on every swap and rollback).
    pub epoch: u64,
}

/// An append-only, epoch-versioned interface store.
#[derive(Debug, Clone)]
pub struct InterfaceRegistry {
    versions: Vec<InterfaceVersion>,
    active: usize,
    /// The version active before the last forward swap (rollback target).
    previous: Option<usize>,
    stats: RegistryStats,
}

impl InterfaceRegistry {
    /// Creates a registry with `interfaces`/`calibration` as version 0.
    pub fn new(
        interfaces: Vec<Interface>,
        calibration: Calibration,
        note: impl Into<String>,
    ) -> Self {
        let mut reg = InterfaceRegistry {
            versions: Vec::new(),
            active: 0,
            previous: None,
            stats: RegistryStats::default(),
        };
        reg.publish(interfaces, calibration, note);
        reg
    }

    /// Publishes a new version and returns its number. Publication does
    /// **not** activate it — call [`Self::swap_to`] for that, so a refit
    /// can be staged, validated, and only then made live.
    pub fn publish(
        &mut self,
        interfaces: Vec<Interface>,
        calibration: Calibration,
        note: impl Into<String>,
    ) -> u32 {
        let interfaces: Vec<Arc<Interface>> = interfaces.into_iter().map(Arc::new).collect();
        let fingerprint = fingerprint_version(&interfaces, &calibration);
        let version = self.versions.len() as u32;
        self.versions.push(InterfaceVersion {
            version,
            interfaces,
            calibration,
            fingerprint,
            note: note.into(),
        });
        self.stats.published += 1;
        telemetry::counter_add("core.registry.published", 1);
        version
    }

    /// Atomically activates `version` (it must exist). The previously
    /// active version becomes the rollback target. Returns `false` (and
    /// does nothing) for an unknown or already-active version.
    pub fn swap_to(&mut self, version: u32) -> bool {
        let idx = version as usize;
        if idx >= self.versions.len() || idx == self.active {
            return false;
        }
        self.previous = Some(self.active);
        self.active = idx;
        self.stats.swaps += 1;
        self.stats.epoch += 1;
        telemetry::counter_add("core.registry.swaps", 1);
        true
    }

    /// Reverts to the version active before the last forward swap.
    /// Returns the reactivated version number, or `None` if there is no
    /// rollback target (never swapped, or already rolled back).
    pub fn rollback(&mut self) -> Option<u32> {
        let prev = self.previous.take()?;
        self.active = prev;
        self.stats.rollbacks += 1;
        self.stats.epoch += 1;
        telemetry::counter_add("core.registry.rollbacks", 1);
        Some(self.versions[prev].version)
    }

    /// The active version (consumers hold its `Arc`s per request).
    pub fn current(&self) -> &InterfaceVersion {
        &self.versions[self.active]
    }

    /// The active version number.
    pub fn active_version(&self) -> u32 {
        self.versions[self.active].version
    }

    /// Looks a published version up by number.
    pub fn version(&self, version: u32) -> Option<&InterfaceVersion> {
        self.versions.get(version as usize)
    }

    /// Number of published versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Always false: a registry holds at least version 0.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Swap/rollback accounting.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn iface(joules: f64) -> Interface {
        parse(&format!(
            r#"interface reg_probe {{
                fn e() "constant" {{ return {joules} J; }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn publish_swap_rollback_lifecycle() {
        let mut reg = InterfaceRegistry::new(vec![iface(1.0)], Calibration::empty(), "v0");
        assert_eq!(reg.active_version(), 0);
        assert_eq!(reg.stats().epoch, 0);

        let v1 = reg.publish(vec![iface(2.0)], Calibration::empty(), "refit");
        assert_eq!(v1, 1);
        assert_eq!(reg.active_version(), 0, "publish does not activate");

        assert!(reg.swap_to(v1));
        assert_eq!(reg.active_version(), 1);
        assert_eq!(reg.stats().epoch, 1);
        assert!(!reg.swap_to(1), "already active");
        assert!(!reg.swap_to(9), "unknown version");

        assert_eq!(reg.rollback(), Some(0));
        assert_eq!(reg.active_version(), 0);
        assert_eq!(reg.rollback(), None, "only one rollback target");
        let s = reg.stats();
        assert_eq!((s.published, s.swaps, s.rollbacks, s.epoch), (2, 1, 1, 2));
    }

    #[test]
    fn fingerprints_distinguish_content_not_notes() {
        let reg = InterfaceRegistry::new(vec![iface(1.0)], Calibration::empty(), "a");
        let same = InterfaceRegistry::new(vec![iface(1.0)], Calibration::empty(), "b");
        let other = InterfaceRegistry::new(vec![iface(1.5)], Calibration::empty(), "a");
        assert_eq!(reg.current().fingerprint, same.current().fingerprint);
        assert_ne!(reg.current().fingerprint, other.current().fingerprint);

        let mut cal = Calibration::empty();
        cal.set("relu", crate::units::Energy::microjoules(3.0));
        let recal = InterfaceRegistry::new(vec![iface(1.0)], cal, "a");
        assert_ne!(reg.current().fingerprint, recal.current().fingerprint);
    }

    #[test]
    fn old_versions_stay_borrowable_across_swaps() {
        let mut reg = InterfaceRegistry::new(vec![iface(1.0)], Calibration::empty(), "v0");
        let held = reg.current().interfaces[0].clone();
        let v1 = reg.publish(vec![iface(2.0)], Calibration::empty(), "v1");
        reg.swap_to(v1);
        // The pre-swap Arc still resolves to the old content.
        assert_eq!(held.name, "reg_probe");
        assert_ne!(
            reg.current().fingerprint,
            fingerprint_version(std::slice::from_ref(&held), &Calibration::empty())
        );
    }
}
