//! The manually-derived energy interface for GPT-2 inference (§5).
//!
//! "We manually derived hardware energy interfaces for two GPUs, and a
//! high-level energy interface for GPT-2 inference. The latter computed
//! energy consumed in terms of static power, VRAM sector reads/writes, L2
//! sector reads/writes, L1 wavefront reads/writes, and instruction
//! executions."
//!
//! The interface mirrors the inference engine's kernel stream analytically,
//! calling into an extern `gpu_kernel(flops, logical_bytes, l2_sectors,
//! vram_sectors)` provided by a hardware energy interface (vendor-exact or
//! microbenchmark-fitted). Like any manual derivation it embeds *analytic
//! assumptions* — most importantly that the KV cache stays resident in L2
//! and that the device runs at its nominal (cold) clocks. Those assumptions
//! hold on a 72 MB-L2 part and break progressively on a 4 MB-L2 one, which
//! is exactly the 4090-vs-3070 error asymmetry of Table 1.

use ei_core::interface::{InputSpec, Interface};
use ei_core::parser::parse;

use crate::engine::LOGICAL_BYTES_PER_FLOP;
use crate::model::Gpt2Config;

/// Builds the GPT-2 inference energy interface for a model configuration.
///
/// Entry points:
/// - `e_generate(prompt_len, gen_len)` — full autoregressive generation;
/// - `e_prefill(p)`, `e_decode_step(ctx_end)` — the two phases;
/// - `e_idle(seconds)` — the idle-state special input of §3.
pub fn gpt2_interface(c: &Gpt2Config) -> Interface {
    let d = c.d_model;
    let dtype = c.dtype_bytes;
    let src = format!(
        r#"
        interface {name}_inference "energy interface for {name} autoregressive inference" {{
            extern fn gpu_kernel(flops, logical_bytes, l2_sectors, vram_sectors)
                "hardware energy interface (vendor or microbenchmark-fitted)";
            extern fn gpu_idle(seconds) "static power over a duration";

            fn e_generate(prompt_len, gen_len) "generation of gen_len tokens" {{
                let e = e_prefill(prompt_len);
                for t in 1..gen_len {{
                    e = e + e_decode_step(prompt_len + t);
                }}
                return e;
            }}

            fn e_prefill(p) "prompt ingestion plus the first generated token" {{
                return e_embed(p) + {n_layer} * e_layer(p, p) + e_lm_head();
            }}

            fn e_decode_step(ctx_end) "one decode step at context length ctx_end" {{
                return e_embed(1) + {n_layer} * e_layer(1, ctx_end) + e_lm_head();
            }}

            fn e_layer(tokens, ctx_end) "one transformer layer" {{
                return e_matmul(tokens, {w_attn}, {out_attn})
                     + e_attention(tokens, ctx_end)
                     + e_matmul(tokens, {w_proj}, {out_d})
                     + e_matmul(tokens, {w_fc}, {out_ff})
                     + e_matmul(tokens, {w_fc2}, {out_d});
            }}

            fn e_matmul(tokens, w_bytes, out_row_bytes) "x[tokens x in] . W" {{
                let flops = 2 * tokens * (w_bytes / {dtype});
                let logical = w_bytes + flops * {lbpf};
                let act = tokens * {act_row};
                let out = min(tokens * out_row_bytes, {act_buf} - act);
                let l2 = ceil(w_bytes / 32) + ceil(act / 32) + ceil(out / 32);
                // Weights stream from VRAM every pass (evict-first policy).
                let vram = ceil(w_bytes / 32);
                return gpu_kernel(flops, logical, l2, vram);
            }}

            fn e_attention(tokens, ctx_end) "causal attention over the KV cache" {{
                let first_ctx = ctx_end - tokens + 1;
                let avg_ctx = (first_ctx + ctx_end) / 2;
                let flops = tokens * 4 * avg_ctx * {d};
                let read = ctx_end * {kv_per_tok};
                let write = tokens * {kv_per_tok};
                let logical = read + flops * {lbpf};
                let l2 = ceil(read / 32) + ceil(write / 32);
                // ASSUMPTION: the KV cache stays resident in L2.
                let vram = 0;
                return gpu_kernel(flops, logical, l2, vram);
            }}

            fn e_embed(tokens) "token + position embedding gather" {{
                let bytes = tokens * {act_row};
                let flops = 2 * bytes;
                let logical = 2 * bytes;
                let l2 = ceil(bytes / 32) + ceil(min(bytes, {act_buf}) / 32);
                // ASSUMPTION: embedding rows are cache-resident.
                return gpu_kernel(flops, logical, l2, 0);
            }}

            fn e_lm_head() "last hidden state against the full vocabulary" {{
                let flops = {lm_flops};
                let logical = {wte} + flops * {lbpf};
                let logits = {logits};
                let l2 = ceil({wte} / 32) + ceil(logits / 32);
                let vram = ceil({wte} / 32) + ceil(logits / 32);
                return gpu_kernel(flops, logical, l2, vram);
            }}

            fn e_idle(seconds) "idle-state input: time with no work" {{
                return gpu_idle(seconds);
            }}
        }}
        "#,
        name = c.name.replace('-', "_"),
        n_layer = c.n_layer,
        w_attn = c.w_attn_bytes(),
        w_proj = c.w_proj_bytes(),
        w_fc = c.w_fc_bytes(),
        w_fc2 = c.w_fc2_bytes(),
        out_attn = 3 * d * dtype,
        out_d = d * dtype,
        out_ff = c.d_ff * dtype,
        act_row = d * dtype,
        act_buf = c.act_buffer_bytes(c.max_seq),
        kv_per_tok = c.kv_bytes_per_token_layer(),
        d = d,
        lbpf = LOGICAL_BYTES_PER_FLOP,
        lm_flops = c.lm_head_flops(),
        wte = c.wte_bytes(),
        logits = c.vocab * dtype,
        dtype = dtype,
    );
    let mut iface = parse(&src).expect("generated GPT-2 interface must parse");
    iface.set_input_spec(
        "e_generate",
        InputSpec::new()
            .range("prompt_len", 1.0, 256.0)
            .range("gen_len", 1.0, 200.0),
    );
    iface
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Gpt2Engine;
    use crate::model::{gpt2_medium, gpt2_small};
    use ei_core::compose::link;
    use ei_core::ecv::EcvEnv;
    use ei_core::interp::{evaluate_energy, EvalConfig};
    use ei_core::value::Value;
    use ei_hw::gpu::{rtx3070, rtx4090, GpuConfig, GpuSim};
    use ei_hw::interfaces::gpu_interface;

    /// Predicted energy via the interface linked against the vendor's exact
    /// hardware interface.
    fn predict(gpu: &GpuConfig, prompt: u64, gen: u64) -> f64 {
        let iface = link(&gpt2_interface(&gpt2_small()), &[&gpu_interface(gpu)]).unwrap();
        let cfg = EvalConfig {
            fuel: 200_000_000,
            ..EvalConfig::default()
        };
        evaluate_energy(
            &iface,
            "e_generate",
            &[Value::Num(prompt as f64), Value::Num(gen as f64)],
            &EcvEnv::new(),
            0,
            &cfg,
        )
        .unwrap()
        .as_joules()
    }

    fn truth(gpu: GpuConfig, prompt: u64, gen: u64) -> f64 {
        let mut engine = Gpt2Engine::new(gpt2_small(), GpuSim::new(gpu)).unwrap();
        engine.generate(prompt, gen).energy.as_joules()
    }

    #[test]
    fn interface_parses_and_is_open() {
        let i = gpt2_interface(&gpt2_small());
        assert_eq!(i.fns.len(), 9);
        assert!(!i.is_closed());
        assert!(i.externs.contains_key("gpu_kernel"));
        let m = gpt2_interface(&gpt2_medium());
        assert!(m.name.contains("gpt2_medium"));
    }

    #[test]
    fn prediction_accurate_on_big_l2_part() {
        // With the vendor's exact coefficients the only error is the
        // analytic cache/clock model: tight on the 4090.
        let p = predict(&rtx4090(), 32, 50);
        let t = truth(rtx4090(), 32, 50);
        let rel = (p - t).abs() / t;
        assert!(rel < 0.03, "4090 rel err {rel} (pred {p}, true {t})");
    }

    #[test]
    fn prediction_degrades_on_small_l2_part() {
        let p = predict(&rtx3070(), 32, 150);
        let t = truth(rtx3070(), 32, 150);
        let rel = (p - t).abs() / t;
        let p4 = predict(&rtx4090(), 32, 150);
        let t4 = truth(rtx4090(), 32, 150);
        let rel4 = (p4 - t4).abs() / t4;
        assert!(rel > rel4, "3070 ({rel}) must be worse than 4090 ({rel4})");
        assert!(rel < 0.15, "but still in the ballpark: {rel}");
    }

    #[test]
    fn interface_underpredicts_on_throttling_part() {
        // Both missing error sources (KV spill, clock droop) increase true
        // energy, so the manual interface must *under*-predict on the 3070.
        let p = predict(&rtx3070(), 32, 150);
        let t = truth(rtx3070(), 32, 150);
        assert!(p < t);
    }

    #[test]
    fn per_phase_functions_compose_to_generate() {
        let gpu = rtx4090();
        let iface = link(&gpt2_interface(&gpt2_small()), &[&gpu_interface(&gpu)]).unwrap();
        let cfg = EvalConfig {
            fuel: 200_000_000,
            ..EvalConfig::default()
        };
        let env = EcvEnv::new();
        let full = evaluate_energy(
            &iface,
            "e_generate",
            &[Value::Num(16.0), Value::Num(4.0)],
            &env,
            0,
            &cfg,
        )
        .unwrap()
        .as_joules();
        let prefill = evaluate_energy(&iface, "e_prefill", &[Value::Num(16.0)], &env, 0, &cfg)
            .unwrap()
            .as_joules();
        let mut steps = 0.0;
        for t in 1..4u64 {
            steps += evaluate_energy(
                &iface,
                "e_decode_step",
                &[Value::Num(16.0 + t as f64)],
                &env,
                0,
                &cfg,
            )
            .unwrap()
            .as_joules();
        }
        assert!((full - (prefill + steps)).abs() < 1e-9 * full);
    }

    #[test]
    fn idle_input_matches_static_power() {
        let gpu = rtx4090();
        let iface = link(&gpt2_interface(&gpt2_small()), &[&gpu_interface(&gpu)]).unwrap();
        let e = evaluate_energy(
            &iface,
            "e_idle",
            &[Value::Num(2.0)],
            &EcvEnv::new(),
            0,
            &EvalConfig::default(),
        )
        .unwrap();
        assert!((e.as_joules() - 116.0).abs() < 1e-9);
    }

    #[test]
    fn pretty_printed_interface_is_readable() {
        let text = ei_core::pretty::print_interface(&gpt2_interface(&gpt2_small()));
        assert!(text.contains("fn e_generate(prompt_len, gen_len)"));
        assert!(text.contains("extern fn gpu_kernel"));
        // And round-trips.
        let again = ei_core::parser::parse(&text).unwrap();
        assert_eq!(again.fns.len(), 9);
    }
}
