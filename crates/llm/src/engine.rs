//! Ground-truth GPT-2 inference on the simulated GPU.
//!
//! The engine reproduces the kernel stream of autoregressive generation —
//! prefill over the prompt, then one decode step per generated token, each
//! ending in an LM-head matmul — with exact FLOP counts and byte footprints
//! derived from the architecture. Weights stream (evict-first), the KV
//! cache and activations are temporal: whether the KV cache actually stays
//! resident is decided by the simulated L2, not by assumption. This is the
//! "actual energy consumption" side of Table 1.

use ei_core::units::{Energy, TimeSpan};
use ei_hw::cache::{AccessKind, BufferId, ReuseHint};
use ei_hw::gpu::{GpuCounters, GpuSim, KernelDesc};

use crate::model::Gpt2Config;

/// L1 traffic per FLOP after register/shared-memory reuse (bytes).
pub const LOGICAL_BYTES_PER_FLOP: f64 = 0.125;

/// Device-resident model state.
#[derive(Debug)]
pub struct Gpt2Engine {
    config: Gpt2Config,
    gpu: GpuSim,
    wte: BufferId,
    #[allow(dead_code)]
    wpe: BufferId,
    layer_weights: Vec<BufferId>,
    kv: Vec<BufferId>,
    act: BufferId,
    /// Capacity of `act`, bytes; matmul output writes are clamped to it.
    act_bytes: u64,
    logits: BufferId,
}

/// Report of one generation run.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// Prompt length.
    pub prompt_len: u64,
    /// Generated tokens.
    pub gen_len: u64,
    /// True total energy of the run.
    pub energy: Energy,
    /// Wall-clock (busy) time of the run.
    pub duration: TimeSpan,
    /// Device counters over the run.
    pub counters: GpuCounters,
    /// True energy after each generated token (cumulative), for
    /// length-sweep analyses.
    pub energy_per_token: Vec<Energy>,
}

impl Gpt2Engine {
    /// Loads the model onto a device; fails if VRAM is insufficient.
    pub fn new(config: Gpt2Config, mut gpu: GpuSim) -> Option<Self> {
        let wte = gpu.alloc(config.wte_bytes())?;
        let wpe = gpu.alloc(config.wpe_bytes())?;
        let mut layer_weights = Vec::new();
        let mut kv = Vec::new();
        for _ in 0..config.n_layer {
            layer_weights.push(gpu.alloc(config.layer_weight_bytes())?);
            kv.push(gpu.alloc(config.kv_layer_buffer_bytes())?);
        }
        // Sized for the widest possible step (a full-context prefill), not
        // a fixed 4 MiB: a prefill of `max_seq` tokens keeps
        // `max_seq × d_model` hidden states resident while fc1 writes
        // `max_seq × d_ff` behind them, and a fixed buffer would send
        // those kernels past the allocation.
        let act_bytes = config.act_buffer_bytes(config.max_seq);
        let act = gpu.alloc(act_bytes)?;
        let logits = gpu.alloc(config.vocab * config.dtype_bytes)?;
        Some(Gpt2Engine {
            config,
            gpu,
            wte,
            wpe,
            layer_weights,
            kv,
            act,
            act_bytes,
            logits,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &Gpt2Config {
        &self.config
    }

    /// Access to the underlying device (for meters and counters).
    pub fn gpu(&self) -> &GpuSim {
        &self.gpu
    }

    /// Mutable access to the device (idle periods, cache flushes).
    pub fn gpu_mut(&mut self) -> &mut GpuSim {
        &mut self.gpu
    }

    /// One matmul kernel over `tokens` rows: `x[tokens × in] · W[in × out]`.
    fn matmul(
        &mut self,
        name: &str,
        tokens: u64,
        weight: BufferId,
        w_off: u64,
        w_bytes: u64,
        out_bytes: u64,
    ) {
        let c = &self.config;
        let in_out = (w_bytes / c.dtype_bytes) as f64;
        let flops = 2.0 * tokens as f64 * in_out;
        let logical = w_bytes as f64 + flops * LOGICAL_BYTES_PER_FLOP;
        let act_bytes = tokens * c.d_model * c.dtype_bytes;
        let k = KernelDesc::new(name, flops, logical)
            .access(
                weight,
                w_off,
                w_bytes,
                AccessKind::Read,
                ReuseHint::Streaming,
            )
            .access(
                self.act,
                0,
                act_bytes,
                AccessKind::Read,
                ReuseHint::Temporal,
            )
            .access(
                self.act,
                act_bytes,
                out_bytes.min(self.act_bytes.saturating_sub(act_bytes)),
                AccessKind::Write,
                ReuseHint::Temporal,
            );
        self.gpu.launch(&k);
    }

    /// Attention for `new_tokens` fresh tokens against a context that ends
    /// at `ctx_end` (total tokens in cache after this step).
    fn attention(&mut self, layer: usize, new_tokens: u64, ctx_end: u64) {
        let c = &self.config;
        let kv_buf = self.kv[layer];
        let per_tok = c.kv_bytes_per_token_layer();
        // Causal attention FLOPs: each new token attends to its prefix.
        let first_ctx = ctx_end - new_tokens + 1;
        let avg_ctx = (first_ctx + ctx_end) as f64 / 2.0;
        let flops = new_tokens as f64 * 4.0 * avg_ctx * c.d_model as f64;
        let read_bytes = ctx_end * per_tok;
        let write_off = (ctx_end - new_tokens) * per_tok;
        let write_bytes = new_tokens * per_tok;
        let logical = read_bytes as f64 + flops * LOGICAL_BYTES_PER_FLOP;
        let k = KernelDesc::new("attention", flops, logical)
            .access(kv_buf, 0, read_bytes, AccessKind::Read, ReuseHint::Temporal)
            .access(
                kv_buf,
                write_off,
                write_bytes,
                AccessKind::Write,
                ReuseHint::Temporal,
            );
        self.gpu.launch(&k);
    }

    /// Embedding lookup for `tokens` rows (gather, tiny).
    fn embed(&mut self, tokens: u64) {
        let c = &self.config;
        let bytes = tokens * c.d_model * c.dtype_bytes;
        let k = KernelDesc::new("embed", 2.0 * bytes as f64, 2.0 * bytes as f64)
            .access(self.wte, 0, bytes, AccessKind::Read, ReuseHint::Temporal)
            .access(
                self.act,
                0,
                bytes.min(self.act_bytes),
                AccessKind::Write,
                ReuseHint::Temporal,
            );
        self.gpu.launch(&k);
    }

    /// LM head: hidden state of the last token against the full vocabulary.
    fn lm_head(&mut self) {
        let c = &self.config;
        let flops = c.lm_head_flops();
        let w_bytes = c.wte_bytes();
        let logical = w_bytes as f64 + flops * LOGICAL_BYTES_PER_FLOP;
        let k = KernelDesc::new("lm_head", flops, logical)
            .access(self.wte, 0, w_bytes, AccessKind::Read, ReuseHint::Streaming)
            .access(
                self.logits,
                0,
                c.vocab * c.dtype_bytes,
                AccessKind::Write,
                ReuseHint::Streaming,
            );
        self.gpu.launch(&k);
    }

    /// Runs one transformer layer for `new_tokens` ending at `ctx_end`.
    fn layer(&mut self, layer: usize, new_tokens: u64, ctx_end: u64) {
        let c = self.config.clone();
        let w = self.layer_weights[layer];
        let d_out = |cols: u64| new_tokens * cols * c.dtype_bytes;
        let mut off = 0;
        self.matmul(
            "qkv",
            new_tokens,
            w,
            off,
            c.w_attn_bytes(),
            d_out(3 * c.d_model),
        );
        off += c.w_attn_bytes();
        self.attention(layer, new_tokens, ctx_end);
        self.matmul(
            "proj",
            new_tokens,
            w,
            off,
            c.w_proj_bytes(),
            d_out(c.d_model),
        );
        off += c.w_proj_bytes();
        self.matmul("fc1", new_tokens, w, off, c.w_fc_bytes(), d_out(c.d_ff));
        off += c.w_fc_bytes();
        self.matmul("fc2", new_tokens, w, off, c.w_fc2_bytes(), d_out(c.d_model));
    }

    /// Autoregressive generation: prefill `prompt_len` tokens, then generate
    /// `gen_len` tokens. Returns the ground-truth report.
    ///
    /// An empty prompt is rejected: GPT-2 generation is conditioned on at
    /// least one token (HF pipelines insert a BOS token), and accepting
    /// `prompt_len == 0` would silently emit zero-token, zero-FLOP kernels
    /// through `embed(0)` and report a bogus near-zero energy.
    pub fn generate(&mut self, prompt_len: u64, gen_len: u64) -> GenerationReport {
        assert!(prompt_len >= 1, "prefill needs at least one prompt token");
        assert!(gen_len >= 1, "generate at least one token");
        // checked_add: `u64::MAX` prompt/gen lengths must trip this assert,
        // not wrap around and pass it.
        assert!(
            prompt_len
                .checked_add(gen_len)
                .is_some_and(|total| total <= self.config.max_seq),
            "sequence exceeds the model's context window"
        );
        let mut sp = ei_telemetry::span(ei_telemetry::SpanKind::Generate, &self.config.name);
        sp.add_items(gen_len);
        ei_telemetry::counter_add("llm.generated_tokens", gen_len);
        let e0 = self.gpu.energy();
        let c0 = self.gpu.counters();

        // Prefill.
        self.embed(prompt_len);
        for l in 0..self.config.n_layer as usize {
            self.layer(l, prompt_len, prompt_len);
        }
        self.lm_head(); // First generated token.

        let mut energy_per_token = vec![self.gpu.energy() - e0];

        // Decode steps for the remaining tokens.
        for step in 1..gen_len {
            let ctx_end = prompt_len + step;
            self.embed(1);
            for l in 0..self.config.n_layer as usize {
                self.layer(l, 1, ctx_end);
            }
            self.lm_head();
            energy_per_token.push(self.gpu.energy() - e0);
        }

        let c1 = self.gpu.counters();
        sp.record_energy((self.gpu.energy() - e0).as_joules());
        GenerationReport {
            prompt_len,
            gen_len,
            energy: self.gpu.energy() - e0,
            // Durations come from the integer nanosecond counter: an f64
            // `as_seconds()` subtraction would make the report depend on
            // how much work the device had already accumulated (the larger
            // the running sum, the fewer mantissa bits the delta keeps),
            // so replays would not be bit-stable.
            duration: elapsed_delta(&c1, &c0),
            counters: delta_counters(&c1, &c0),
            energy_per_token,
        }
    }
}

/// The elapsed time between two counter snapshots, derived from the exact
/// integer nanosecond counter (prefix-independent, bit-stable on replay).
pub(crate) fn elapsed_delta(c1: &GpuCounters, c0: &GpuCounters) -> TimeSpan {
    TimeSpan::seconds((c1.elapsed_ns - c0.elapsed_ns) as f64 / 1e9)
}

/// Counter deltas between two snapshots; `elapsed` is reconstructed from
/// the integer nanosecond delta rather than f64 subtraction.
pub(crate) fn delta_counters(c1: &GpuCounters, c0: &GpuCounters) -> GpuCounters {
    GpuCounters {
        instructions: c1.instructions - c0.instructions,
        l1_wavefronts: c1.l1_wavefronts - c0.l1_wavefronts,
        l2_sectors_read: c1.l2_sectors_read - c0.l2_sectors_read,
        l2_sectors_written: c1.l2_sectors_written - c0.l2_sectors_written,
        vram_sectors_read: c1.vram_sectors_read - c0.vram_sectors_read,
        vram_sectors_written: c1.vram_sectors_written - c0.vram_sectors_written,
        elapsed: TimeSpan::seconds((c1.elapsed_ns - c0.elapsed_ns) as f64 / 1e9),
        elapsed_ns: c1.elapsed_ns - c0.elapsed_ns,
        launches: c1.launches - c0.launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gpt2_small;
    use ei_hw::gpu::{rtx3070, rtx4090};

    fn engine(cfg: ei_hw::gpu::GpuConfig) -> Gpt2Engine {
        Gpt2Engine::new(gpt2_small(), GpuSim::new(cfg)).expect("model fits")
    }

    #[test]
    fn model_fits_both_gpus() {
        assert!(Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx4090())).is_some());
        assert!(Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx3070())).is_some());
    }

    #[test]
    fn generation_consumes_energy_monotonically() {
        let mut e = engine(rtx4090());
        let r = e.generate(16, 10);
        assert_eq!(r.energy_per_token.len(), 10);
        for w in r.energy_per_token.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(r.energy.as_joules() > 0.0);
        assert_eq!(
            r.energy_per_token.last().unwrap().as_joules(),
            r.energy.as_joules()
        );
    }

    #[test]
    fn longer_generation_costs_more() {
        let mut a = engine(rtx4090());
        let ra = a.generate(16, 5);
        let mut b = engine(rtx4090());
        let rb = b.generate(16, 50);
        assert!(rb.energy.as_joules() > 5.0 * ra.energy.as_joules());
    }

    #[test]
    fn weight_streaming_dominates_vram_traffic() {
        let mut e = engine(rtx4090());
        let r = e.generate(8, 4);
        // Per decode step the full weights (170 MB + 77 MB LM head) stream
        // from VRAM; KV cache stays in the 72 MB L2.
        let per_step_sectors =
            (12 * gpt2_small().layer_weight_bytes() + gpt2_small().wte_bytes()) / 32;
        let total = r.counters.vram_sectors_read;
        assert!(
            total as f64 > 3.0 * per_step_sectors as f64,
            "expected ≥ 3.5 steps of streaming, got {total} vs {per_step_sectors}/step"
        );
    }

    #[test]
    fn kv_cache_hits_l2_on_big_part_misses_on_small() {
        // Measure VRAM reads per decode step late in generation: the 3070's
        // 4 MB L2 cannot hold the 12-layer KV cache, the 4090's 72 MB can.
        let per_step_weights =
            (12 * gpt2_small().layer_weight_bytes() + gpt2_small().wte_bytes()) / 32;
        let extra = |cfg: ei_hw::gpu::GpuConfig| {
            let mut e = engine(cfg);
            let r = e.generate(64, 150);
            let steps = r.gen_len as f64;
            r.counters.vram_sectors_read as f64 / steps - per_step_weights as f64
        };
        let extra_4090 = extra(rtx4090());
        let extra_3070 = extra(rtx3070());
        assert!(
            extra_3070 > extra_4090 + 1000.0,
            "3070 must spill KV to VRAM: {extra_3070} vs {extra_4090}"
        );
    }

    #[test]
    fn counters_are_deterministic() {
        let mut a = engine(rtx4090());
        let mut b = engine(rtx4090());
        let ra = a.generate(16, 8);
        let rb = b.generate(16, 8);
        assert_eq!(ra.counters, rb.counters);
        assert_eq!(ra.energy, rb.energy);
    }

    #[test]
    fn context_window_enforced() {
        let mut e = engine(rtx4090());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.generate(1000, 100);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_prompt_is_rejected() {
        let mut e = engine(rtx4090());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.generate(0, 10);
        }));
        assert!(result.is_err(), "prompt_len == 0 must not silently no-op");
    }

    #[test]
    fn context_window_check_survives_adversarial_u64() {
        // prompt + gen wraps around u64: the old `prompt + gen <= max_seq`
        // would overflow to a small number and pass.
        let mut e = engine(rtx4090());
        for (p, g) in [(u64::MAX, 2), (2, u64::MAX), (u64::MAX, u64::MAX)] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                e.generate(p, g);
            }));
            assert!(result.is_err(), "({p}, {g}) must be rejected");
        }
    }

    #[test]
    fn full_context_prefill_stays_in_bounds() {
        // Regression for the fixed 4 MiB activation buffer: a max-width
        // prefill (1024 tokens × (d_model + d_ff) × 2 B ≈ 7.9 MB) used to
        // write past it; the GpuSim debug bounds assert now proves the
        // resized buffer holds every kernel.
        let mut e = engine(rtx4090());
        let max = e.config().max_seq;
        let r = e.generate(max - 1, 1);
        assert_eq!(r.gen_len, 1);
        assert!(r.energy.as_joules() > 0.0);
    }

    #[test]
    fn report_deltas_are_prefix_independent() {
        // A device that has already accumulated a huge f64 elapsed sum must
        // report bit-identical durations for identical work. The old
        // `as_seconds()` subtraction lost mantissa bits to the prefix.
        let fresh = engine(rtx4090()).generate(16, 8);
        let mut warm = engine(rtx4090());
        warm.gpu_mut().idle(TimeSpan::seconds(1.0e7));
        let replay = warm.generate(16, 8);
        assert_eq!(
            fresh.duration.as_seconds().to_bits(),
            replay.duration.as_seconds().to_bits(),
            "duration must come from integer counter deltas"
        );
        assert_eq!(
            fresh.counters.elapsed.as_seconds().to_bits(),
            replay.counters.elapsed.as_seconds().to_bits()
        );
        assert_eq!(fresh.counters.elapsed_ns, replay.counters.elapsed_ns);
        assert_eq!(fresh.counters.launches, replay.counters.launches);
    }
}
