//! The batch-aware energy/latency interface for GPT-2 serving (E12).
//!
//! Extends the single-stream interface of [`crate::interface`] along the
//! three configuration axes an operator actually controls:
//!
//! - `batch_size` — concurrent sequences in the running batch (fresh rows
//!   per decode iteration);
//! - `context_len` — per-sequence context length at a decode iteration;
//! - `gpu_freq` — the DVFS graphics-clock fraction granted by the device.
//!
//! All three are declared as ECVs, so an operator can pin an operating
//! point and ask for exact energy, or leave them distributed and ask for
//! expectations — exactly the workflow of §3. Every `e_*` function has a
//! `t_*` twin returning the iteration *duration* as an abstract `sec`-unit
//! result through the hardware's `gpu_time_f`, which is how the E12 Pareto
//! frontier gets its latency axis from the interface rather than from the
//! simulator.
//!
//! The hardware side is an extern pair `gpu_kernel_f` / `gpu_time_f`
//! provided either by the vendor ([`ei_hw::interfaces::gpu_interface_dvfs`]
//! — exact) or by the `ei-extract` microbenchmark campaign (fitted — what
//! E12 actually uses). Analytic assumptions mirror the single-stream
//! interface: KV cache and activations stay L2-resident, weights stream,
//! the device runs at cold clocks.

use ei_core::interface::{InputSpec, Interface};
use ei_core::parser::parse;

use crate::engine::LOGICAL_BYTES_PER_FLOP;
use crate::model::Gpt2Config;

/// Builds the batch-aware GPT-2 serving interface for a model config.
///
/// Entry points (per *iteration* of the continuous-batching engine):
/// - `e_step()` / `t_step()` — decode iteration at the ECV operating point;
/// - `e_decode_iter(batch, ctx, freq)` / `t_decode_iter` — decode iteration,
///   explicit operating point;
/// - `e_prefill_iter(batch, p, freq)` / `t_prefill_iter` — a lockstep
///   prefill iteration over `batch` prompts of `p` tokens;
/// - `e_wave(batch, p, g, freq)` / `t_wave` — a whole lockstep wave:
///   prefill plus `g - 1` decode iterations.
pub fn gpt2_batch_interface(c: &Gpt2Config) -> Interface {
    let d = c.d_model;
    let dtype = c.dtype_bytes;
    let src = format!(
        r#"
        interface {name}_batch "batch-aware energy/latency interface for {name} serving" {{
            extern fn gpu_kernel_f(flops, logical_bytes, l2_sectors, vram_sectors, freq)
                "DVFS-aware hardware energy interface (vendor or fitted)";
            extern fn gpu_time_f(flops, vram_sectors, freq)
                "DVFS-aware kernel duration, as an abstract sec-unit result";
            extern fn gpu_idle(seconds) "static power over a duration";

            ecv batch_size: discrete(1: 0.25, 2: 0.25, 4: 0.25, 8: 0.25)
                "concurrent sequences in the running batch";
            ecv context_len: uniform(1, {max_seq})
                "per-sequence context length at a decode iteration";
            ecv gpu_freq: discrete(0.5: 0.2, 0.625: 0.2, 0.75: 0.2, 0.875: 0.2, 1: 0.2)
                "graphics-clock fraction granted by DVFS";

            fn e_step() "energy of one decode iteration at the ECV operating point" {{
                return e_decode_iter(batch_size, context_len, gpu_freq);
            }}

            fn t_step() "duration of one decode iteration at the ECV operating point" {{
                return t_decode_iter(batch_size, context_len, gpu_freq);
            }}

            fn e_wave(batch, p, g, freq) "lockstep wave: prefill then g-1 decode iterations" {{
                let e = e_prefill_iter(batch, p, freq);
                for t in 1..g {{
                    e = e + e_decode_iter(batch, p + t, freq);
                }}
                return e;
            }}

            fn t_wave(batch, p, g, freq) "busy time of a lockstep wave" {{
                let t_total = t_prefill_iter(batch, p, freq);
                for t in 1..g {{
                    t_total = t_total + t_decode_iter(batch, p + t, freq);
                }}
                return t_total;
            }}

            fn e_prefill_iter(batch, p, freq) "batch prompts of p tokens prefill together" {{
                return e_embed(batch * p, freq)
                     + {n_layer} * (e_matmul(batch * p, {w_attn}, {out_attn}, freq)
                                  + batch * e_attention(p, p, freq)
                                  + e_matmul(batch * p, {w_proj}, {out_d}, freq)
                                  + e_matmul(batch * p, {w_fc}, {out_ff}, freq)
                                  + e_matmul(batch * p, {w_fc2}, {out_d}, freq))
                     + e_lm_head(batch, freq);
            }}

            fn t_prefill_iter(batch, p, freq) "duration of a lockstep prefill iteration" {{
                return t_embed(batch * p, freq)
                     + {n_layer} * (t_matmul(batch * p, {w_attn}, freq)
                                  + batch * t_attention(p, p, freq)
                                  + t_matmul(batch * p, {w_proj}, freq)
                                  + t_matmul(batch * p, {w_fc}, freq)
                                  + t_matmul(batch * p, {w_fc2}, freq))
                     + t_lm_head(batch, freq);
            }}

            fn e_decode_iter(batch, ctx, freq) "one decode token per sequence at context ctx" {{
                return e_embed(batch, freq)
                     + {n_layer} * (e_matmul(batch, {w_attn}, {out_attn}, freq)
                                  + batch * e_attention(1, ctx, freq)
                                  + e_matmul(batch, {w_proj}, {out_d}, freq)
                                  + e_matmul(batch, {w_fc}, {out_ff}, freq)
                                  + e_matmul(batch, {w_fc2}, {out_d}, freq))
                     + e_lm_head(batch, freq);
            }}

            fn t_decode_iter(batch, ctx, freq) "duration of one decode iteration" {{
                return t_embed(batch, freq)
                     + {n_layer} * (t_matmul(batch, {w_attn}, freq)
                                  + batch * t_attention(1, ctx, freq)
                                  + t_matmul(batch, {w_proj}, freq)
                                  + t_matmul(batch, {w_fc}, freq)
                                  + t_matmul(batch, {w_fc2}, freq))
                     + t_lm_head(batch, freq);
            }}

            fn e_matmul(tokens, w_bytes, out_row_bytes, freq) "x[tokens x in] . W" {{
                let flops = 2 * tokens * (w_bytes / {dtype});
                let logical = w_bytes + flops * {lbpf};
                let act = tokens * {act_row};
                let out = tokens * out_row_bytes;
                let l2 = ceil(w_bytes / 32) + ceil(act / 32) + ceil(out / 32);
                let vram = ceil(w_bytes / 32);
                return gpu_kernel_f(flops, logical, l2, vram, freq);
            }}

            fn t_matmul(tokens, w_bytes, freq) "matmul duration (weights stream)" {{
                let flops = 2 * tokens * (w_bytes / {dtype});
                return gpu_time_f(flops, ceil(w_bytes / 32), freq);
            }}

            fn e_attention(tokens, ctx_end, freq) "causal attention over one KV region" {{
                let first_ctx = ctx_end - tokens + 1;
                let avg_ctx = (first_ctx + ctx_end) / 2;
                let flops = tokens * 4 * avg_ctx * {d};
                let read = ctx_end * {kv_per_tok};
                let write = tokens * {kv_per_tok};
                let logical = read + flops * {lbpf};
                let l2 = ceil(read / 32) + ceil(write / 32);
                // ASSUMPTION: the KV cache stays resident in L2.
                return gpu_kernel_f(flops, logical, l2, 0, freq);
            }}

            fn t_attention(tokens, ctx_end, freq) "attention duration (L2-resident)" {{
                let first_ctx = ctx_end - tokens + 1;
                let avg_ctx = (first_ctx + ctx_end) / 2;
                let flops = tokens * 4 * avg_ctx * {d};
                return gpu_time_f(flops, 0, freq);
            }}

            fn e_embed(tokens, freq) "token + position embedding gather" {{
                let bytes = tokens * {act_row};
                let l2 = ceil(bytes / 32) + ceil(bytes / 32);
                return gpu_kernel_f(2 * bytes, 2 * bytes, l2, 0, freq);
            }}

            fn t_embed(tokens, freq) "embedding duration (cache-resident)" {{
                return gpu_time_f(2 * tokens * {act_row}, 0, freq);
            }}

            fn e_lm_head(rows, freq) "one logits row per live sequence" {{
                let flops = rows * {lm_flops};
                let logical = {wte} + flops * {lbpf};
                let logits = rows * {logits_row};
                let l2 = ceil({wte} / 32) + ceil(logits / 32);
                let vram = ceil({wte} / 32) + ceil(logits / 32);
                return gpu_kernel_f(flops, logical, l2, vram, freq);
            }}

            fn t_lm_head(rows, freq) "LM-head duration (weights + logits stream)" {{
                let flops = rows * {lm_flops};
                let vram = ceil({wte} / 32) + ceil(rows * {logits_row} / 32);
                return gpu_time_f(flops, vram, freq);
            }}

            fn e_idle(seconds) "idle-state input: time with no work" {{
                return gpu_idle(seconds);
            }}
        }}
        "#,
        name = c.name.replace('-', "_"),
        max_seq = c.max_seq,
        n_layer = c.n_layer,
        w_attn = c.w_attn_bytes(),
        w_proj = c.w_proj_bytes(),
        w_fc = c.w_fc_bytes(),
        w_fc2 = c.w_fc2_bytes(),
        out_attn = 3 * d * dtype,
        out_d = d * dtype,
        out_ff = c.d_ff * dtype,
        act_row = d * dtype,
        kv_per_tok = c.kv_bytes_per_token_layer(),
        d = d,
        lbpf = LOGICAL_BYTES_PER_FLOP,
        lm_flops = c.lm_head_flops(),
        wte = c.wte_bytes(),
        logits_row = c.vocab * dtype,
        dtype = dtype,
    );
    let mut iface = parse(&src).expect("generated batch interface must parse");
    let wave_spec = InputSpec::new()
        .range("batch", 1.0, 16.0)
        .range("p", 1.0, 256.0)
        .range("g", 1.0, 200.0)
        .range("freq", 0.1, 1.0);
    iface.set_input_spec("e_wave", wave_spec.clone());
    iface.set_input_spec("t_wave", wave_spec);
    iface
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchConfig, BatchRequest, Gpt2BatchEngine};
    use crate::model::{gpt2_medium, gpt2_small};
    use ei_core::compose::link;
    use ei_core::ecv::EcvEnv;
    use ei_core::interp::{evaluate_energy, EvalConfig};
    use ei_core::units::{Calibration, Energy};
    use ei_core::value::Value;
    use ei_hw::gpu::{rtx4090, GpuSim};
    use ei_hw::interfaces::gpu_interface_dvfs;

    fn linked() -> ei_core::interface::Interface {
        link(
            &gpt2_batch_interface(&gpt2_small()),
            &[&gpu_interface_dvfs(&rtx4090())],
        )
        .unwrap()
    }

    fn ecfg() -> EvalConfig {
        EvalConfig {
            fuel: 200_000_000,
            ..EvalConfig::default()
        }
    }

    fn tcfg() -> EvalConfig {
        EvalConfig {
            fuel: 200_000_000,
            calibration: Calibration::from_pairs([("sec", Energy::joules(1.0))]),
            ..EvalConfig::default()
        }
    }

    #[test]
    fn interface_parses_with_the_three_ecvs() {
        let i = gpt2_batch_interface(&gpt2_small());
        assert!(i.ecvs.contains_key("batch_size"));
        assert!(i.ecvs.contains_key("context_len"));
        assert!(i.ecvs.contains_key("gpu_freq"));
        assert!(!i.is_closed());
        let m = gpt2_batch_interface(&gpt2_medium());
        assert!(m.name.contains("gpt2_medium"));
    }

    #[test]
    fn wave_prediction_tracks_ground_truth_on_big_l2_part() {
        // Lockstep wave of 4 sequences: interface vs the batch engine on a
        // 4090 at nominal clock must agree within the Table 1 ballpark.
        let (batch, p, g) = (4u64, 16u64, 12u64);
        let iface = linked();
        let pred = evaluate_energy(
            &iface,
            "e_wave",
            &[
                Value::Num(batch as f64),
                Value::Num(p as f64),
                Value::Num(g as f64),
                Value::Num(1.0),
            ],
            &EcvEnv::new(),
            0,
            &ecfg(),
        )
        .unwrap()
        .as_joules();
        let cfg = BatchConfig::for_batch(gpt2_small(), batch as usize, p + g);
        let mut engine = Gpt2BatchEngine::new(cfg, GpuSim::new(rtx4090())).unwrap();
        let truth = engine
            .run(&vec![
                BatchRequest {
                    prompt_len: p,
                    gen_len: g,
                };
                batch as usize
            ])
            .energy
            .as_joules();
        let rel = (pred - truth).abs() / truth;
        assert!(rel < 0.05, "rel err {rel} (pred {pred}, true {truth})");
    }

    #[test]
    fn wave_duration_tracks_ground_truth() {
        let (batch, p, g) = (4u64, 16u64, 12u64);
        let iface = linked();
        let pred_s = evaluate_energy(
            &iface,
            "t_wave",
            &[
                Value::Num(batch as f64),
                Value::Num(p as f64),
                Value::Num(g as f64),
                Value::Num(1.0),
            ],
            &EcvEnv::new(),
            0,
            &tcfg(),
        )
        .unwrap()
        .as_joules();
        let cfg = BatchConfig::for_batch(gpt2_small(), batch as usize, p + g);
        let mut engine = Gpt2BatchEngine::new(cfg, GpuSim::new(rtx4090())).unwrap();
        let truth_s = engine
            .run(&vec![
                BatchRequest {
                    prompt_len: p,
                    gen_len: g,
                };
                batch as usize
            ])
            .duration
            .as_seconds();
        let rel = (pred_s - truth_s).abs() / truth_s;
        assert!(
            rel < 0.05,
            "rel err {rel} (pred {pred_s}s, true {truth_s}s)"
        );
    }

    #[test]
    fn pinned_ecv_step_equals_explicit_args() {
        let iface = linked();
        let mut env = EcvEnv::from_decls(&iface.ecvs);
        env.pin_num("batch_size", 4.0);
        env.pin_num("context_len", 40.0);
        env.pin_num("gpu_freq", 0.75);
        let via_ecv = evaluate_energy(&iface, "e_step", &[], &env, 7, &ecfg())
            .unwrap()
            .as_joules();
        let explicit = evaluate_energy(
            &iface,
            "e_decode_iter",
            &[Value::Num(4.0), Value::Num(40.0), Value::Num(0.75)],
            &EcvEnv::new(),
            0,
            &ecfg(),
        )
        .unwrap()
        .as_joules();
        assert_eq!(via_ecv.to_bits(), explicit.to_bits());
    }

    #[test]
    fn downclocking_cuts_decode_energy_at_equal_batch() {
        let iface = linked();
        let e = |freq: f64| {
            evaluate_energy(
                &iface,
                "e_decode_iter",
                &[Value::Num(8.0), Value::Num(40.0), Value::Num(freq)],
                &EcvEnv::new(),
                0,
                &ecfg(),
            )
            .unwrap()
            .as_joules()
        };
        // Decode is memory/floor-bound, so a lower clock saves dynamic
        // energy without stretching the iteration much.
        assert!(e(0.5) < e(1.0));
    }

    #[test]
    fn prefill_duration_is_clock_sensitive() {
        let iface = linked();
        let t = |freq: f64| {
            evaluate_energy(
                &iface,
                "t_prefill_iter",
                &[Value::Num(8.0), Value::Num(16.0), Value::Num(freq)],
                &EcvEnv::new(),
                0,
                &tcfg(),
            )
            .unwrap()
            .as_joules()
        };
        // Batched prefill is compute-bound: halving the clock must stretch
        // the iteration noticeably (this is what the SLO bound prices).
        assert!(t(0.5) > 1.3 * t(1.0), "{} vs {}", t(0.5), t(1.0));
    }

    #[test]
    fn pretty_printed_interface_round_trips() {
        let text = ei_core::pretty::print_interface(&gpt2_batch_interface(&gpt2_small()));
        assert!(text.contains("ecv batch_size"));
        let again = ei_core::parser::parse(&text).unwrap();
        assert_eq!(
            again.fns.len(),
            gpt2_batch_interface(&gpt2_small()).fns.len()
        );
    }
}
