//! # ei-llm: GPT-2 inference workload and its energy interface
//!
//! The paper's §5 experiment: "we used the energy interface to predict the
//! LLM's energy consumption on autoregressive text generation for up to 200
//! tokens, and compared it to the actual energy consumption." This crate
//! provides both sides:
//!
//! - [`engine::Gpt2Engine`]: the ground truth — the exact kernel stream of
//!   GPT-2 generation executed on the simulated GPU (`ei-hw`), with the KV
//!   cache living or dying in the simulated L2;
//! - [`interface::gpt2_interface`]: the manually-derived EIL energy
//!   interface, which predicts the same run analytically via an extern
//!   hardware interface.

//! - [`batch::Gpt2BatchEngine`]: continuous-batching serving over the same
//!   kernel stream (iteration-level scheduling, KV admission control), the
//!   ground truth of the E12 Pareto experiment;
//! - [`batch_interface::gpt2_batch_interface`]: the batch-aware interface
//!   (`batch_size`, `context_len`, `gpu_freq` ECVs) predicting per-iteration
//!   energy *and* duration through a DVFS-aware hardware interface.

pub mod batch;
pub mod batch_interface;
pub mod engine;
pub mod interface;
pub mod model;

pub use batch::{Admission, BatchConfig, BatchReport, BatchRequest, Gpt2BatchEngine};
pub use batch_interface::gpt2_batch_interface;
pub use engine::{GenerationReport, Gpt2Engine};
pub use interface::gpt2_interface;
pub use model::{gpt2_medium, gpt2_small, Gpt2Config};
