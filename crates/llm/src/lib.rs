//! # ei-llm: GPT-2 inference workload and its energy interface
//!
//! The paper's §5 experiment: "we used the energy interface to predict the
//! LLM's energy consumption on autoregressive text generation for up to 200
//! tokens, and compared it to the actual energy consumption." This crate
//! provides both sides:
//!
//! - [`engine::Gpt2Engine`]: the ground truth — the exact kernel stream of
//!   GPT-2 generation executed on the simulated GPU (`ei-hw`), with the KV
//!   cache living or dying in the simulated L2;
//! - [`interface::gpt2_interface`]: the manually-derived EIL energy
//!   interface, which predicts the same run analytically via an extern
//!   hardware interface.

pub mod engine;
pub mod interface;
pub mod model;

pub use engine::{GenerationReport, Gpt2Engine};
pub use interface::gpt2_interface;
pub use model::{gpt2_medium, gpt2_small, Gpt2Config};
