//! GPT-2 model configurations and derived size arithmetic.
//!
//! Only the *shapes* matter for energy: parameter counts, per-layer weight
//! bytes, FLOPs per token, and KV-cache growth. We mirror the HuggingFace
//! GPT-2 family that the paper's §5 experiment uses.

use serde::{Deserialize, Serialize};

/// A GPT-2 architecture configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpt2Config {
    /// Config name ("gpt2", "gpt2-medium", ...).
    pub name: String,
    /// Transformer layers.
    pub n_layer: u32,
    /// Attention heads.
    pub n_head: u32,
    /// Hidden width.
    pub d_model: u64,
    /// Feed-forward width (4 × d_model for GPT-2).
    pub d_ff: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Maximum sequence length.
    pub max_seq: u64,
    /// Bytes per parameter / activation element (2 = fp16).
    pub dtype_bytes: u64,
}

/// GPT-2 (124M), the model of the paper's Table 1.
pub fn gpt2_small() -> Gpt2Config {
    Gpt2Config {
        name: "gpt2".into(),
        n_layer: 12,
        n_head: 12,
        d_model: 768,
        d_ff: 3072,
        vocab: 50257,
        max_seq: 1024,
        dtype_bytes: 2,
    }
}

/// GPT-2 medium (355M), used by the scaling sweeps.
pub fn gpt2_medium() -> Gpt2Config {
    Gpt2Config {
        name: "gpt2-medium".into(),
        n_layer: 24,
        n_head: 16,
        d_model: 1024,
        d_ff: 4096,
        vocab: 50257,
        max_seq: 1024,
        dtype_bytes: 2,
    }
}

impl Gpt2Config {
    /// Bytes of the QKV projection weight (d × 3d).
    pub fn w_attn_bytes(&self) -> u64 {
        self.d_model * 3 * self.d_model * self.dtype_bytes
    }

    /// Bytes of the attention output projection weight (d × d).
    pub fn w_proj_bytes(&self) -> u64 {
        self.d_model * self.d_model * self.dtype_bytes
    }

    /// Bytes of the MLP up-projection weight (d × d_ff).
    pub fn w_fc_bytes(&self) -> u64 {
        self.d_model * self.d_ff * self.dtype_bytes
    }

    /// Bytes of the MLP down-projection weight (d_ff × d).
    pub fn w_fc2_bytes(&self) -> u64 {
        self.d_ff * self.d_model * self.dtype_bytes
    }

    /// Total weight bytes of one transformer layer.
    pub fn layer_weight_bytes(&self) -> u64 {
        self.w_attn_bytes() + self.w_proj_bytes() + self.w_fc_bytes() + self.w_fc2_bytes()
    }

    /// Bytes of the token-embedding matrix (also the LM head).
    pub fn wte_bytes(&self) -> u64 {
        self.vocab * self.d_model * self.dtype_bytes
    }

    /// Bytes of the positional-embedding matrix.
    pub fn wpe_bytes(&self) -> u64 {
        self.max_seq * self.d_model * self.dtype_bytes
    }

    /// KV-cache bytes per token per layer (one K row + one V row).
    pub fn kv_bytes_per_token_layer(&self) -> u64 {
        2 * self.d_model * self.dtype_bytes
    }

    /// KV-cache buffer bytes for one layer at max sequence length.
    pub fn kv_layer_buffer_bytes(&self) -> u64 {
        self.max_seq * self.kv_bytes_per_token_layer()
    }

    /// Activation-buffer bytes needed for a step over `tokens` rows: the
    /// resident hidden states (`tokens × d_model`) plus the widest matmul
    /// output written behind them (`tokens × d_ff`, the fc1 expansion).
    /// The engine sizes its activation buffer from this at the *maximum*
    /// step width, so no kernel ever writes past the allocation.
    pub fn act_buffer_bytes(&self, tokens: u64) -> u64 {
        tokens * (self.d_model + self.d_ff) * self.dtype_bytes
    }

    /// Total parameter count (approximate; matches the 124M/355M naming).
    pub fn param_count(&self) -> u64 {
        let per_layer = self.layer_weight_bytes() / self.dtype_bytes;
        self.n_layer as u64 * per_layer
            + self.wte_bytes() / self.dtype_bytes
            + self.wpe_bytes() / self.dtype_bytes
    }

    /// FLOPs of the per-layer matmuls for a single token.
    pub fn layer_matmul_flops(&self) -> f64 {
        let d = self.d_model as f64;
        let ff = self.d_ff as f64;
        2.0 * d * 3.0 * d  // qkv
            + 2.0 * d * d  // proj
            + 2.0 * d * ff // fc1
            + 2.0 * ff * d // fc2
    }

    /// Attention FLOPs for one new token against a context of `ctx` tokens.
    pub fn attention_flops(&self, ctx: u64) -> f64 {
        // QK^T and AV, both 2 * ctx * d.
        4.0 * ctx as f64 * self.d_model as f64
    }

    /// LM-head FLOPs (hidden state × vocabulary).
    pub fn lm_head_flops(&self) -> f64 {
        2.0 * self.d_model as f64 * self.vocab as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_small_is_124m() {
        let c = gpt2_small();
        let m = c.param_count() as f64 / 1e6;
        assert!((m - 124.0).abs() < 5.0, "params = {m}M");
    }

    #[test]
    fn gpt2_medium_is_355m() {
        let c = gpt2_medium();
        let m = c.param_count() as f64 / 1e6;
        assert!((m - 355.0).abs() < 15.0, "params = {m}M");
    }

    #[test]
    fn layer_weight_bytes_gpt2() {
        let c = gpt2_small();
        // 768*2304 + 768*768 + 768*3072 + 3072*768 = 7.08M params * 2 B.
        assert_eq!(c.layer_weight_bytes(), 7_077_888 * 2);
    }

    #[test]
    fn kv_cache_growth() {
        let c = gpt2_small();
        assert_eq!(c.kv_bytes_per_token_layer(), 3072);
        // 200 tokens × 12 layers ≈ 7.4 MB: fits a 72 MB L2, thrashes 4 MB.
        let kv_200 = 200 * c.kv_bytes_per_token_layer() * c.n_layer as u64;
        assert!(kv_200 > 4 << 20);
        assert!(kv_200 < 72 << 20);
    }

    #[test]
    fn flop_counts() {
        let c = gpt2_small();
        // Per-token matmul flops ≈ 2 * params-per-layer.
        let per_layer_params = (c.layer_weight_bytes() / c.dtype_bytes) as f64;
        assert!((c.layer_matmul_flops() - 2.0 * per_layer_params).abs() < 1.0);
        assert!(c.attention_flops(100) > 0.0);
        assert!((c.lm_head_flops() - 2.0 * 768.0 * 50257.0).abs() < 1.0);
    }
}
