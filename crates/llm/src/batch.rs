//! Continuous-batching GPT-2 serving on the simulated GPU.
//!
//! Iteration-level scheduling in the vLLM/Orca style: the engine keeps a
//! running batch of sequences and, every iteration, admits queued prompts
//! into it, runs *one* model pass over all fresh tokens (a prefill over the
//! whole prompt for just-admitted sequences, one decode token for the
//! rest — mixed in the same kernels), and retires sequences that have
//! produced their last token. Admission is gated by the per-layer KV-cache
//! buffers: a request is admitted only when a contiguous region of
//! `prompt_len + gen_len` token slots is free in every layer, queued while
//! it could fit later, and rejected when it can never fit (or the queue is
//! full).
//!
//! This is the ground-truth side of E12: every kernel is executed on the
//! simulated GPU, so energies, cache behaviour, and step durations come
//! from the device, not from a model. Durations are tracked through the
//! integer nanosecond counter, making reports bit-stable on replay.

use ei_core::units::{Energy, TimeSpan};
use ei_hw::cache::{AccessKind, BufferId, ReuseHint};
use ei_hw::gpu::{GpuCounters, GpuSim, KernelDesc};

use crate::engine::{delta_counters, elapsed_delta, LOGICAL_BYTES_PER_FLOP};
use crate::model::Gpt2Config;

/// Engine-level configuration of the batching serve loop.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Model architecture.
    pub model: Gpt2Config,
    /// Maximum concurrent sequences in the running batch.
    pub max_batch: usize,
    /// Per-layer KV-cache capacity, in token slots shared by the batch.
    pub kv_slot_tokens: u64,
    /// Waiting-queue capacity; submissions beyond it are rejected.
    pub queue_depth: usize,
}

impl BatchConfig {
    /// A capacity sized for `max_batch` sequences of up to `seq_tokens`
    /// tokens each (the natural closed-workload shape).
    pub fn for_batch(model: Gpt2Config, max_batch: usize, seq_tokens: u64) -> Self {
        BatchConfig {
            model,
            max_batch,
            kv_slot_tokens: max_batch as u64 * seq_tokens,
            queue_depth: 1024,
        }
    }
}

/// One generation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRequest {
    /// Prompt tokens to prefill.
    pub prompt_len: u64,
    /// Tokens to generate (≥ 1).
    pub gen_len: u64,
}

/// What `submit` did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Entered the waiting queue (admission into the batch happens at the
    /// next iteration boundary where its KV reservation fits).
    Queued,
    /// Dropped: the request can never fit (degenerate or larger than the
    /// KV capacity / context window) or the queue is full.
    Rejected,
}

/// A sequence currently in the running batch.
#[derive(Debug, Clone)]
struct ActiveSeq {
    /// Submission index (stable identity for tests/traces).
    id: u64,
    prompt_len: u64,
    gen_len: u64,
    /// First token slot of this sequence's KV reservation (per layer).
    kv_slot: u64,
    /// Token slots reserved (prompt + gen).
    kv_len: u64,
    /// Tokens currently in the KV cache (0 until its prefill runs).
    ctx: u64,
    /// Tokens produced so far.
    produced: u64,
}

/// Aggregate report of a batched serve.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted into the batch.
    pub admitted: u64,
    /// Requests rejected at submission.
    pub rejected: u64,
    /// Requests that produced all their tokens.
    pub completed: u64,
    /// Engine iterations executed.
    pub steps: u64,
    /// Tokens generated.
    pub tokens: u64,
    /// True total energy over the serve.
    pub energy: Energy,
    /// Busy time over the serve (from integer counter deltas).
    pub duration: TimeSpan,
    /// Device counter deltas over the serve.
    pub counters: GpuCounters,
    /// Duration of every iteration that ran at least one prefill, ns.
    pub prefill_step_ns: Vec<u64>,
    /// Duration of every pure-decode iteration, ns.
    pub decode_step_ns: Vec<u64>,
    /// Per generated token: the duration (ns) of the iteration that
    /// produced it. First tokens inherit their prefill iteration, the rest
    /// their decode iteration — the pool p50/p99 token latency is over.
    pub token_latency_ns: Vec<u64>,
}

/// The continuous-batching engine.
#[derive(Debug)]
pub struct Gpt2BatchEngine {
    config: BatchConfig,
    gpu: GpuSim,
    wte: BufferId,
    #[allow(dead_code)]
    wpe: BufferId,
    layer_weights: Vec<BufferId>,
    kv: Vec<BufferId>,
    act: BufferId,
    act_bytes: u64,
    logits: BufferId,
    /// Running batch, in admission order.
    active: Vec<ActiveSeq>,
    /// FIFO admission queue.
    queue: std::collections::VecDeque<ActiveSeq>,
    /// Free KV regions as `(first_slot, len)`, sorted, coalesced.
    free: Vec<(u64, u64)>,
    next_id: u64,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    tokens: u64,
}

impl Gpt2BatchEngine {
    /// Loads the model and KV pool onto a device; `None` when VRAM is
    /// insufficient. Buffer layout matches [`crate::Gpt2Engine`] so a
    /// batch of one replays the single-stream cache behaviour exactly.
    pub fn new(config: BatchConfig, mut gpu: GpuSim) -> Option<Self> {
        let m = &config.model;
        let wte = gpu.alloc(m.wte_bytes())?;
        let wpe = gpu.alloc(m.wpe_bytes())?;
        let mut layer_weights = Vec::new();
        let mut kv = Vec::new();
        for _ in 0..m.n_layer {
            layer_weights.push(gpu.alloc(m.layer_weight_bytes())?);
            kv.push(gpu.alloc(config.kv_slot_tokens * m.kv_bytes_per_token_layer())?);
        }
        // Widest possible iteration: every KV slot holds a fresh token
        // (an all-prefill batch filling the pool).
        let act_bytes = m.act_buffer_bytes(config.kv_slot_tokens);
        let act = gpu.alloc(act_bytes)?;
        let logits = gpu.alloc(config.max_batch as u64 * m.vocab * m.dtype_bytes)?;
        let free = vec![(0, config.kv_slot_tokens)];
        Some(Gpt2BatchEngine {
            config,
            gpu,
            wte,
            wpe,
            layer_weights,
            kv,
            act,
            act_bytes,
            logits,
            active: Vec::new(),
            queue: std::collections::VecDeque::new(),
            free,
            next_id: 0,
            submitted: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            tokens: 0,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Access to the underlying device.
    pub fn gpu(&self) -> &GpuSim {
        &self.gpu
    }

    /// Mutable access to the device (DVFS, idle periods).
    pub fn gpu_mut(&mut self) -> &mut GpuSim {
        &mut self.gpu
    }

    /// Sequences currently in the running batch.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Requests waiting for a KV reservation.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Submits a request. Impossible requests (empty prompt, zero tokens,
    /// longer than the context window or the whole KV pool, overflowing
    /// lengths) are rejected immediately, as are any once the queue is
    /// full; everything else queues FIFO.
    pub fn submit(&mut self, req: BatchRequest) -> Admission {
        self.submitted += 1;
        let total = req.prompt_len.checked_add(req.gen_len);
        let fits_ever = req.prompt_len >= 1
            && req.gen_len >= 1
            && total
                .is_some_and(|t| t <= self.config.model.max_seq && t <= self.config.kv_slot_tokens);
        if !fits_ever || self.queue.len() >= self.config.queue_depth {
            self.rejected += 1;
            ei_telemetry::counter_add("llm.batch.rejected", 1);
            return Admission::Rejected;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(ActiveSeq {
            id,
            prompt_len: req.prompt_len,
            gen_len: req.gen_len,
            kv_slot: 0,
            kv_len: req.prompt_len + req.gen_len,
            ctx: 0,
            produced: 0,
        });
        Admission::Queued
    }

    /// Reserves a contiguous KV region (first fit); `None` when fragmented
    /// or full.
    fn reserve(&mut self, slots: u64) -> Option<u64> {
        let idx = self.free.iter().position(|&(_, len)| len >= slots)?;
        let (start, len) = self.free[idx];
        if len == slots {
            self.free.remove(idx);
        } else {
            self.free[idx] = (start + slots, len - slots);
        }
        Some(start)
    }

    /// Returns a KV region to the free list, coalescing neighbours.
    fn release(&mut self, start: u64, slots: u64) {
        let idx = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(idx, (start, slots));
        // Coalesce right then left.
        if idx + 1 < self.free.len() && self.free[idx].0 + self.free[idx].1 == self.free[idx + 1].0
        {
            self.free[idx].1 += self.free[idx + 1].1;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].0 + self.free[idx - 1].1 == self.free[idx].0 {
            self.free[idx - 1].1 += self.free[idx].1;
            self.free.remove(idx);
        }
    }

    /// Admits queued requests (FIFO, head-of-line blocking) while the
    /// batch has a seat and a contiguous KV reservation fits.
    fn admit(&mut self) {
        while self.active.len() < self.config.max_batch {
            let Some(head) = self.queue.front() else {
                break;
            };
            let slots = head.kv_len;
            let Some(start) = self.reserve(slots) else {
                break;
            };
            let mut seq = self.queue.pop_front().expect("front exists");
            seq.kv_slot = start;
            self.active.push(seq);
            self.admitted += 1;
            ei_telemetry::counter_add("llm.batch.admitted", 1);
        }
    }

    /// True when no work remains (running batch and queue both empty).
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.queue.is_empty()
    }

    /// One matmul over `tokens` fresh rows (batched across sequences).
    fn matmul(
        &mut self,
        name: &str,
        tokens: u64,
        weight: BufferId,
        w_off: u64,
        w_bytes: u64,
        out_bytes: u64,
    ) {
        let m = &self.config.model;
        let in_out = (w_bytes / m.dtype_bytes) as f64;
        let flops = 2.0 * tokens as f64 * in_out;
        let logical = w_bytes as f64 + flops * LOGICAL_BYTES_PER_FLOP;
        let act_bytes = tokens * m.d_model * m.dtype_bytes;
        let k = KernelDesc::new(name, flops, logical)
            .access(
                weight,
                w_off,
                w_bytes,
                AccessKind::Read,
                ReuseHint::Streaming,
            )
            .access(
                self.act,
                0,
                act_bytes,
                AccessKind::Read,
                ReuseHint::Temporal,
            )
            .access(
                self.act,
                act_bytes,
                out_bytes.min(self.act_bytes.saturating_sub(act_bytes)),
                AccessKind::Write,
                ReuseHint::Temporal,
            );
        self.gpu.launch(&k);
    }

    /// Attention for one sequence: `new_tokens` fresh tokens against its
    /// own KV region, context ending at `ctx_end` tokens.
    fn attention(&mut self, layer: usize, kv_slot: u64, new_tokens: u64, ctx_end: u64) {
        let m = &self.config.model;
        let kv_buf = self.kv[layer];
        let per_tok = m.kv_bytes_per_token_layer();
        let base = kv_slot * per_tok;
        let first_ctx = ctx_end - new_tokens + 1;
        let avg_ctx = (first_ctx + ctx_end) as f64 / 2.0;
        let flops = new_tokens as f64 * 4.0 * avg_ctx * m.d_model as f64;
        let read_bytes = ctx_end * per_tok;
        let write_off = base + (ctx_end - new_tokens) * per_tok;
        let write_bytes = new_tokens * per_tok;
        let logical = read_bytes as f64 + flops * LOGICAL_BYTES_PER_FLOP;
        let k = KernelDesc::new("attention", flops, logical)
            .access(
                kv_buf,
                base,
                read_bytes,
                AccessKind::Read,
                ReuseHint::Temporal,
            )
            .access(
                kv_buf,
                write_off,
                write_bytes,
                AccessKind::Write,
                ReuseHint::Temporal,
            );
        self.gpu.launch(&k);
    }

    /// Embedding gather over all fresh tokens of the iteration.
    fn embed(&mut self, tokens: u64) {
        let m = &self.config.model;
        let bytes = tokens * m.d_model * m.dtype_bytes;
        let k = KernelDesc::new("embed", 2.0 * bytes as f64, 2.0 * bytes as f64)
            .access(self.wte, 0, bytes, AccessKind::Read, ReuseHint::Temporal)
            .access(
                self.act,
                0,
                bytes.min(self.act_bytes),
                AccessKind::Write,
                ReuseHint::Temporal,
            );
        self.gpu.launch(&k);
    }

    /// Batched LM head: one logits row per sequence in the batch.
    fn lm_head(&mut self, rows: u64) {
        let m = &self.config.model;
        let flops = rows as f64 * m.lm_head_flops();
        let w_bytes = m.wte_bytes();
        let logical = w_bytes as f64 + flops * LOGICAL_BYTES_PER_FLOP;
        let k = KernelDesc::new("lm_head", flops, logical)
            .access(self.wte, 0, w_bytes, AccessKind::Read, ReuseHint::Streaming)
            .access(
                self.logits,
                0,
                rows * m.vocab * m.dtype_bytes,
                AccessKind::Write,
                ReuseHint::Streaming,
            );
        self.gpu.launch(&k);
    }

    /// Runs one engine iteration: admit, then a single model pass over all
    /// fresh tokens (prefill + decode mixed), then retire finished
    /// sequences. Returns `(iteration_ns, had_prefill, tokens_produced)`,
    /// or `None` when there was nothing to run.
    pub fn step(&mut self) -> Option<(u64, bool, u64)> {
        self.admit();
        if self.active.is_empty() {
            return None;
        }
        let ns0 = self.gpu.counters().elapsed_ns;

        // Fresh-token plan per active sequence, in admission order.
        let plan: Vec<(u64, u64, u64)> = self
            .active
            .iter()
            .map(|s| {
                let fresh = if s.ctx == 0 { s.prompt_len } else { 1 };
                (s.kv_slot, fresh, s.ctx + fresh)
            })
            .collect();
        let had_prefill = self.active.iter().any(|s| s.ctx == 0);
        let total_fresh: u64 = plan.iter().map(|&(_, fresh, _)| fresh).sum();

        self.embed(total_fresh);
        let m = self.config.model.clone();
        let d_out = |cols: u64| total_fresh * cols * m.dtype_bytes;
        for l in 0..m.n_layer as usize {
            let w = self.layer_weights[l];
            let mut off = 0;
            self.matmul(
                "qkv",
                total_fresh,
                w,
                off,
                m.w_attn_bytes(),
                d_out(3 * m.d_model),
            );
            off += m.w_attn_bytes();
            for &(kv_slot, fresh, ctx_end) in &plan {
                self.attention(l, kv_slot, fresh, ctx_end);
            }
            self.matmul(
                "proj",
                total_fresh,
                w,
                off,
                m.w_proj_bytes(),
                d_out(m.d_model),
            );
            off += m.w_proj_bytes();
            self.matmul("fc1", total_fresh, w, off, m.w_fc_bytes(), d_out(m.d_ff));
            off += m.w_fc_bytes();
            self.matmul(
                "fc2",
                total_fresh,
                w,
                off,
                m.w_fc2_bytes(),
                d_out(m.d_model),
            );
        }
        self.lm_head(self.active.len() as u64);

        let step_ns = self.gpu.counters().elapsed_ns - ns0;

        // Every active sequence produced one token this iteration.
        let produced = self.active.len() as u64;
        self.tokens += produced;
        ei_telemetry::counter_add("llm.batch.tokens", produced);
        let mut finished = Vec::new();
        for s in &mut self.active {
            if s.ctx == 0 {
                s.ctx = s.prompt_len;
            } else {
                s.ctx += 1;
            }
            s.produced += 1;
            if s.produced == s.gen_len {
                finished.push(s.id);
            }
        }
        for id in finished {
            let idx = self
                .active
                .iter()
                .position(|s| s.id == id)
                .expect("finished id is active");
            let seq = self.active.remove(idx);
            self.release(seq.kv_slot, seq.kv_len);
            self.completed += 1;
            ei_telemetry::counter_add("llm.batch.completed", 1);
        }
        Some((step_ns, had_prefill, produced))
    }

    /// Serves a whole workload to completion: submits every request, then
    /// iterates until the batch and queue drain. Returns the aggregate
    /// report; token conservation (`submitted == admitted + rejected`,
    /// `tokens == Σ gen_len` of admitted) is asserted.
    pub fn run(&mut self, workload: &[BatchRequest]) -> BatchReport {
        let mut sp = ei_telemetry::span(ei_telemetry::SpanKind::Generate, "batch_serve");
        let e0 = self.gpu.energy();
        let c0 = self.gpu.counters();
        let mut expected_tokens = 0;
        for &req in workload {
            if self.submit(req) == Admission::Queued {
                expected_tokens += req.gen_len;
            }
        }
        let mut prefill_step_ns = Vec::new();
        let mut decode_step_ns = Vec::new();
        let mut token_latency_ns = Vec::new();
        let mut steps = 0;
        while let Some((ns, had_prefill, produced)) = self.step() {
            steps += 1;
            if had_prefill {
                prefill_step_ns.push(ns);
            } else {
                decode_step_ns.push(ns);
            }
            for _ in 0..produced {
                token_latency_ns.push(ns);
            }
        }
        assert!(self.is_idle(), "run must drain the queue");
        assert_eq!(
            self.submitted,
            self.admitted + self.rejected,
            "every request is admitted or rejected"
        );
        assert_eq!(self.admitted, self.completed, "admitted sequences finish");
        assert_eq!(self.tokens, expected_tokens, "token conservation");
        let c1 = self.gpu.counters();
        sp.add_items(self.tokens);
        sp.record_energy((self.gpu.energy() - e0).as_joules());
        BatchReport {
            submitted: self.submitted,
            admitted: self.admitted,
            rejected: self.rejected,
            completed: self.completed,
            steps,
            tokens: self.tokens,
            energy: self.gpu.energy() - e0,
            duration: elapsed_delta(&c1, &c0),
            counters: delta_counters(&c1, &c0),
            prefill_step_ns,
            decode_step_ns,
            token_latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::gpt2_small;
    use crate::Gpt2Engine;
    use ei_hw::gpu::rtx4090;

    fn batch_engine(max_batch: usize, seq_tokens: u64) -> Gpt2BatchEngine {
        let cfg = BatchConfig::for_batch(gpt2_small(), max_batch, seq_tokens);
        Gpt2BatchEngine::new(cfg, GpuSim::new(rtx4090())).expect("model fits")
    }

    #[test]
    fn batch_of_one_matches_single_stream_generate() {
        // A batch engine capped at one sequence must replay the exact
        // single-stream kernel stream: identical energies and counters.
        let mut single = Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx4090())).unwrap();
        let r1 = single.generate(16, 8);
        let mut batch = batch_engine(1, 1024);
        let rb = batch.run(&[BatchRequest {
            prompt_len: 16,
            gen_len: 8,
        }]);
        assert_eq!(
            rb.energy.as_joules().to_bits(),
            r1.energy.as_joules().to_bits()
        );
        assert_eq!(rb.counters, r1.counters);
        assert_eq!(rb.tokens, 8);
        assert_eq!(rb.steps, 8);
    }

    #[test]
    fn batching_amortizes_energy_per_token() {
        let req = BatchRequest {
            prompt_len: 8,
            gen_len: 16,
        };
        let j_per_tok = |b: usize| {
            let mut e = batch_engine(b, 24);
            let r = e.run(&vec![req; b]);
            r.energy.as_joules() / r.tokens as f64
        };
        let b1 = j_per_tok(1);
        let b4 = j_per_tok(4);
        assert!(
            b4 < 0.5 * b1,
            "4-way batching must amortize streamed weights: {b4} vs {b1}"
        );
    }

    #[test]
    fn admission_control_queues_then_rejects() {
        // Pool of 2×24 slots, batch of 2: the third request queues; an
        // impossible request rejects immediately.
        let mut e = batch_engine(2, 24);
        let ok = BatchRequest {
            prompt_len: 8,
            gen_len: 16,
        };
        assert_eq!(e.submit(ok), Admission::Queued);
        assert_eq!(e.submit(ok), Admission::Queued);
        assert_eq!(e.submit(ok), Admission::Queued);
        e.step().unwrap();
        // Only two fit the running batch; the third waits.
        assert_eq!(e.active_len(), 2);
        assert_eq!(e.queue_len(), 1);
        assert_eq!(
            e.submit(BatchRequest {
                prompt_len: 100,
                gen_len: 100,
            }),
            Admission::Rejected,
            "larger than the KV pool"
        );
        assert_eq!(
            e.submit(BatchRequest {
                prompt_len: 0,
                gen_len: 5,
            }),
            Admission::Rejected
        );
        assert_eq!(
            e.submit(BatchRequest {
                prompt_len: u64::MAX,
                gen_len: 2,
            }),
            Admission::Rejected,
            "overflowing lengths must not wrap"
        );
        while e.step().is_some() {}
        assert!(e.is_idle());
    }

    #[test]
    fn late_arrival_prefill_mixes_into_running_decode() {
        // One long sequence decodes while a second is admitted later: the
        // iteration that admits it runs prefill + decode mixed, and both
        // finish. (Queue admission happens at iteration boundaries.)
        let mut e = batch_engine(2, 64);
        e.submit(BatchRequest {
            prompt_len: 8,
            gen_len: 20,
        });
        // Run 5 decode iterations solo.
        for _ in 0..5 {
            e.step().unwrap();
        }
        e.submit(BatchRequest {
            prompt_len: 8,
            gen_len: 4,
        });
        let (_, had_prefill, produced) = e.step().unwrap();
        assert!(had_prefill, "admission iteration prefills the newcomer");
        assert_eq!(produced, 2, "newcomer and incumbent both produce");
        while e.step().is_some() {}
        assert!(e.is_idle());
    }

    #[test]
    fn kv_regions_are_recycled() {
        // Sequential waves through a pool sized for one wave: regions must
        // free and coalesce or later waves could never be admitted.
        let mut e = batch_engine(2, 12);
        let req = BatchRequest {
            prompt_len: 4,
            gen_len: 8,
        };
        let r = e.run(&[req; 6]);
        assert_eq!(r.completed, 6);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.tokens, 48);
    }

    #[test]
    fn queue_depth_rejects_overflow() {
        let mut cfg = BatchConfig::for_batch(gpt2_small(), 1, 16);
        cfg.queue_depth = 2;
        let mut e = Gpt2BatchEngine::new(cfg, GpuSim::new(rtx4090())).unwrap();
        let req = BatchRequest {
            prompt_len: 4,
            gen_len: 4,
        };
        assert_eq!(e.submit(req), Admission::Queued);
        assert_eq!(e.submit(req), Admission::Queued);
        assert_eq!(e.submit(req), Admission::Rejected, "queue full");
    }

    #[test]
    fn report_is_bit_identical_on_replay() {
        let workload: Vec<BatchRequest> = (0..6)
            .map(|i| BatchRequest {
                prompt_len: 4 + i,
                gen_len: 6 + (i % 3),
            })
            .collect();
        let run = || {
            let mut e = batch_engine(3, 40);
            e.run(&workload)
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.energy.as_joules().to_bits(),
            b.energy.as_joules().to_bits()
        );
        assert_eq!(
            a.duration.as_seconds().to_bits(),
            b.duration.as_seconds().to_bits()
        );
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.token_latency_ns, b.token_latency_ns);
        assert_eq!(a.prefill_step_ns, b.prefill_step_ns);
        assert_eq!(a.decode_step_ns, b.decode_step_ns);
    }
}
