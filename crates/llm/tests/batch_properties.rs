//! Property tests of the continuous-batching engine (E12 ground truth).

use ei_hw::gpu::{rtx4090, GpuSim};
use ei_llm::{gpt2_small, BatchConfig, BatchRequest, Gpt2BatchEngine, Gpt2Engine};
use proptest::prelude::*;

fn engine(max_batch: usize, seq_tokens: u64) -> Gpt2BatchEngine {
    let cfg = BatchConfig::for_batch(gpt2_small(), max_batch, seq_tokens);
    Gpt2BatchEngine::new(cfg, GpuSim::new(rtx4090())).expect("model fits in VRAM")
}

/// An arbitrary request: sometimes degenerate or oversized on purpose, so
/// the admission-control path is exercised too.
fn any_request() -> impl Strategy<Value = BatchRequest> {
    (0u64..40, 0u64..24).prop_map(|(prompt_len, gen_len)| BatchRequest {
        prompt_len,
        gen_len,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Replaying any workload on a fresh engine yields a byte-identical
    /// report: energies, durations, counters, and per-iteration traces.
    #[test]
    fn replay_is_bit_identical(workload in proptest::collection::vec(any_request(), 1..12)) {
        let serve = || engine(3, 48).run(&workload);
        let a = serve();
        let b = serve();
        prop_assert_eq!(a.energy.as_joules().to_bits(), b.energy.as_joules().to_bits());
        prop_assert_eq!(a.duration.as_seconds().to_bits(), b.duration.as_seconds().to_bits());
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.token_latency_ns, b.token_latency_ns);
        prop_assert_eq!(a.prefill_step_ns, b.prefill_step_ns);
        prop_assert_eq!(a.decode_step_ns, b.decode_step_ns);
        prop_assert_eq!(a.steps, b.steps);
    }

    /// A batch engine capped at one sequence is the single-stream engine:
    /// same energy bits and same device counters for any valid request.
    #[test]
    fn batch_of_one_equals_single_stream(prompt in 1u64..48, gen in 1u64..24) {
        let mut single = Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx4090())).unwrap();
        let rs = single.generate(prompt, gen);
        let rb = engine(1, 1024).run(&[BatchRequest {
            prompt_len: prompt,
            gen_len: gen,
        }]);
        prop_assert_eq!(rb.energy.as_joules().to_bits(), rs.energy.as_joules().to_bits());
        prop_assert_eq!(rb.counters, rs.counters);
        prop_assert_eq!(rb.duration.as_seconds().to_bits(), rs.duration.as_seconds().to_bits());
        prop_assert_eq!(rb.tokens, gen);
    }

    /// Token conservation under arbitrary workloads: every request is
    /// admitted or rejected, admitted ones finish, and generated tokens
    /// are exactly the sum of admitted `gen_len`s. (The engine asserts
    /// the same internally; this pins it against arbitrary inputs, with
    /// degenerate and oversized requests mixed in.)
    #[test]
    fn tokens_are_conserved(workload in proptest::collection::vec(any_request(), 1..16)) {
        let r = engine(2, 24).run(&workload);
        prop_assert_eq!(r.submitted, workload.len() as u64);
        prop_assert_eq!(r.submitted, r.admitted + r.rejected);
        prop_assert_eq!(r.admitted, r.completed);
        // The admission bound is the whole KV pool (2 seats × 24 slots).
        let admissible: u64 = workload
            .iter()
            .filter(|q| q.prompt_len >= 1 && q.gen_len >= 1 && q.prompt_len + q.gen_len <= 48)
            .map(|q| q.gen_len)
            .sum();
        prop_assert_eq!(r.tokens, admissible);
        prop_assert_eq!(r.token_latency_ns.len() as u64, r.tokens);
    }

    /// Arrival order does not change the total token count or the
    /// completion guarantee (energy may legitimately differ: scheduling
    /// changes which kernels batch together).
    #[test]
    fn any_arrival_order_completes_all_valid_work(
        mut workload in proptest::collection::vec((1u64..12, 1u64..8), 2..8),
        rotate in 0usize..8,
    ) {
        let as_reqs = |w: &[(u64, u64)]| -> Vec<BatchRequest> {
            w.iter()
                .map(|&(prompt_len, gen_len)| BatchRequest { prompt_len, gen_len })
                .collect()
        };
        let expected: u64 = workload.iter().map(|&(_, g)| g).sum();
        let a = engine(2, 20).run(&as_reqs(&workload));
        let n = workload.len();
        workload.rotate_left(rotate % n);
        let b = engine(2, 20).run(&as_reqs(&workload));
        prop_assert_eq!(a.tokens, expected);
        prop_assert_eq!(b.tokens, expected);
        prop_assert_eq!(a.rejected, 0);
        prop_assert_eq!(b.rejected, 0);
        prop_assert_eq!(a.completed, b.completed);
    }
}
