//! Property and scaling tests of GPT-2 generation and its interface.

use ei_core::compose::link;
use ei_core::ecv::EcvEnv;
use ei_core::interp::{evaluate_energy, EvalConfig};
use ei_core::value::Value;
use ei_hw::gpu::{rtx3070, rtx4090, GpuSim};
use ei_hw::interfaces::gpu_interface;
use ei_llm::{gpt2_interface, gpt2_medium, gpt2_small, Gpt2Engine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation energy is strictly increasing in generated tokens and
    /// non-decreasing per token (the KV cache only grows).
    #[test]
    fn per_token_energy_is_increasing(prompt in 4u64..48, gen in 3u64..20) {
        let mut engine = Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx4090())).unwrap();
        let r = engine.generate(prompt, gen);
        for w in r.energy_per_token.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// The interface's prediction is monotone in both prompt and
    /// generation length.
    #[test]
    fn interface_prediction_monotone(prompt in 4u64..64, gen in 2u64..30) {
        let linked =
            link(&gpt2_interface(&gpt2_small()), &[&gpu_interface(&rtx4090())]).unwrap();
        let cfg = EvalConfig {
            fuel: 200_000_000,
            ..EvalConfig::default()
        };
        let eval = |p: u64, g: u64| {
            evaluate_energy(
                &linked,
                "e_generate",
                &[Value::Num(p as f64), Value::Num(g as f64)],
                &EcvEnv::new(),
                0,
                &cfg,
            )
            .unwrap()
        };
        prop_assert!(eval(prompt + 8, gen) > eval(prompt, gen));
        prop_assert!(eval(prompt, gen + 5) > eval(prompt, gen));
    }
}

#[test]
fn medium_model_costs_more_than_small() {
    let small = {
        let mut e = Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx4090())).unwrap();
        e.generate(16, 10).energy
    };
    let medium = {
        let mut e = Gpt2Engine::new(gpt2_medium(), GpuSim::new(rtx4090())).unwrap();
        e.generate(16, 10).energy
    };
    // 355M params vs 124M: roughly 3x the weight traffic.
    assert!(medium.as_joules() > 2.0 * small.as_joules());
    assert!(medium.as_joules() < 5.0 * small.as_joules());
}

#[test]
fn interface_scales_to_medium_model() {
    // The interface generator is parametric in the architecture; the
    // medium model's interface must track its own ground truth too.
    let gpu = rtx4090();
    let linked = link(&gpt2_interface(&gpt2_medium()), &[&gpu_interface(&gpu)]).unwrap();
    let cfg = EvalConfig {
        fuel: 400_000_000,
        ..EvalConfig::default()
    };
    let predicted = evaluate_energy(
        &linked,
        "e_generate",
        &[Value::Num(16.0), Value::Num(20.0)],
        &EcvEnv::new(),
        0,
        &cfg,
    )
    .unwrap();
    let mut engine = Gpt2Engine::new(gpt2_medium(), GpuSim::new(gpu)).unwrap();
    let truth = engine.generate(16, 20).energy;
    let rel = predicted.relative_error(truth);
    assert!(rel < 0.05, "medium-model prediction off by {rel}");
}

#[test]
fn decode_step_cost_grows_faster_on_small_l2() {
    // As the context grows, the 3070's decode steps get relatively more
    // expensive than the 4090's (KV spill + stronger droop).
    let slope = |cfg: ei_hw::gpu::GpuConfig| {
        let mut e = Gpt2Engine::new(gpt2_small(), GpuSim::new(cfg)).unwrap();
        let r = e.generate(64, 120);
        let per: Vec<f64> = r
            .energy_per_token
            .windows(2)
            .map(|w| w[1].as_joules() - w[0].as_joules())
            .collect();
        let early: f64 = per[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = per[per.len() - 10..].iter().sum::<f64>() / 10.0;
        late / early
    };
    let s4090 = slope(rtx4090());
    let s3070 = slope(rtx3070());
    assert!(
        s3070 > s4090,
        "3070 decode cost must grow faster: {s3070} vs {s4090}"
    );
}

#[test]
fn cache_flush_between_requests_costs_energy() {
    // Context switches (cache flushes) show up as extra VRAM traffic in
    // the next run — the kind of cross-module effect §6 worries about.
    let run = |flush: bool| {
        let mut e = Gpt2Engine::new(gpt2_small(), GpuSim::new(rtx4090())).unwrap();
        e.generate(16, 8);
        if flush {
            e.gpu_mut().flush_caches();
        }
        e.generate(16, 8).energy
    };
    assert!(run(true) > run(false));
}

#[test]
fn worst_case_bound_on_generate_is_sound() {
    // Interval analysis over the declared input space of `e_generate`,
    // on the interface linked against the vendor hardware interface.
    use ei_core::analysis::worst_case::worst_case;
    use ei_core::interface::InputSpec;
    use ei_core::units::Calibration;

    let gpu = rtx4090();
    let linked = link(&gpt2_interface(&gpt2_small()), &[&gpu_interface(&gpu)]).unwrap();
    let spec = InputSpec::new()
        .range("prompt_len", 8.0, 64.0)
        .range("gen_len", 5.0, 60.0);
    let bound = worst_case(&linked, "e_generate", &spec, &Calibration::empty()).unwrap();
    assert!(bound.lower.as_joules() > 0.0);
    assert!(bound.upper > bound.lower);

    let cfg = EvalConfig {
        fuel: 400_000_000,
        ..EvalConfig::default()
    };
    for (p, g) in [(8u64, 5u64), (64, 60), (32, 30), (8, 60), (64, 5)] {
        let e = evaluate_energy(
            &linked,
            "e_generate",
            &[Value::Num(p as f64), Value::Num(g as f64)],
            &EcvEnv::new(),
            0,
            &cfg,
        )
        .unwrap();
        assert!(
            bound.admits(e),
            "({p},{g}) sample {e} escapes [{}, {}]",
            bound.lower,
            bound.upper
        );
    }
}
